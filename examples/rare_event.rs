//! Rare-event estimation on a train-gate near-collision: a train keeps
//! a dangerously tight schedule only if every approach segment's delay
//! lands in the top tenth of its window (tightened guard `x >= 9` under
//! invariant `x <= 10`), arriving at the crossing just as the gate
//! closes. Each segment passes with probability exactly
//! `0.1 × 1/2 = 0.05` under the uniform-race semantics, so the
//! near-miss probability is analytic: `p = 0.05^k`.
//!
//! For k = 3, 4, 5 the example reports, per row: the splitting estimate
//! and its runs, what naive Monte Carlo sees when given *exactly the
//! same* run budget, and how many runs naive MC would need for a CI of
//! the same width. Run with `cargo run --release --example rare_event`.

use tempo_core::rare::{RareChecker, SplitConfig};
use tempo_core::smc::{RatePolicy, StatisticalChecker};
use tempo_core::ta::{AutomatonId, ClockAtom, LocationId, Network, NetworkBuilder, StateFormula};

/// The near-collision model: `k` approach segments with tightened
/// on-schedule guards, an absorbing `NearMiss` crossing and an absorbing
/// `Slack` sink (the train falls behind, the gate closes safely).
fn near_collision(k: usize) -> (Network, AutomatonId, LocationId) {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut t = b.automaton("Train");
    let segs: Vec<LocationId> = (0..k)
        .map(|i| t.location_with_invariant(&format!("Seg{i}"), vec![ClockAtom::le(x, 10)]))
        .collect();
    let near_miss = t.location("NearMiss");
    let slack = t.location("Slack");
    for (i, &from) in segs.iter().enumerate() {
        let next = if i + 1 < k { segs[i + 1] } else { near_miss };
        // On schedule only in the top tenth of the delay window — the
        // "tightened guard" that makes the near-miss rare.
        t.edge(from, next)
            .guard_clock(ClockAtom::ge(x, 9))
            .reset(x, 0)
            .done();
        t.edge(from, slack).reset(x, 0).done();
    }
    // Absorbing self-loops keep both sinks deadlock-free.
    t.edge(near_miss, near_miss)
        .guard_clock(ClockAtom::ge(x, 0))
        .done();
    t.edge(slack, slack).guard_clock(ClockAtom::ge(x, 0)).done();
    let aut = t.done();
    (b.build(), aut, near_miss)
}

fn main() {
    println!("train-gate near-collision: p = 0.05^k (tightened guard x >= 9 of [0, 10])");
    println!(
        "{:>2} | {:>10} | {:>24} {:>8} | {:>14} | {:>12} {:>7}",
        "k", "exact p", "splitting CI", "runs", "naive @ runs", "naive equal-CI", "saving"
    );
    for k in [3_usize, 4, 5] {
        let (net, aut, near_miss) = near_collision(k);
        let goal = StateFormula::at(aut, near_miss);
        let bound = 10.0 * k as f64 + 1.0;
        let exact = 0.05_f64.powi(k as i32);

        let mut rc = RareChecker::new(&net, RatePolicy::new(), 42);
        let est = rc.probability(&goal, bound, &SplitConfig::default());
        assert!(
            est.lower <= exact && exact <= est.upper,
            "k = {k}: splitting CI [{}, {}] misses exact p = {exact}",
            est.lower,
            est.upper
        );

        // Naive Monte Carlo, handed splitting's exact budget.
        let budget = usize::try_from(est.runs_total).expect("run count fits");
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 42);
        let naive = smc.probability(&goal, bound, budget, est.confidence);

        // Runs naive MC needs for a CI as tight as splitting's
        // (Wald width: n = z^2 p(1-p) / h^2 at half-width h).
        let h = (est.upper - est.lower) / 2.0;
        let z = 1.96;
        let naive_needed = (z * z * exact * (1.0 - exact) / (h * h)).ceil();

        println!(
            "{k:>2} | {exact:>10.3e} | [{:>9.3e}, {:>9.3e}] {:>8} | {:>3} hits, p={:<4.2} | {naive_needed:>12.2e} {:>6.0}x",
            est.lower,
            est.upper,
            est.runs_total,
            naive.successes,
            naive.mean,
            naive_needed / est.runs_total as f64
        );
    }
    println!("(splitting CI brackets the analytic probability at every k; asserted above)");
}
