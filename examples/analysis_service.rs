//! Closed-loop stress of the analysis service (EXPERIMENTS.md, "Analysis
//! service" table): a fleet of tenant threads replays a mixed
//! train-gate / BRP / DALA workload against one shared
//! [`AnalysisService`], so most submissions repeat earlier ones — the
//! realistic regime for a verification service in a CI loop. The run
//! prints per-source latency percentiles (computed vs memory hit vs
//! coalesced) and the final service counters.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tempo_core::mdp::Opt;
use tempo_core::obs::{Budget, ExploreConfig};
use tempo_core::svc::{AnalysisService, JobKind, JobRequest, ServiceConfig, VerdictSource};
use tempo_models::{brp, dala, train_gate, train_gate_game};

/// The job mix: the paper's three model families, queried through five
/// different engines.
fn build_workload() -> Vec<(&'static str, JobKind)> {
    let tg = train_gate(3);
    let net = Arc::new(tg.net.clone());
    let game = train_gate_game(2);
    let model = brp(2, 2, 1);
    vec![
        (
            "train-gate(3)  E<> cross(0)        [ta]",
            JobKind::Reach {
                net: Arc::clone(&net),
                goal: tg.cross(0),
                explore: ExploreConfig::default(),
            },
        ),
        (
            "train-gate(3)  appr --> cross      [ta]",
            JobKind::LeadsTo {
                net: Arc::clone(&net),
                phi: tg.appr(0),
                psi: tg.cross(0),
            },
        ),
        (
            "train-gate-game(2) avoid collision [tiga]",
            JobKind::SafetyGame {
                net: Arc::new(game.net.clone()),
                bad: game.collision(),
            },
        ),
        (
            "train-gate(3)  Pr[<=100](<> cross) [smc]",
            JobKind::Probability {
                net,
                rates: tg.rates(),
                seed: 42,
                goal: tg.cross(0),
                bound: 100.0,
                runs: 738,
                confidence: 0.95,
            },
        ),
        (
            "brp(2,2)       Pmax(<> p1)         [mcpta]",
            JobKind::McptaReach {
                pta: Arc::new(model.pta.clone()),
                opt: Opt::Max,
                goal: model.p1_goal(),
                epsilon: 1e-9,
            },
        ),
        (
            "dala           deadlock search     [bip]",
            JobKind::BipDeadlock {
                sys: Arc::new(dala().sys.clone()),
            },
        ),
    ]
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    const TENANTS: usize = 4;
    const ROUNDS: usize = 8;

    let svc = Arc::new(AnalysisService::new(ServiceConfig {
        workers: 4,
        queue_capacity: 128,
        ..ServiceConfig::default()
    }));
    let workload = Arc::new(build_workload());
    // (source, latency) samples from every tenant thread.
    let samples: Arc<Mutex<Vec<(VerdictSource, Duration)>>> = Arc::new(Mutex::new(Vec::new()));

    println!(
        "analysis service: {TENANTS} tenants x {ROUNDS} rounds x {} jobs",
        workload.len()
    );
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..TENANTS {
            let svc = Arc::clone(&svc);
            let workload = Arc::clone(&workload);
            let samples = Arc::clone(&samples);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (i, (_, kind)) in workload.iter().enumerate() {
                        let begun = Instant::now();
                        let result = svc.run(JobRequest {
                            tenant: format!("tenant-{t}"),
                            // Later rounds age past earlier ones anyway;
                            // stagger initial priorities per tenant.
                            priority: (round * workload.len() + i) as i64 % 3,
                            budget: Budget::unlimited(),
                            kind: kind.clone(),
                        });
                        let elapsed = begun.elapsed();
                        match result {
                            Ok(r) => samples.lock().unwrap().push((r.source, elapsed)),
                            Err(e) => panic!("job failed: {e}"),
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();

    // Verdict agreement across the whole run is implied by the cache
    // contract; spot-check it by re-running everything warm.
    println!("\n{:<44} verdict", "job");
    for (name, kind) in workload.iter() {
        let r = svc
            .run(JobRequest {
                tenant: "report".into(),
                priority: 0,
                budget: Budget::unlimited(),
                kind: kind.clone(),
            })
            .expect("warm re-run");
        assert_eq!(r.source, VerdictSource::MemoryHit);
        println!("{name:<44} {}", r.verdict);
    }

    let mut by_source: Vec<(VerdictSource, Vec<Duration>)> = vec![
        (VerdictSource::Computed, Vec::new()),
        (VerdictSource::MemoryHit, Vec::new()),
        (VerdictSource::Coalesced, Vec::new()),
        (VerdictSource::DiskHit, Vec::new()),
    ];
    for (source, lat) in samples.lock().unwrap().iter() {
        if let Some((_, v)) = by_source.iter_mut().find(|(s, _)| s == source) {
            v.push(*lat);
        }
    }
    println!(
        "\n{:<12} {:>6} {:>12} {:>12} {:>12}",
        "source", "n", "p50", "p90", "max"
    );
    for (source, mut lats) in by_source {
        if lats.is_empty() {
            continue;
        }
        lats.sort();
        println!(
            "{:<12} {:>6} {:>9.3} ms {:>9.3} ms {:>9.3} ms",
            format!("{source:?}"),
            lats.len(),
            percentile(&lats, 0.5).as_secs_f64() * 1e3,
            percentile(&lats, 0.9).as_secs_f64() * 1e3,
            percentile(&lats, 1.0).as_secs_f64() * 1e3,
        );
    }

    let stats = svc.shutdown();
    println!("\ncounters: {stats}");
    println!("wall time: {:.3} s", wall.as_secs_f64());
    let total = TENANTS * ROUNDS * workload.len();
    assert_eq!(
        (stats.hits + stats.disk_hits + stats.misses + stats.coalesced) as usize,
        total + workload.len(),
        "every submission is accounted for exactly once"
    );
    // The whole point of the cache: each distinct job computes once, all
    // repeats are served without touching an engine.
    assert_eq!(stats.misses as usize, workload.len());
    assert_eq!(stats.rejected, 0);
}
