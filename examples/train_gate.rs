//! The train-gate experiments of §II.A of the paper (Figs. 1–4):
//!
//! * **E1 — verification** (Fig. 1): safety (one train on the bridge),
//!   liveness (`Appr --> Cross` per train), deadlock-freedom;
//! * **E2 — synthesis** (Figs. 2–3, UPPAAL-TIGA): synthesize the
//!   controller as a winning strategy of a timed game instead of
//!   modelling it by hand;
//! * **E3 — performance analysis** (Fig. 4, UPPAAL-SMC): the cumulative
//!   probability distribution of each train's crossing time under the
//!   stochastic semantics with rates `1 + id`.
//!
//! Run with: `cargo run --release --example train_gate`

use tempo_core::conc::ParallelConfig;
use tempo_core::smc::StatisticalChecker;
use tempo_core::ta::{check_query, ModelChecker};
use tempo_core::tiga::GameSolver;
use tempo_models::{train_gate, train_gate_game};

fn main() {
    // One knob drives every engine; default = all available cores.
    // Results are thread-count independent (see README "Parallel
    // analysis"), so this only affects wall-clock time.
    let config = ParallelConfig::default();
    println!(
        "worker threads: {} (results are identical at any count)\n",
        config.threads()
    );
    verification(config);
    synthesis(config);
    performance(config);
}

/// E1: the §II.A(a) verification queries.
fn verification(config: ParallelConfig) {
    println!("== E1: verification of the Fig. 1 model ==");
    for n in 2..=4 {
        let tg = train_gate(n);
        let mut mc = ModelChecker::new(&tg.net).with_parallelism(config);

        // Safety: the paper's forall-forall query, built programmatically
        // (our query language has no binders).
        let (safety, stats) = mc.always(&tg.safety());
        println!(
            "N={n}: A[] mutual exclusion on the bridge : {:5} ({} states)",
            safety.holds(),
            stats.explored
        );
        // Deadlock-freedom and liveness via UPPAAL-style textual queries.
        let dl = check_query(&tg.net, "A[] not deadlock").expect("query parses");
        println!(
            "N={n}: A[] not deadlock                  : {:5}",
            dl.satisfied
        );
        for id in 0..n {
            let q = format!("Train{id}.Appr --> Train{id}.Cross");
            let live = check_query(&tg.net, &q).expect("query parses");
            println!("N={n}: {q}    : {:5}", live.satisfied);
        }
    }
    println!();
}

/// E2: the §II.A(b) synthesis with the timed game of Figs. 2–3.
fn synthesis(config: ParallelConfig) {
    println!("== E2: controller synthesis (UPPAAL-TIGA, Figs. 2-3) ==");
    let g = train_gate_game(2);
    let solver = GameSolver::new(&g.net).with_parallelism(config);
    let result = solver.solve_safety(&g.collision());
    println!(
        "N=2: safety game (never two trains on the bridge): winning = {}, \
         |game graph| = {} states, |strategy| = {} states",
        result.winning,
        result.states,
        result.strategy.size()
    );
    // Exercise the synthesized strategy in closed loop.
    let run = solver.closed_loop(&result.strategy, 200);
    let exp = tempo_core::ta::DigitalExplorer::new(&g.net);
    let collisions = run
        .iter()
        .filter(|s| exp.satisfies(s, &g.collision()))
        .count();
    println!(
        "N=2: closed-loop run of {} steps under the strategy: {} collisions",
        run.len(),
        collisions
    );
    println!();
}

/// E3: the §II.A(c) performance analysis — Fig. 4's CDF.
fn performance(config: ParallelConfig) {
    println!("== E3: Pr[<=100](<> Train(i).Cross) — the Fig. 4 CDF ==");
    let n = 6;
    let tg = train_gate(n);
    let runs = 1000;
    let grid: Vec<f64> = (0..=15).map(|k| 10.0 + 6.0 * k as f64).collect();

    let mut series = Vec::new();
    for id in 0..n {
        let mut smc =
            StatisticalChecker::new(&tg.net, tg.rates(), 1000 + id as u64).with_parallelism(config);
        let cdf = smc.cdf(&tg.cross(id), 100.0, runs);
        series.push(cdf.series(&grid));
    }

    // Table, one row per time point (columns: trains).
    print!("{:>6}", "t");
    for id in 0..n {
        print!("  Train{id}");
    }
    println!();
    for (k, &t) in grid.iter().enumerate() {
        print!("{t:>6.0}");
        for s in &series {
            print!("  {:>6.3}", s[k].1);
        }
        println!();
    }

    // ASCII rendering of the CDF (like Fig. 4's plot).
    println!("\ncumulative probability (each column = one train, '#' = reached)");
    for level in (1..=10).rev() {
        let threshold = level as f64 / 10.0;
        print!("{threshold:>5.1} |");
        for (k, _) in grid.iter().enumerate() {
            let reached = series.iter().filter(|s| s[k].1 >= threshold).count();
            let c = match reached {
                0 => ' ',
                x if x == n => '#',
                _ => '+',
            };
            print!("{c}");
        }
        println!();
    }
    println!("      +{}", "-".repeat(grid.len()));
    println!("       t = 10 .. 100 (trains with higher rates cross earlier)");
}
