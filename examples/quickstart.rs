//! Quickstart: a five-minute tour of the tempo toolkit.
//!
//! Models a light switch with a timing requirement and runs it through
//! four of the toolkit's engines: symbolic model checking (UPPAAL),
//! minimum-cost reachability (CORA), statistical model checking (SMC)
//! and probabilistic model checking of a MODEST model (mcpta).
//!
//! Run with: `cargo run --release --example quickstart`

use tempo_core::cora::PricedNetwork;
use tempo_core::expr::Expr;
use tempo_core::modest::{compile, Assignment, Mcpta, ModestModel, PaltBranch, Process};
use tempo_core::smc::{RatePolicy, StatisticalChecker};
use tempo_core::ta::{ClockAtom, ModelChecker, NetworkBuilder, StateFormula};

fn main() {
    println!("== tempo quickstart ==\n");

    // -----------------------------------------------------------------
    // 1. Symbolic model checking (UPPAAL): a lamp that must dim within
    //    10 time units and may only be switched off after 1.
    // -----------------------------------------------------------------
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut lamp = b.automaton("Lamp");
    let off = lamp.location("Off");
    let on = lamp.location_with_invariant("On", vec![ClockAtom::le(x, 10)]);
    lamp.edge(off, on).reset(x, 0).done();
    lamp.edge(on, off).guard_clock(ClockAtom::ge(x, 1)).done();
    let lamp_id = lamp.done();
    let net = b.build();

    let mut mc = ModelChecker::new(&net);
    let reach = mc.reachable(&StateFormula::at(lamp_id, on));
    println!("[ta]   E<> Lamp.On              : {}", reach.reachable);
    let (safe, _) = mc.always(&StateFormula::or(vec![
        StateFormula::not(StateFormula::at(lamp_id, on)),
        StateFormula::clock(ClockAtom::le(x, 10)),
    ]));
    println!("[ta]   A[] (On => x <= 10)      : {}", safe.holds());
    let (dl, _) = mc.deadlock_free();
    println!("[ta]   A[] not deadlock         : {}", dl.holds());

    // -----------------------------------------------------------------
    // 2. Minimum-cost reachability (UPPAAL-CORA): the lamp consumes
    //    3 cost units per time unit while on — what is the cheapest way
    //    to have completed one on/off cycle?
    // -----------------------------------------------------------------
    // Energy model: switching on costs 2, staying on costs 3 per time
    // unit. The cheapest way to have lit the lamp for >= 1 time unit is
    // 2 + 3·1 = 5.
    let mut priced = PricedNetwork::new(net.clone());
    priced.set_rate(lamp_id, on, 3);
    priced.set_edge_cost(lamp_id, 0, 2); // edge 0: Off -> On
    let lit_for_one = priced
        .min_cost_reach(&StateFormula::and(vec![
            StateFormula::at(lamp_id, on),
            StateFormula::clock(ClockAtom::ge(x, 1)),
        ]))
        .expect("reachable");
    println!("[cora] min cost to be lit >=1tu : {}", lit_for_one.cost);
    let min_time = priced.min_time_reach(&StateFormula::at(lamp_id, off));
    println!("[cora] min time back to Off     : {min_time:?}");

    // -----------------------------------------------------------------
    // 3. Statistical model checking (UPPAAL-SMC): estimate the
    //    probability that the lamp is On within 2 time units.
    // -----------------------------------------------------------------
    let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 42);
    let est = smc.probability(&StateFormula::at(lamp_id, on), 2.0, 1000, 0.95);
    println!("[smc]  Pr[<=2](<> Lamp.On)      : {est}");

    // -----------------------------------------------------------------
    // 4. Probabilistic model checking (MODEST/mcpta): a flaky switch
    //    that fails to latch 10% of the time.
    // -----------------------------------------------------------------
    let mut m = ModestModel::new();
    let press = m.action("press");
    let lit = m.decls_mut().int("lit", 0, 1);
    m.define(
        "Switch",
        Process::palt(
            press,
            vec![
                PaltBranch {
                    weight: 9,
                    assignments: vec![Assignment::Var(lit, Expr::konst(1))],
                    then: Process::stop(),
                },
                PaltBranch {
                    weight: 1,
                    assignments: vec![],
                    then: Process::call("Switch"),
                },
            ],
        ),
    );
    m.system(&["Switch"]);
    let pta = compile(&m);
    let mcpta = Mcpta::build(&pta, &[], 10_000);
    let goal = StateFormula::data(Expr::var(lit).eq(Expr::konst(1)));
    println!("[mcpta] Pmax(<> lit)            : {}", mcpta.pmax(&goal));
    println!(
        "[mcpta] Pmin(<> lit)            : {} (a scheduler may retry forever)",
        mcpta.pmin(&goal)
    );

    println!("\nSee the other examples (train_gate, brp_modest, dala_robot,");
    println!("ioco_testing) for the paper's full experiments.");
}
