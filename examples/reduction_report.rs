//! Prints the state-space-reduction measurement tables recorded in
//! EXPERIMENTS.md: states explored and wall-clock for unreduced vs
//! POR+symmetry runs of the train-gate `A[]` safety check at N = 2..6,
//! and digital-MDP sizes for BRP with and without Dirac tick-chain
//! compression. Run with `cargo run --release --example reduction_report`.

use std::time::Instant;
use tempo_core::modest::McptaConfig;
use tempo_core::obs::ExploreConfig;
use tempo_core::ta::ModelChecker;
use tempo_models::{brp, train_gate};

fn main() {
    println!("train-gate A[] safety: unreduced vs POR+symmetry (release)");
    println!(
        "{:>2} | {:>11} {:>9} | {:>11} {:>9} | {:>6} {:>9} {:>9}",
        "N", "full states", "full ms", "red states", "red ms", "orbits", "avoided", "ample"
    );
    for n in 2..=6 {
        let tg = train_gate(n);
        let safety = tg.safety();
        let t0 = Instant::now();
        let (v_full, s_full) = ModelChecker::new(&tg.net)
            .with_config(ExploreConfig::unreduced())
            .always(&safety);
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let (v_red, s_red) = ModelChecker::new(&tg.net).always(&safety);
        let red_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(v_full.holds(), v_red.holds(), "N={n}: verdict moved");
        println!(
            "{n:>2} | {:>11} {full_ms:>9.1} | {:>11} {red_ms:>9.1} | {:>6} {:>9} {:>9}",
            s_full.explored, s_red.explored, s_red.sym_orbits, s_red.sym_avoided, s_red.por_ample
        );
    }

    println!();
    println!("BRP(16, 2, 1) digital-clocks MDP: tick-chain compression");
    let model = brp(16, 2, 1);
    let t0 = Instant::now();
    let full = model.mcpta(0, 2_000_000);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let compressed = model.mcpta_with(
        0,
        McptaConfig {
            compress_ticks: true,
            ..McptaConfig::default()
        },
        2_000_000,
    );
    let comp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (sf, sc) = (full.stats(), compressed.stats());
    println!(
        "full:       {:>7} states {:>7} transitions  build {full_ms:>8.1} ms",
        sf.states, sf.transitions
    );
    println!(
        "compressed: {:>7} states {:>7} transitions  build {comp_ms:>8.1} ms",
        sc.states, sc.transitions
    );
    for (name, goal) in [
        ("P1", model.p1_goal()),
        ("P2", model.p2_goal()),
        ("PA", model.pa_goal()),
        ("PB", model.pb_goal()),
    ] {
        let (a, b) = (full.pmax(&goal), compressed.pmax(&goal));
        assert!((a - b).abs() < 1e-9, "{name}: {a} vs {b}");
        println!("Pmax({name}) = {a:.6e} (agrees within the 1e-9 VI tolerance)");
    }
    let t0 = Instant::now();
    let p_full = full.pmax(&model.p1_goal());
    let q_full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let p_comp = compressed.pmax(&model.p1_goal());
    let q_comp_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!((p_full - p_comp).abs() < 1e-9);
    println!("Pmax(P1) query wall-clock: full {q_full_ms:.1} ms, compressed {q_comp_ms:.1} ms");
}
