//! Compositional design, three ways — the paper's recurring theme that
//! rigorous embedded design needs *incremental, component-wise*
//! methods:
//!
//! 1. **ECDAR** (§II): develop a timed component against an abstract
//!    contract by refinement; compose components structurally and
//!    logically and re-verify at the interface level.
//! 2. **MODEST concrete syntax** (§III, Fig. 5): parse the paper's
//!    channel process verbatim and analyse it with `mcpta`.
//! 3. **BIP hierarchy** (§IV): build a two-level composite system and
//!    flatten it (the source-to-source transformation) before running
//!    D-Finder.
//!
//! Run with: `cargo run --release --example compositional_design`

use tempo_core::bip::{check_deadlock_freedom, Composite, DfinderVerdict, InteractionKind};
use tempo_core::ecdar::{
    conjunction, find_inconsistency, parallel, refines, TioaAtom, TioaBuilder,
};
use tempo_core::expr::Expr;
use tempo_core::modest::{compile, parse_modest, Mcpta};
use tempo_core::ta::StateFormula;

fn main() {
    ecdar_flow();
    modest_flow();
    bip_flow();
}

fn ecdar_flow() {
    println!("== ECDAR: contract-based development (§II) ==");
    // Abstract contract: after req?, respond within 10.
    let mut c = TioaBuilder::new("Contract");
    let t = c.clock("t");
    let ci = c.location("Idle");
    let cp = c.location_with_invariant("Pending", vec![TioaAtom::le(t, 10)]);
    c.input(ci, cp, "req").reset(t).done();
    c.output(cp, ci, "resp").done();
    let contract = c.build();
    println!(
        "contract consistent: {}",
        find_inconsistency(&contract).is_none()
    );

    // Component A: respond within [2, 6]; Component-level requirement B:
    // never respond before 1.
    let mut a = TioaBuilder::new("Responder");
    let x = a.clock("x");
    let ai = a.location("Idle");
    let ap = a.location_with_invariant("Pending", vec![TioaAtom::le(x, 6)]);
    a.input(ai, ap, "req").reset(x).done();
    a.output(ap, ai, "resp").guard(TioaAtom::ge(x, 2)).done();
    let responder = a.build();

    match refines(&responder, &contract) {
        Ok(()) => println!("Responder ≤ Contract: refinement holds"),
        Err(e) => println!("Responder ≤ Contract FAILS: {e}"),
    }

    // A too-slow variant is rejected with a diagnostic trace.
    let mut slow = TioaBuilder::new("Slow");
    let y = slow.clock("y");
    let si = slow.location("Idle");
    let sp = slow.location_with_invariant("Pending", vec![TioaAtom::le(y, 20)]);
    slow.input(si, sp, "req").reset(y).done();
    slow.output(sp, si, "resp")
        .guard(TioaAtom::ge(y, 12))
        .done();
    let slow = slow.build();
    match refines(&slow, &contract) {
        Ok(()) => println!("Slow ≤ Contract: refinement holds (unexpected!)"),
        Err(e) => println!("Slow ≤ Contract correctly rejected: {e}"),
    }

    // Logical composition: conjunction of two requirements on the same
    // interface refines both.
    let mut b = TioaBuilder::new("NotTooEarly");
    let z = b.clock("z");
    let bi = b.location("Idle");
    let bp = b.location_with_invariant("Pending", vec![TioaAtom::le(z, 10)]);
    b.input(bi, bp, "req").reset(z).done();
    b.output(bp, bi, "resp").guard(TioaAtom::ge(z, 1)).done();
    let not_too_early = b.build();
    let both = conjunction(&contract, &not_too_early).expect("compatible directions");
    println!(
        "Contract ∧ NotTooEarly refines each conjunct: {} / {}",
        refines(&both, &contract).is_ok(),
        refines(&both, &not_too_early).is_ok()
    );

    // Structural composition with a logger stays consistent.
    let mut l = TioaBuilder::new("Logger");
    let li = l.location("Wait");
    let ln = l.location("Note");
    l.input(li, ln, "resp").done();
    l.output(ln, li, "log").done();
    let logger = l.build();
    let sys = parallel(&responder, &logger).expect("compatible alphabets");
    println!(
        "Responder ∥ Logger: {} locations, consistent: {}\n",
        sys.locations().len(),
        find_inconsistency(&sys).is_none()
    );
}

fn modest_flow() {
    println!("== MODEST concrete syntax: Fig. 5 verbatim (§III) ==");
    let source = r"
        const TD = 1;
        clock c;
        action put, get;
        int [0, 1] delivered;
        process Channel() {
          put palt {
            :98: {= c = 0 =}; invariant(c <= TD) get {= delivered = 1 =}
            : 2: {==}                 // message lost
          }; Channel()
        }
        process Producer() {
          put; invariant(c <= 10) get; stop
        }
        system Producer() || Channel();
    ";
    let model = parse_modest(source).expect("the paper's syntax parses");
    let pta = compile(&model);
    println!(
        "parsed: {} actions, {} processes, {} PTA components",
        model.actions().len(),
        2,
        pta.automata.len()
    );
    let mc = Mcpta::build(&pta, &[], 100_000);
    let delivered = model.decls().lookup("delivered").unwrap();
    let goal = StateFormula::data(Expr::var(delivered).eq(Expr::konst(1)));
    println!(
        "Pmax(message eventually delivered) = {:.4} (one put, 2% loss)",
        mc.pmax(&goal)
    );
    println!();
}

fn bip_flow() {
    println!("== BIP hierarchy + flattening (§IV) ==");
    // A worker cell exporting start/finish.
    let worker = {
        let mut w = Composite::new("Worker");
        let mut cell = w.atom("Cell");
        let idle = cell.state("Idle");
        let busy = cell.state("Busy");
        let p_start = cell.port("start");
        let p_finish = cell.port("finish");
        cell.transition(idle, busy, p_start);
        cell.transition(busy, idle, p_finish);
        let ports = cell.done();
        w.export("start", ports[0]);
        w.export("finish", ports[1]);
        w
    };
    // A production line: two workers started in lockstep, finished
    // independently.
    let mut line = Composite::new("Line");
    let w1 = line.child(worker.clone());
    let w2 = line.child(worker);
    let s1 = line.child_port(w1, "start").expect("exported");
    let s2 = line.child_port(w2, "start").expect("exported");
    let f1 = line.child_port(w1, "finish").expect("exported");
    let f2 = line.child_port(w2, "finish").expect("exported");
    line.interaction("both_start", &[s1, s2], InteractionKind::Rendezvous);
    line.interaction("finish1", &[f1], InteractionKind::Rendezvous);
    line.interaction("finish2", &[f2], InteractionKind::Rendezvous);

    let flat = line.flatten();
    println!(
        "flattened: {} components ({}), {} interactions",
        flat.components().len(),
        flat.components()
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        flat.interactions().len()
    );
    match check_deadlock_freedom(&flat, 100_000) {
        DfinderVerdict::DeadlockFree { candidates, .. } => println!(
            "D-Finder on the flattened system: DEADLOCK-FREE ({candidates} candidates examined)"
        ),
        DfinderVerdict::Unknown { suspects } => {
            println!(
                "D-Finder: {} suspects for explicit checking",
                suspects.len()
            );
        }
    }
    println!(
        "explicit check agrees: deadlock = {:?}",
        flat.find_deadlock(100_000).map(|s| s.control)
    );
}
