//! Prints the dataflow-pass measurement tables recorded in
//! EXPERIMENTS.md: states explored and wall-clock for unreduced vs
//! LU+slicing runs of the train-gate reachability check at N = 2..6
//! (flow isolated from POR/symmetry so the shrink is attributable),
//! and digital-MDP sizes for BRP with and without the flow passes.
//! Run with `cargo run --release --example flow_report`.

use std::time::Instant;
use tempo_core::modest::McptaConfig;
use tempo_core::obs::{Budget, ExploreConfig};
use tempo_core::ta::{ModelChecker, StateFormula};
use tempo_models::{brp, train_gate};

fn main() {
    // The collision goal is unreachable, so the search covers the whole
    // reachable space — the honest setting for measuring exploration.
    println!("train-gate E<> collision: unreduced vs LU+slicing (release)");
    println!(
        "{:>2} | {:>11} {:>9} | {:>11} {:>9} | {:>4} {:>7} {:>6}",
        "N", "full states", "full ms", "flow states", "flow ms", "lu", "narrow", "slice"
    );
    // N = 6 is omitted so the example stays CI-friendly: the unreduced
    // run alone takes ~100 s (1.74M states vs 60k with LU+slicing).
    for n in 2..=5 {
        let tg = train_gate(n);
        let goal = StateFormula::not(tg.safety());
        let t0 = Instant::now();
        let full = ModelChecker::new(&tg.net)
            .with_config(ExploreConfig::unreduced())
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("in-memory store");
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let flow = ModelChecker::new(&tg.net)
            .with_config(ExploreConfig::unreduced().with_lu(true).with_slice(true))
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("in-memory store");
        let flow_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            full.value().reachable,
            flow.value().reachable,
            "N={n}: verdict moved"
        );
        let r = flow.report();
        let sliced = r.sliced_clocks + r.sliced_vars + r.sliced_edges;
        println!(
            "{n:>2} | {:>11} {full_ms:>9.1} | {:>11} {flow_ms:>9.1} | {:>4} {:>7} {sliced:>6}",
            full.report().states_explored,
            r.states_explored,
            r.lu_tightened,
            r.vars_narrowed,
        );
    }

    println!();
    println!("BRP(16, 2, 1) digital-clocks MDP: flow passes on vs off");
    let model = brp(16, 2, 1);
    let t0 = Instant::now();
    let plain = model.mcpta_with(
        0,
        McptaConfig {
            flow: false,
            ..McptaConfig::default()
        },
        2_000_000,
    );
    let plain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let flow = model.mcpta(0, 2_000_000);
    let flow_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (sp, sf) = (plain.stats(), flow.stats());
    println!(
        "flow off: {:>7} states {:>7} transitions  build {plain_ms:>8.1} ms",
        sp.states, sp.transitions
    );
    println!(
        "flow on:  {:>7} states {:>7} transitions  build {flow_ms:>8.1} ms",
        sf.states, sf.transitions
    );
    for (name, goal) in [
        ("P1", model.p1_goal()),
        ("P2", model.p2_goal()),
        ("PA", model.pa_goal()),
        ("PB", model.pb_goal()),
    ] {
        let (a, b) = (plain.pmax(&goal), flow.pmax(&goal));
        assert!((a - b).abs() < 1e-9, "{name}: {a} vs {b}");
        println!("Pmax({name}) = {b:.6e} (agrees within the 1e-9 VI tolerance)");
    }
}
