//! Witness & certificate pipeline on the paper models (EXPERIMENTS.md,
//! "Certificates" table): every verdict-producing engine returns a
//! certificate that the independent replay validator accepts; this
//! example reports each certificate's size and validation time.

use tempo_core::cora::PricedNetwork;
use tempo_core::mdp::Opt;
use tempo_core::obs::{Budget, RunReport};
use tempo_core::ta::{AutomatonId, LocationId};
use tempo_core::witness::certify::{
    certified_mcpta_reach, certified_min_cost, certified_probability, certified_reachable,
    certified_safety_game,
};
use tempo_models::{brp, train_gate, train_gate_game, wcet_program};

fn row(name: &str, report: &RunReport) {
    println!(
        "{name:<44} {:>10} B {:>10.3} ms",
        report.certificate_bytes,
        report.certify_time.as_secs_f64() * 1e3
    );
}

fn main() {
    let b = Budget::unlimited();

    // E1: train-gate reachability (UPPAAL) — realized concrete trace.
    let tg = train_gate(6);
    let (out, cert) = certified_reachable(&tg.net, &tg.cross(0), &b).expect("certified");
    assert!(cert.is_some());
    row("train-gate(6) E<> cross(0), trace", out.report());

    // E2: train-gate game safety synthesis (TIGA) — exhaustive
    // closed-loop strategy certification over every environment move.
    let g = train_gate_game(2);
    let (out, cert) = certified_safety_game(&g.net, &g.collision(), &b).expect("certified");
    assert!(cert.is_some());
    row("train-gate-game(2) safety, strategy", out.report());

    // E3: train-gate performance (SMC) — exported runs, each replayed.
    let tg = train_gate(4);
    let (out, cert) = certified_probability(
        &tg.net,
        &tg.rates(),
        42,
        &tg.cross(0),
        100.0,
        738,
        0.95,
        10,
        &b,
    )
    .expect("certified");
    assert_eq!(cert.runs.len(), 10);
    row("train-gate(4) Pr[<=100](<> cross), 10 runs", out.report());

    // E4: BRP (MODEST/mcpta) — memoryless scheduler whose induced
    // Markov chain reproduces the reported probability.
    let m = brp(16, 2, 1);
    let mc = m.mcpta(0, 5_000_000);
    let (out, _) = certified_mcpta_reach(&mc, Opt::Max, &m.pa_goal(), 1e-6, &b).expect("certified");
    row("brp(16,2,1) Pmax, scheduler", out.report());

    // WCET (CORA) — cost-annotated optimal run, step costs sum to the
    // reported minimum.
    let w = wcet_program(8);
    let mut pnet = PricedNetwork::new(w.net.clone());
    for li in 0..w.net.automata()[0].locations.len() {
        pnet.set_rate(AutomatonId(0), LocationId(li), 1);
    }
    let (out, cert) = certified_min_cost(&pnet, &w.terminated(), &b).expect("certified");
    assert_eq!(cert.expect("optimum").total, w.analytic_bcet());
    row("wcet(8) min-time (BCET), cost trace", out.report());
}
