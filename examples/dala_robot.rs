//! The DALA rover experiment of §IV of the paper: component-based design
//! of autonomous systems with BIP.
//!
//! The BIP model of the rover's functional level (Fig. 6, simplified) is
//!
//! 1. verified deadlock-free, both by explicit exploration and
//!    compositionally in the D-Finder style (component invariants +
//!    trap-based interaction invariants);
//! 2. used to synthesize an execution controller that "encodes and
//!    enforces safety properties by construction";
//! 3. validated by fault injection: with the controller installed, the
//!    injected faults (laser expiry, spontaneous communication requests)
//!    can no longer drive the rover into an unsafe state.
//!
//! Run with: `cargo run --release --example dala_robot`

use tempo_core::bip::{
    check_deadlock_freedom, fault_injection_campaign, synthesize_safety_controller, DfinderVerdict,
};
use tempo_models::dala::dala;

fn main() {
    println!("== E5: the DALA rover functional level in BIP (Fig. 6) ==\n");
    let d = dala();
    println!(
        "components: {}",
        d.sys
            .components()
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "interactions: {}",
        d.sys
            .interactions()
            .iter()
            .map(|i| {
                if i.controllable {
                    i.name.clone()
                } else {
                    format!("{}(fault)", i.name)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("priorities: {} rule(s)\n", d.sys.priorities().len());

    // ---------------- deadlock analysis ----------------
    let t0 = std::time::Instant::now();
    let reachable = d.sys.reachable_states(1_000_000);
    let explicit_dead = d.sys.find_deadlock(1_000_000);
    println!(
        "explicit exploration: {} reachable states, deadlock: {} ({:.2?})",
        reachable.len(),
        if explicit_dead.is_none() {
            "none"
        } else {
            "FOUND"
        },
        t0.elapsed()
    );
    let t0 = std::time::Instant::now();
    match check_deadlock_freedom(&d.sys, 1_000_000) {
        DfinderVerdict::DeadlockFree {
            candidates,
            eliminated_by_traps,
        } => println!(
            "D-Finder (compositional): DEADLOCK-FREE — {candidates} candidate \
             configuration(s), {eliminated_by_traps} refuted by trap invariants ({:.2?})",
            t0.elapsed()
        ),
        DfinderVerdict::Unknown { suspects } => println!(
            "D-Finder (compositional): inconclusive, {} suspect(s) passed to the \
             explicit engine ({:.2?})",
            suspects.len(),
            t0.elapsed()
        ),
    }

    // ---------------- controller synthesis ----------------
    let t0 = std::time::Instant::now();
    let synthesis = synthesize_safety_controller(&d.sys, d.bad(), 1_000_000);
    println!(
        "\ncontroller synthesis: initial state controllable = {}, \
         winning region = {} states ({:.2?})",
        synthesis.initial_safe,
        synthesis.controller.size(),
        t0.elapsed()
    );

    // ---------------- fault injection ----------------
    let runs = 100;
    let steps = 500;
    println!("\nfault-injection campaign: {runs} random executions × {steps} interactions");
    let without = fault_injection_campaign(&d.sys, None, d.bad(), runs, steps, 7);
    println!(
        "  without controller: {:>3}/{} runs reached an unsafe state",
        without.unsafe_runs, without.runs
    );
    let with =
        fault_injection_campaign(&d.sys, Some(&synthesis.controller), d.bad(), runs, steps, 7);
    println!(
        "  with controller   : {:>3}/{} runs reached an unsafe state \
         ({} interactions still executed)",
        with.unsafe_runs, with.runs, with.total_steps
    );
    println!(
        "\npaper's claim reproduced: the controller successfully stops the robot \
         from reaching undesired/unsafe states — {}",
        if with.unsafe_runs == 0 && without.unsafe_runs > 0 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
