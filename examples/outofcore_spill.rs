//! Prints the RAM-vs-disk crossover table recorded in EXPERIMENTS.md: a
//! resident-budget sweep of the out-of-core state store on the
//! train-gate `A[]` safety fixpoint at N = 6. Each row runs the same
//! exploration with a smaller share of the passed/waiting lists held in
//! memory; verdict and `Stats` are asserted identical to the all-in-RAM
//! reference at every budget, so the table measures *only* the I/O
//! cost of spilling. Run with
//! `cargo run --release --example outofcore_spill`.

use std::time::Instant;

use tempo_core::obs::{Budget, ExploreConfig};
use tempo_core::ta::ModelChecker;
use tempo_models::train_gate;

fn main() {
    let n = 6;
    let tg = train_gate(n);
    let safety = tg.safety();
    let dir = std::env::temp_dir().join(format!("tempo-spill-sweep-{}", std::process::id()));

    // All-in-RAM reference: the verdict and stats every spilled run
    // must reproduce, and the wall-clock baseline of the table.
    let t0 = Instant::now();
    let reference = ModelChecker::new(&tg.net)
        .try_always_governed(&safety, &Budget::unlimited())
        .expect("resident store cannot fail");
    let ram_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (ref_verdict, ref_stats) = reference.value().clone();
    println!(
        "train-gate({n}) A[] safety, out-of-core sweep (release); \
         RAM reference: {} states stored, {ram_ms:.1} ms",
        ref_stats.stored
    );
    println!(
        "{:>8} | {:>8} {:>9} {:>10} {:>8} | {:>8} {:>6}",
        "budget", "spilled", "faults", "log bytes", "ms", "vs RAM", "ok"
    );

    for budget in [usize::MAX, 65536, 16384, 4096, 1024, 256, 64, 0] {
        let config = if budget == usize::MAX {
            ExploreConfig::default()
        } else {
            ExploreConfig::default().with_spill(&dir, budget)
        };
        let t0 = Instant::now();
        let out = ModelChecker::new(&tg.net)
            .with_config(config)
            .try_always_governed(&safety, &Budget::unlimited())
            .expect("spilled run completes");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let (verdict, stats) = out.value();
        assert_eq!(verdict.holds(), ref_verdict.holds(), "verdict moved");
        assert_eq!(stats, &ref_stats, "stats moved at budget {budget}");
        let r = out.report();
        let label = if budget == usize::MAX {
            "RAM".to_owned()
        } else {
            budget.to_string()
        };
        println!(
            "{label:>8} | {:>8} {:>9} {:>10} {ms:>8.1} | {:>7.2}x {:>6}",
            r.spilled_states,
            r.spill_faults,
            r.spill_bytes,
            ms / ram_ms,
            "yes"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
