//! The BRP experiment of §III.A of the paper: reproduces **Table I**
//! ("Results for the BRP model, parameters (N, MAX, TD) = (16, 2, 1)")
//! with the three MODEST backends:
//!
//! * `mctau` — the nondeterministic over-approximation analysed with the
//!   timed-automata engine (exact for the invariants TA1/TA2; `0` for
//!   unreachable events; trivial `[0, 1]` bounds otherwise);
//! * `mcpta` — exact probabilistic model checking via digital clocks and
//!   value iteration;
//! * `modes` — discrete-event simulation with 10 000 runs (rare events
//!   typically go unobserved, exactly as the paper shows).
//!
//! Run with: `cargo run --release --example brp_modest`
//! (set `BRP_N`, `BRP_MAX`, `BRP_TD` to vary the parameters).

use tempo_core::modest::{Mctau, Modes, Scheduler};
use tempo_models::brp::brp;

fn main() {
    let n: i64 = std::env::var("BRP_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let max: i64 = std::env::var("BRP_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let td: i64 = std::env::var("BRP_TD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let dmax_bound = 64;
    let runs = 10_000;

    println!(
        "== Table I: results for the BRP model, parameters (N, MAX, TD) = ({n}, {max}, {td}) ==\n"
    );
    let model = brp(n, max, td);

    // ---------------- mctau ----------------
    let t0 = std::time::Instant::now();
    let mctau = Mctau::new(&model.pta);
    let m_ta1 = mctau.check_invariant(&model.ta1());
    let m_ta2 = mctau.check_invariant(&model.ta2());
    let m_pa = mctau.probability_bounds(&model.pa_goal());
    let m_pb = mctau.probability_bounds(&model.pb_goal());
    let m_p1 = mctau.probability_bounds(&model.p1_goal());
    let m_p2 = mctau.probability_bounds(&model.p2_goal());
    let m_dmax = mctau.probability_bounds(&model.success());
    let mctau_time = t0.elapsed();

    // ---------------- mcpta ----------------
    let t0 = std::time::Instant::now();
    let mc = model.mcpta(0, 50_000_000);
    let stats = mc.stats();
    let c_ta1 = mc.check_invariant(&model.ta1());
    let c_ta2 = mc.check_invariant(&model.ta2());
    let c_pa = mc.pmax(&model.pa_goal());
    let c_pb = mc.pmax(&model.pb_goal());
    let c_p1 = mc.pmax(&model.p1_goal());
    let c_p2 = mc.pmax(&model.p2_goal());
    let c_emax = mc.emax_time(&model.done());
    let mcpta_time = t0.elapsed();
    // Dmax needs the global clock tracked up to the bound: separate build.
    let t0 = std::time::Instant::now();
    let mc_timed = model.mcpta(dmax_bound, 200_000_000);
    let c_dmax = mc_timed.pmax(&model.dmax_goal(dmax_bound));
    let dmax_time = t0.elapsed();

    // ---------------- modes ----------------
    // One pass: 10k runs, all eight properties evaluated per run (the
    // paper's "10k runs" column).
    let t0 = std::time::Instant::now();
    let horizon = 10 * (c_emax.ceil() as i64 + 10);
    let ta1 = model.ta1();
    let ta2 = model.ta2();
    let pa = model.pa_goal();
    let pb = model.pb_goal();
    let p1 = model.p1_goal();
    let p2 = model.p2_goal();
    let success = model.success();
    let done = model.done();
    let mut counts = [0_usize; 7]; // ta1, ta2, pa, pb, p1, p2, dmax
    let mut durations = Vec::with_capacity(runs);
    {
        let exp = tempo_core::modest::PtaExplorer::new(&model.pta, &[]);
        let mut sim = Modes::new(&model.pta, &[], Scheduler::Alap, 2026);
        for _ in 0..runs {
            let run = sim.simulate(horizon, 1_000_000);
            if run.globally(&exp, &ta1) {
                counts[0] += 1;
            }
            if run.globally(&exp, &ta2) {
                counts[1] += 1;
            }
            if run.first_hit(&exp, &pa).is_some() {
                counts[2] += 1;
            }
            if run.first_hit(&exp, &pb).is_some() {
                counts[3] += 1;
            }
            if run.first_hit(&exp, &p1).is_some() {
                counts[4] += 1;
            }
            if run.first_hit(&exp, &p2).is_some() {
                counts[5] += 1;
            }
            if run
                .first_hit(&exp, &success)
                .is_some_and(|t| t <= dmax_bound)
            {
                counts[6] += 1;
            }
            durations.push(run.first_hit(&exp, &done).unwrap_or(horizon) as f64);
        }
    }
    let bern_obs = |hits: usize| {
        let mean = hits as f64 / runs as f64;
        tempo_core::modest::ModesObservation {
            observations: hits,
            runs,
            mean,
            std_dev: (mean * (1.0 - mean)).sqrt(),
        }
    };
    let (s_ta1, s_ta2) = (bern_obs(counts[0]), bern_obs(counts[1]));
    let (s_pa, s_pb) = (bern_obs(counts[2]), bern_obs(counts[3]));
    let (s_p1, s_p2) = (bern_obs(counts[4]), bern_obs(counts[5]));
    let s_dmax = bern_obs(counts[6]);
    let s_emax = {
        let n = durations.len() as f64;
        let mean = durations.iter().sum::<f64>() / n;
        let var = durations.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        tempo_core::modest::ModesObservation {
            observations: durations.len(),
            runs,
            mean,
            std_dev: var.sqrt(),
        }
    };
    let modes_time = t0.elapsed();

    // ---------------- the table ----------------
    println!("{:<9} {:<14} {:<14} modes", "property", "mctau", "mcpta");
    println!("{:-<70}", "");
    let fmt_bool = |b: bool| if b { "true" } else { "FALSE" }.to_owned();
    let bern = |o: &tempo_core::modest::ModesObservation| {
        if o.observations == 0 {
            format!("0 (no observations in {} runs)", o.runs)
        } else if o.observations == o.runs {
            format!("true (all {} runs)", o.runs)
        } else {
            format!("µ={:.3e}, σ={:.1e}", o.mean, o.std_dev)
        }
    };
    let safe_bern = |o: &tempo_core::modest::ModesObservation, name: &str| {
        if o.observations == o.runs {
            format!("true (all {} runs satisfied {name})", o.runs)
        } else {
            format!("VIOLATED in {} runs", o.runs - o.observations)
        }
    };
    println!(
        "{:<9} {:<14} {:<14} {}",
        "TA1",
        fmt_bool(m_ta1),
        fmt_bool(c_ta1),
        safe_bern(&s_ta1, "TA1")
    );
    println!(
        "{:<9} {:<14} {:<14} {}",
        "TA2",
        fmt_bool(m_ta2),
        fmt_bool(c_ta2),
        safe_bern(&s_ta2, "TA2")
    );
    println!(
        "{:<9} {:<14} {:<14} {}",
        "PA",
        m_pa.to_string(),
        format_p(c_pa),
        bern(&s_pa)
    );
    println!(
        "{:<9} {:<14} {:<14} {}",
        "PB",
        m_pb.to_string(),
        format_p(c_pb),
        bern(&s_pb)
    );
    println!(
        "{:<9} {:<14} {:<14} {}",
        "P1",
        m_p1.to_string(),
        format_p(c_p1),
        bern(&s_p1)
    );
    println!(
        "{:<9} {:<14} {:<14} {}",
        "P2",
        m_p2.to_string(),
        format_p(c_p2),
        bern(&s_p2)
    );
    println!(
        "{:<9} {:<14} {:<14} µ={:.4}, σ={:.2e}",
        "Dmax",
        m_dmax.to_string(),
        format_p(c_dmax),
        s_dmax.mean,
        s_dmax.std_dev
    );
    println!(
        "{:<9} {:<14} {:<14.3} µ={:.3}, σ={:.3}",
        "Emax", "n/a", c_emax, s_emax.mean, s_emax.std_dev
    );

    println!();
    println!(
        "mcpta MDP: {} states, {} actions, {} transitions",
        stats.states, stats.actions, stats.transitions
    );
    println!(
        "timing: mctau {:.2?}, mcpta {:.2?} (+{:.2?} for Dmax), modes {:.2?} for {} runs",
        mctau_time, mcpta_time, dmax_time, modes_time, runs
    );
    println!();
    println!("Shape checks vs the paper's Table I:");
    println!(
        "  * mctau: TA1/TA2 exact, PA/PB exactly 0, P1/P2/Dmax only [0, 1] — {}",
        ok(m_ta1
            && m_ta2
            && m_pa.upper == 0.0
            && m_pb.upper == 0.0
            && m_p1.upper == 1.0
            && m_p2.upper == 1.0)
    );
    println!(
        "  * mcpta: PA=PB=0, 0 < P2 <= P1 << 1, Dmax ≈ 1 — {}",
        ok(c_pa == 0.0 && c_pb == 0.0 && c_p2 > 0.0 && c_p2 <= c_p1 && c_p1 < 0.01 && c_dmax > 0.9)
    );
    println!(
        "  * modes: rare events (PA, PB, P2) unobserved in {runs} runs — {}",
        ok(s_pa.observations == 0 && s_pb.observations == 0)
    );
}

fn format_p(p: f64) -> String {
    if p == 0.0 {
        "0".to_owned()
    } else if p > 0.1 {
        format!("{p:.6}")
    } else {
        format!("{p:.3e}")
    }
}

fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
