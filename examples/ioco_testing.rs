//! The model-based-testing experiment of §V of the paper: the ioco
//! testing theory and its timed variant rtioco.
//!
//! * the drinks-dispenser specification is checked against a conforming
//!   implementation and three mutants, first analytically (the ioco
//!   relation decided exactly) and then by TorX-style randomized test
//!   campaigns ("millions of test events can be automatically generated,
//!   and 'on-the-fly' executed and analysed");
//! * a timed controller specification is tested online in the
//!   UPPAAL-TRON style (rtioco): implementations that miss the response
//!   deadline are caught.
//!
//! Run with: `cargo run --release --example ioco_testing`

use tempo_core::ioco::{check_ioco, LtsIut, TestGenerator, TimedTester};
use tempo_models::vending::{
    controller_spec, dispenser_good, dispenser_mutant_output, dispenser_mutant_refund,
    dispenser_mutant_silent, dispenser_spec, FixedDelayController,
};

fn main() {
    println!("== E6: model-based testing (ioco / rtioco) ==\n");
    let spec = dispenser_spec();
    let implementations: Vec<(&str, tempo_core::ioco::Lts)> = vec![
        ("good", dispenser_good()),
        (
            "mutant-output (tea after one coin)",
            dispenser_mutant_output(),
        ),
        (
            "mutant-silent (may swallow the coin)",
            dispenser_mutant_silent(),
        ),
        (
            "mutant-refund (undeclared output)",
            dispenser_mutant_refund(),
        ),
    ];

    // ---------------- the ioco relation, decided exactly ----------------
    println!("ioco relation (exact decision):");
    for (name, imp) in &implementations {
        match check_ioco(imp, &spec) {
            Ok(()) => println!("  {name:<40} conforms"),
            Err(v) => println!("  {name:<40} VIOLATES ioco: {v}"),
        }
    }

    // ---------------- randomized test campaigns ----------------
    let tests = 500;
    let depth = 25;
    println!("\nTorX-style online campaigns ({tests} tests × ≤{depth} events):");
    let mut total_events = 0_usize;
    for (name, imp) in &implementations {
        let mut gen = TestGenerator::new(&spec, 11);
        let mut iut = LtsIut::new(imp.clone(), 29);
        let (failures, first) = gen.campaign(&mut iut, tests, depth);
        total_events += tests * depth;
        match first {
            Some(v) => println!(
                "  {name:<40} {failures:>3}/{tests} tests failed (first: {})",
                verdict_summary(&v)
            ),
            None => println!("  {name:<40} {failures:>3}/{tests} tests failed"),
        }
    }
    println!("  (~{total_events} test events generated and checked on the fly)");

    // ---------------- offline test-case generation ----------------
    println!("\noffline test-case generation (sound by construction):");
    let mut gen = TestGenerator::new(&spec, 99);
    let sizes: Vec<usize> = (0..50).map(|_| gen.generate(8).size()).collect();
    println!(
        "  50 generated test trees of depth ≤ 8: {} .. {} nodes (mean {:.1})",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
        sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
    );

    // ---------------- rtioco (UPPAAL-TRON analogue) ----------------
    println!("\nrtioco online testing (req -> resp within 3 time units):");
    let timed_spec = controller_spec(3);
    for (name, delay) in [
        ("responds after 1", 1),
        ("responds after 3", 3),
        ("responds after 5", 5),
    ] {
        let mut tester = TimedTester::new(&timed_spec, &["req"], &["resp"], 7);
        let mut iut = FixedDelayController::new(delay);
        let (failures, _) = tester.campaign(&mut iut, 50, 60);
        let expected = delay <= 3;
        println!(
            "  IUT {name:<18}: {failures:>2}/50 sessions failed — {}",
            if (failures == 0) == expected {
                "as expected"
            } else {
                "MISMATCH"
            }
        );
    }
}

fn verdict_summary(v: &tempo_core::ioco::TestVerdict) -> String {
    match v {
        tempo_core::ioco::TestVerdict::Fail(trace, obs) => {
            let t: Vec<String> = trace.iter().map(ToString::to_string).collect();
            format!("after ⟨{}⟩ observed {obs}", t.join(" "))
        }
        other => format!("{other:?}"),
    }
}
