//! The two-tier, content-addressed verdict cache.
//!
//! * **Memory tier** — a mutex-striped [`ShardedMap`] from cache key to
//!   verdict. Entries were validated when produced (the certificate
//!   pipeline replays every certificate before the engine returns), so
//!   a memory hit is served without re-validation.
//! * **Disk tier** (optional) — one text file per certified verdict in
//!   the `tempo-witness` v1 format, preceded by a small header carrying
//!   the canonical verdict line. Disk entries outlive the process and
//!   are therefore *not* trusted: on every hit the certificate is
//!   parsed and replayed against the live model through the independent
//!   validator, and any mismatch (truncation, bit-flips, a stale file
//!   for a since-changed model that happens to collide) rejects the
//!   entry and falls back to recomputation.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tempo_conc::ShardedMap;
use tempo_obs::{Budget, Fingerprint, RunReport};
use tempo_witness::format;

use crate::job::{JobKind, JobVerdict};

/// Header line of a disk-tier cache file.
const DISK_MAGIC: &str = "tempo-svc-cache v1";

/// A cached verdict: the canonical answer, the work of the run that
/// produced it, and the rendered certificate (when the verdict admits
/// one) for the disk tier.
#[derive(Clone)]
pub(crate) struct CachedVerdict {
    pub verdict: JobVerdict,
    pub report: RunReport,
    pub certificate: Option<Arc<String>>,
}

/// Outcome of a disk-tier probe, distinguishing "nothing there" from
/// "something there that failed certificate replay".
pub(crate) enum DiskLookup {
    /// No file for this key.
    Absent,
    /// A file existed but was corrupted or stale; the caller recomputes.
    /// `evicted` reports whether the dead entry was deleted from disk
    /// (it can never validate again, so leaving it would re-pay the
    /// replay cost on every future lookup).
    Rejected {
        /// Whether the dead file was removed.
        evicted: bool,
    },
    /// The certificate replayed successfully against the live model.
    /// Boxed: a `CachedVerdict` dwarfs the other variants.
    Hit(Box<CachedVerdict>),
}

/// Process-wide sequence for unique temp-file names: concurrent writers
/// of the *same* key must never share a temp path, or one writer's
/// rename can publish another's half-written file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

pub(crate) struct VerdictCache {
    memory: ShardedMap<Fingerprint, CachedVerdict>,
    disk: Option<PathBuf>,
}

impl VerdictCache {
    pub(crate) fn new(shards: usize, disk: Option<PathBuf>) -> Self {
        if let Some(dir) = &disk {
            // Best-effort: a failure here surfaces later as disk misses.
            let _ = fs::create_dir_all(dir);
        }
        VerdictCache {
            memory: ShardedMap::new(shards),
            disk,
        }
    }

    pub(crate) fn lookup_memory(&self, key: &Fingerprint) -> Option<CachedVerdict> {
        self.memory.lock_shard(key).get(key).cloned()
    }

    /// Inserts into the memory tier and, when the kind persists and a
    /// certificate exists, writes the disk file atomically (temp file +
    /// rename) so a crashed writer never leaves a half-entry.
    pub(crate) fn insert(&self, key: Fingerprint, kind: &JobKind, cached: &CachedVerdict) {
        self.memory.lock_shard(&key).insert(key, cached.clone());
        let (Some(dir), Some(cert), true) =
            (&self.disk, &cached.certificate, kind.persists_to_disk())
        else {
            return;
        };
        let path = entry_path(dir, &key);
        // Per-writer temp name (key + pid + sequence): concurrent
        // inserts of the same key each write their own file and race
        // only on the final atomic rename, which either way publishes a
        // complete entry.
        let tmp = dir.join(format!(
            "{}.{}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let body = format!(
            "{DISK_MAGIC}\nverdict {}\nreport {}\n\n{cert}",
            cached.verdict.render(),
            cached.report.render_line()
        );
        // Best-effort persistence: an IO error only costs future warm
        // starts, never correctness. sync_all before the rename so a
        // crash cannot publish a name pointing at unflushed data.
        let ok = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(body.as_bytes()).and_then(|()| f.sync_all()))
            .and_then(|()| fs::rename(&tmp, &path));
        if ok.is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Probes the disk tier for `key`, replaying any stored certificate
    /// against the live model behind `kind` before trusting it.
    pub(crate) fn lookup_disk(
        &self,
        key: &Fingerprint,
        kind: &JobKind,
        budget: &Budget,
    ) -> DiskLookup {
        let Some(dir) = &self.disk else {
            return DiskLookup::Absent;
        };
        let path = entry_path(dir, key);
        let Ok(text) = fs::read_to_string(&path) else {
            return DiskLookup::Absent;
        };
        match Self::revalidate(&text, kind, budget) {
            Some(cached) => {
                // Promote to the memory tier so the replay cost is paid
                // once per process, not once per request.
                self.memory.lock_shard(key).insert(*key, cached.clone());
                DiskLookup::Hit(Box::new(cached))
            }
            None => {
                // A corrupt or stale entry can never validate again:
                // delete it so subsequent lookups miss cheaply instead
                // of re-parsing and re-replaying a dead certificate.
                let evicted = fs::remove_file(&path).is_ok();
                DiskLookup::Rejected { evicted }
            }
        }
    }

    /// Parses and fully re-validates one disk entry. `None` on any
    /// defect — the entry is treated as corrupted.
    fn revalidate(text: &str, kind: &JobKind, budget: &Budget) -> Option<CachedVerdict> {
        let mut lines = text.lines().peekable();
        if lines.next()?.trim() != DISK_MAGIC {
            return None;
        }
        let verdict_line = lines.next()?.trim().strip_prefix("verdict ")?.to_owned();
        let verdict = JobVerdict::parse(&verdict_line)?;
        // The persisted work report of the run that produced the entry,
        // so a disk hit keeps its true states_explored/wall_time in the
        // per-tenant rollups. Absent on legacy files (fall back below);
        // present but unparseable means the header is corrupt.
        let stored_report = match lines.peek() {
            Some(l) if l.trim().starts_with("report ") => {
                let line = lines.next()?.trim().strip_prefix("report ")?.to_owned();
                Some(RunReport::parse_line(&line)?)
            }
            _ => None,
        };
        let cert_text: String = {
            let rest: Vec<&str> = lines.collect();
            rest.join("\n")
        };
        // `runs` certificates need concrete declarations to parse; every
        // kind the disk tier persists is network-independent to *parse*
        // (validation always runs against the live model).
        let cert = format::parse_standalone(&cert_text).ok()?;
        kind.validate_cached(&verdict, &cert, budget).ok()?;
        let report = stored_report.unwrap_or(RunReport {
            certificate_bytes: cert_text.len() as u64,
            ..RunReport::default()
        });
        Some(CachedVerdict {
            verdict,
            report,
            certificate: Some(Arc::new(cert_text)),
        })
    }

    /// Number of entries in the memory tier (tests and diagnostics).
    pub(crate) fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// The disk path an entry for `key` would live at, if a disk tier is
    /// configured (tests use this to tamper with entries).
    pub(crate) fn disk_path(&self, key: &Fingerprint) -> Option<PathBuf> {
        self.disk.as_ref().map(|dir| entry_path(dir, key))
    }
}

fn entry_path(dir: &Path, key: &Fingerprint) -> PathBuf {
    dir.join(format!("{}.wit", key.to_hex()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{NetworkBuilder, StateFormula};

    /// A fresh scratch directory under the system temp dir.
    fn unique_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tempo-cache-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A minimal persistable job kind (Reach persists to disk).
    fn reach_kind() -> JobKind {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.edge(l0, l1).done();
        let a = a.done();
        let net = Arc::new(b.build());
        let goal = StateFormula::at(a, l1);
        JobKind::Reach {
            net,
            goal,
            explore: tempo_obs::ExploreConfig::default(),
        }
    }

    /// Regression: concurrent inserts of the *same* key used to share
    /// one temp path (`path.with_extension("tmp")`), so writer A could
    /// rename writer B's half-written file into place. With per-writer
    /// temp names every published entry is complete, whichever writer's
    /// rename lands last.
    #[test]
    fn concurrent_same_key_inserts_publish_only_complete_entries() {
        let dir = unique_dir("race");
        let cache = VerdictCache::new(4, Some(dir.clone()));
        let kind = reach_kind();
        let key = Fingerprint::from_hex("00112233445566778899aabbccddeeff").unwrap();
        // A large certificate widens the window in which a torn write
        // would be observable.
        let cert = Arc::new("certificate-line\n".repeat(4096));
        let cached = CachedVerdict {
            verdict: JobVerdict::Reachable(true),
            report: RunReport {
                states_explored: 42,
                ..RunReport::default()
            },
            certificate: Some(Arc::clone(&cert)),
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let kind = &kind;
                let cached = &cached;
                scope.spawn(move || {
                    for _ in 0..25 {
                        cache.insert(key, kind, cached);
                    }
                });
            }
        });
        let expected = format!(
            "{DISK_MAGIC}\nverdict {}\nreport {}\n\n{cert}",
            cached.verdict.render(),
            cached.report.render_line()
        );
        let on_disk = fs::read_to_string(cache.disk_path(&key).unwrap()).unwrap();
        assert_eq!(on_disk, expected, "published entry must be complete");
        let leftover: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(
            leftover.is_empty(),
            "temp files must not leak: {leftover:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression: a corrupt disk entry used to stay on disk forever,
    /// re-paying the parse-and-replay cost on every lookup. Now the dead
    /// file is deleted on rejection and the next probe misses cheaply.
    #[test]
    fn rejected_disk_entry_is_evicted_and_next_lookup_misses() {
        let dir = unique_dir("evict");
        let cache = VerdictCache::new(1, Some(dir.clone()));
        let kind = reach_kind();
        let key = Fingerprint::from_hex("ffeeddccbbaa99887766554433221100").unwrap();
        let path = cache.disk_path(&key).unwrap();
        fs::write(&path, "not a tempo-svc-cache file").unwrap();
        match cache.lookup_disk(&key, &kind, &Budget::unlimited()) {
            DiskLookup::Rejected { evicted } => assert!(evicted, "dead entry must be deleted"),
            _ => panic!("garbage file must be rejected"),
        }
        assert!(!path.exists(), "rejected entry must be gone from disk");
        assert!(
            matches!(
                cache.lookup_disk(&key, &kind, &Budget::unlimited()),
                DiskLookup::Absent
            ),
            "second lookup must miss without re-replay"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
