//! The two-tier, content-addressed verdict cache.
//!
//! * **Memory tier** — a mutex-striped [`ShardedMap`] from cache key to
//!   verdict. Entries were validated when produced (the certificate
//!   pipeline replays every certificate before the engine returns), so
//!   a memory hit is served without re-validation.
//! * **Disk tier** (optional) — one text file per certified verdict in
//!   the `tempo-witness` v1 format, preceded by a small header carrying
//!   the canonical verdict line. Disk entries outlive the process and
//!   are therefore *not* trusted: on every hit the certificate is
//!   parsed and replayed against the live model through the independent
//!   validator, and any mismatch (truncation, bit-flips, a stale file
//!   for a since-changed model that happens to collide) rejects the
//!   entry and falls back to recomputation.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tempo_conc::ShardedMap;
use tempo_obs::{Budget, Fingerprint, RunReport};
use tempo_witness::format;

use crate::job::{JobKind, JobVerdict};

/// Header line of a disk-tier cache file.
const DISK_MAGIC: &str = "tempo-svc-cache v1";

/// A cached verdict: the canonical answer, the work of the run that
/// produced it, and the rendered certificate (when the verdict admits
/// one) for the disk tier.
#[derive(Clone)]
pub(crate) struct CachedVerdict {
    pub verdict: JobVerdict,
    pub report: RunReport,
    pub certificate: Option<Arc<String>>,
}

/// Outcome of a disk-tier probe, distinguishing "nothing there" from
/// "something there that failed certificate replay".
pub(crate) enum DiskLookup {
    /// No file for this key.
    Absent,
    /// A file existed but was corrupted or stale; the caller recomputes.
    Rejected,
    /// The certificate replayed successfully against the live model.
    Hit(CachedVerdict),
}

pub(crate) struct VerdictCache {
    memory: ShardedMap<Fingerprint, CachedVerdict>,
    disk: Option<PathBuf>,
}

impl VerdictCache {
    pub(crate) fn new(shards: usize, disk: Option<PathBuf>) -> Self {
        if let Some(dir) = &disk {
            // Best-effort: a failure here surfaces later as disk misses.
            let _ = fs::create_dir_all(dir);
        }
        VerdictCache {
            memory: ShardedMap::new(shards),
            disk,
        }
    }

    pub(crate) fn lookup_memory(&self, key: &Fingerprint) -> Option<CachedVerdict> {
        self.memory.lock_shard(key).get(key).cloned()
    }

    /// Inserts into the memory tier and, when the kind persists and a
    /// certificate exists, writes the disk file atomically (temp file +
    /// rename) so a crashed writer never leaves a half-entry.
    pub(crate) fn insert(&self, key: Fingerprint, kind: &JobKind, cached: &CachedVerdict) {
        self.memory.lock_shard(&key).insert(key, cached.clone());
        let (Some(dir), Some(cert), true) =
            (&self.disk, &cached.certificate, kind.persists_to_disk())
        else {
            return;
        };
        let path = entry_path(dir, &key);
        let tmp = path.with_extension("tmp");
        let body = format!(
            "{DISK_MAGIC}\nverdict {}\n\n{cert}",
            cached.verdict.render()
        );
        // Best-effort persistence: an IO error only costs future warm
        // starts, never correctness.
        let ok = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .and_then(|()| fs::rename(&tmp, &path));
        if ok.is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Probes the disk tier for `key`, replaying any stored certificate
    /// against the live model behind `kind` before trusting it.
    pub(crate) fn lookup_disk(
        &self,
        key: &Fingerprint,
        kind: &JobKind,
        budget: &Budget,
    ) -> DiskLookup {
        let Some(dir) = &self.disk else {
            return DiskLookup::Absent;
        };
        let path = entry_path(dir, key);
        let Ok(text) = fs::read_to_string(&path) else {
            return DiskLookup::Absent;
        };
        match Self::revalidate(&text, kind, budget) {
            Some(cached) => {
                // Promote to the memory tier so the replay cost is paid
                // once per process, not once per request.
                self.memory.lock_shard(key).insert(*key, cached.clone());
                DiskLookup::Hit(cached)
            }
            None => DiskLookup::Rejected,
        }
    }

    /// Parses and fully re-validates one disk entry. `None` on any
    /// defect — the entry is treated as corrupted.
    fn revalidate(text: &str, kind: &JobKind, budget: &Budget) -> Option<CachedVerdict> {
        let mut lines = text.lines();
        if lines.next()?.trim() != DISK_MAGIC {
            return None;
        }
        let verdict_line = lines.next()?.trim().strip_prefix("verdict ")?.to_owned();
        let verdict = JobVerdict::parse(&verdict_line)?;
        let cert_text: String = {
            let rest: Vec<&str> = lines.collect();
            rest.join("\n")
        };
        // `runs` certificates need concrete declarations to parse; every
        // kind the disk tier persists is network-independent to *parse*
        // (validation always runs against the live model).
        let cert = format::parse_standalone(&cert_text).ok()?;
        kind.validate_cached(&verdict, &cert, budget).ok()?;
        let report = RunReport {
            certificate_bytes: cert_text.len() as u64,
            ..RunReport::default()
        };
        Some(CachedVerdict {
            verdict,
            report,
            certificate: Some(Arc::new(cert_text)),
        })
    }

    /// Number of entries in the memory tier (tests and diagnostics).
    pub(crate) fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// The disk path an entry for `key` would live at, if a disk tier is
    /// configured (tests use this to tamper with entries).
    pub(crate) fn disk_path(&self, key: &Fingerprint) -> Option<PathBuf> {
        self.disk.as_ref().map(|dir| entry_path(dir, key))
    }
}

fn entry_path(dir: &Path, key: &Fingerprint) -> PathBuf {
    dir.join(format!("{}.wit", key.to_hex()))
}
