//! Job vocabulary of the analysis service: what can be asked
//! ([`JobKind`]), what comes back ([`JobVerdict`], [`JobResult`]), and
//! how a job turns into a content-addressed cache key.

use std::fmt;
use std::sync::Arc;

use tempo_bip::BipSystem;
use tempo_cora::PricedNetwork;
use tempo_ecdar::Tioa;
use tempo_ioco::Lts;
use tempo_mdp::{Mdp, Opt};
use tempo_modest::{Mcpta, Pta};
use tempo_obs::{
    Budget, ExhaustionReason, ExploreConfig, Fingerprint, LintError, Outcome, RunReport,
    StableDigest, StableHasher,
};
use tempo_rare::{certified_cost_probability, certified_splitting_probability, SplitConfig};
use tempo_smc::{Estimate, RatePolicy};
use tempo_ta::{Network, StateFormula};
use tempo_witness::certify::{self, Certificate, GameObjective};

/// How many runs a probability job exports into its certificate: enough
/// to catch a simulator that samples through guards, cheap enough not to
/// dominate the estimate itself.
const WITNESS_RUNS: usize = 2;

/// One analysis query, bundled with the model it runs on.
///
/// Models are held in [`Arc`]s so a request is cheap to clone into the
/// work queue and many jobs can share one model without copying it.
#[derive(Clone)]
pub enum JobKind {
    /// Symbolic reachability (`E<> goal`) on a timed-automata network.
    Reach {
        /// The network under analysis.
        net: Arc<Network>,
        /// The goal formula.
        goal: StateFormula,
        /// State-space reduction knobs for the exploration engine.
        /// Part of the cache key: a reduced and an unreduced run answer
        /// the same question but report different work.
        explore: ExploreConfig,
    },
    /// Leads-to / response checking (`phi --> psi`).
    LeadsTo {
        /// The network under analysis.
        net: Arc<Network>,
        /// The trigger formula.
        phi: StateFormula,
        /// The response formula.
        psi: StateFormula,
    },
    /// Minimum-cost reachability on a priced network (CORA).
    MinCost {
        /// The priced network under analysis.
        pnet: Arc<PricedNetwork>,
        /// The goal formula.
        goal: StateFormula,
    },
    /// Reachability-game synthesis (TIGA): can the controller force the
    /// goal whatever the environment does?
    ReachGame {
        /// The game network (controllable/uncontrollable edges).
        net: Arc<Network>,
        /// The goal formula.
        goal: StateFormula,
    },
    /// Safety-game synthesis (TIGA): can the controller avoid the bad
    /// states forever?
    SafetyGame {
        /// The game network.
        net: Arc<Network>,
        /// The bad-state formula to avoid.
        bad: StateFormula,
    },
    /// Statistical probability estimation (`Pr[<=bound](<> goal)`).
    Probability {
        /// The network under simulation.
        net: Arc<Network>,
        /// Exit-rate policy for stochastic delays.
        rates: RatePolicy,
        /// Simulation seed (part of the cache key: a different seed is a
        /// different experiment).
        seed: u64,
        /// The goal formula.
        goal: StateFormula,
        /// Time bound per run.
        bound: f64,
        /// Number of runs requested.
        runs: usize,
        /// Confidence level (e.g. `0.95`).
        confidence: f64,
    },
    /// Cost-bounded probability estimation on a priced network
    /// (`Pr[cost <= cost_bound, time <= bound](<> goal)`).
    PricedSmc {
        /// The priced network under simulation.
        pnet: Arc<PricedNetwork>,
        /// Exit-rate policy for stochastic delays.
        rates: RatePolicy,
        /// Simulation seed (part of the cache key).
        seed: u64,
        /// The goal formula.
        goal: StateFormula,
        /// Accumulated-cost bound per run.
        cost_bound: f64,
        /// Time bound per run.
        bound: f64,
        /// Number of runs requested.
        runs: usize,
        /// Confidence level.
        confidence: f64,
    },
    /// Rare-event probability estimation by importance splitting
    /// (`Pr[<=bound](<> goal)` for goals far below naive Monte Carlo's
    /// resolution).
    RareEvent {
        /// The network under simulation.
        net: Arc<Network>,
        /// Exit-rate policy for stochastic delays.
        rates: RatePolicy,
        /// Simulation seed (part of the cache key).
        seed: u64,
        /// The goal formula.
        goal: StateFormula,
        /// Time bound per run.
        bound: f64,
        /// Splitting-engine configuration (part of the cache key: a
        /// different effort or method is a different experiment).
        config: SplitConfig,
    },
    /// Quantitative reachability on an explicit MDP (value iteration).
    MdpReach {
        /// The MDP under analysis.
        mdp: Arc<Mdp>,
        /// Optimization direction.
        opt: Opt,
        /// Goal membership per state.
        goal: Vec<bool>,
        /// Accepted absolute deviation for certificate validation.
        epsilon: f64,
    },
    /// Probabilistic reachability on a compiled MODEST model via the
    /// digital-clocks MDP (mcpta). The expensive MDP construction runs
    /// on every miss — which is exactly what a warm cache hit skips.
    McptaReach {
        /// The compiled PTA network.
        pta: Arc<Pta>,
        /// Optimization direction.
        opt: Opt,
        /// The goal formula.
        goal: StateFormula,
        /// Accepted absolute deviation for certificate validation.
        epsilon: f64,
    },
    /// Global-deadlock search on a BIP system.
    BipDeadlock {
        /// The composed BIP system.
        sys: Arc<BipSystem>,
    },
    /// Exhaustive deadlock-freedom check (`A[] not deadlock`) on a
    /// timed-automata network.
    DeadlockFree {
        /// The network under analysis.
        net: Arc<Network>,
        /// State-space reduction knobs for the exploration engine.
        /// Part of the cache key, like [`JobKind::Reach`]'s.
        explore: ExploreConfig,
    },
    /// Timed refinement between two TIOA specifications (ECDAR): does
    /// the implementation refine the specification?
    Refines {
        /// The implementation automaton.
        imp: Arc<Tioa>,
        /// The specification automaton.
        spec: Arc<Tioa>,
    },
    /// ioco conformance between an implementation LTS and a
    /// specification LTS.
    Ioco {
        /// The implementation under test.
        imp: Arc<Lts>,
        /// The specification it must conform to.
        spec: Arc<Lts>,
    },
}

impl JobKind {
    /// Stable engine/query discriminator, the first component of the
    /// cache key: the same network analysed as a plain model and as a
    /// game must never share a cache slot.
    #[must_use]
    pub fn engine_tag(&self) -> &'static str {
        match self {
            JobKind::Reach { .. } => "ta-reach",
            JobKind::LeadsTo { .. } => "ta-leads-to",
            JobKind::MinCost { .. } => "cora-min-cost",
            JobKind::ReachGame { .. } => "tiga-reach-game",
            JobKind::SafetyGame { .. } => "tiga-safety-game",
            JobKind::Probability { .. } => "smc-probability",
            JobKind::PricedSmc { .. } => "smc-priced",
            JobKind::RareEvent { .. } => "rare-splitting",
            JobKind::MdpReach { .. } => "mdp-reach",
            JobKind::McptaReach { .. } => "mcpta-reach",
            JobKind::BipDeadlock { .. } => "bip-deadlock",
            JobKind::DeadlockFree { .. } => "ta-deadlock",
            JobKind::Refines { .. } => "ecdar-refines",
            JobKind::Ioco { .. } => "ioco-conform",
        }
    }

    /// Runs the static-analysis gate of the engine this job targets —
    /// the same `check_first` entry point a direct caller of the engine
    /// would use — under the default (errors-block) configuration.
    ///
    /// Kinds whose model has no lint substrate (an explicit [`Mdp`], a
    /// compiled [`Pta`] whose MODEST source was checked at compile
    /// time) pass trivially.
    ///
    /// # Errors
    ///
    /// The typed [`LintError`] with every blocking diagnostic; the
    /// service wraps it in [`Rejected::Lint`] at admission.
    pub fn lint_gate(&self) -> Result<(), LintError> {
        let config = tempo_lint::LintConfig::default();
        match self {
            JobKind::Reach { net, .. }
            | JobKind::LeadsTo { net, .. }
            | JobKind::DeadlockFree { net, .. } => {
                tempo_lint::check_network_first(net, &config).map(drop)
            }
            JobKind::MinCost { pnet, .. } | JobKind::PricedSmc { pnet, .. } => {
                pnet.check_first(&config).map(drop)
            }
            JobKind::ReachGame { net, .. } | JobKind::SafetyGame { net, .. } => {
                tempo_tiga::GameSolver::check_first(net, &config).map(drop)
            }
            JobKind::Probability { net, .. } | JobKind::RareEvent { net, .. } => {
                tempo_smc::StatisticalChecker::check_first(net, &config).map(drop)
            }
            JobKind::MdpReach { .. }
            | JobKind::McptaReach { .. }
            | JobKind::Refines { .. }
            | JobKind::Ioco { .. } => Ok(()),
            JobKind::BipDeadlock { sys } => tempo_lint::check_bip_first(sys, &config).map(drop),
        }
    }

    /// The content-addressed cache key: engine tag + structural model
    /// fingerprint + query + engine configuration + budget class.
    ///
    /// Two jobs share a key exactly when serving one's cached verdict
    /// for the other is sound *and* byte-identical: renaming model
    /// labels or reordering guard conjunctions does not change the key,
    /// while a different seed, optimization direction, epsilon or
    /// budget class does.
    #[must_use]
    pub fn cache_key(&self, budget: &Budget) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_tag("tempo-svc-job");
        h.write_tag(self.engine_tag());
        match self {
            JobKind::Reach { net, goal, explore } => {
                net.digest(&mut h);
                goal.digest(&mut h);
                explore.digest(&mut h);
            }
            JobKind::LeadsTo { net, phi, psi } => {
                net.digest(&mut h);
                phi.digest(&mut h);
                psi.digest(&mut h);
            }
            JobKind::MinCost { pnet, goal } => {
                pnet.digest(&mut h);
                goal.digest(&mut h);
            }
            JobKind::ReachGame { net, goal } => {
                net.digest(&mut h);
                goal.digest(&mut h);
            }
            JobKind::SafetyGame { net, bad } => {
                net.digest(&mut h);
                bad.digest(&mut h);
            }
            JobKind::Probability {
                net,
                rates,
                seed,
                goal,
                bound,
                runs,
                confidence,
            } => {
                net.digest(&mut h);
                rates.digest(&mut h);
                h.write_u64(*seed);
                goal.digest(&mut h);
                h.write_f64(*bound);
                h.write_usize(*runs);
                h.write_f64(*confidence);
            }
            JobKind::PricedSmc {
                pnet,
                rates,
                seed,
                goal,
                cost_bound,
                bound,
                runs,
                confidence,
            } => {
                pnet.digest(&mut h);
                rates.digest(&mut h);
                h.write_u64(*seed);
                goal.digest(&mut h);
                h.write_f64(*cost_bound);
                h.write_f64(*bound);
                h.write_usize(*runs);
                h.write_f64(*confidence);
            }
            JobKind::RareEvent {
                net,
                rates,
                seed,
                goal,
                bound,
                config,
            } => {
                net.digest(&mut h);
                rates.digest(&mut h);
                h.write_u64(*seed);
                goal.digest(&mut h);
                h.write_f64(*bound);
                digest_split_config(config, &mut h);
            }
            JobKind::MdpReach {
                mdp,
                opt,
                goal,
                epsilon,
            } => {
                mdp.digest(&mut h);
                h.write_u8(opt_tag(*opt));
                goal.digest(&mut h);
                h.write_f64(*epsilon);
            }
            JobKind::McptaReach {
                pta,
                opt,
                goal,
                epsilon,
            } => {
                pta.digest(&mut h);
                h.write_u8(opt_tag(*opt));
                goal.digest(&mut h);
                h.write_f64(*epsilon);
            }
            JobKind::BipDeadlock { sys } => sys.digest(&mut h),
            JobKind::DeadlockFree { net, explore } => {
                net.digest(&mut h);
                explore.digest(&mut h);
            }
            JobKind::Refines { imp, spec } => {
                imp.digest(&mut h);
                spec.digest(&mut h);
            }
            JobKind::Ioco { imp, spec } => {
                imp.digest(&mut h);
                spec.digest(&mut h);
            }
        }
        digest_budget_class(budget, &mut h);
        h.finish()
    }

    /// Whether a certified verdict of this kind is persisted to the
    /// on-disk tier. Statistical estimates (whose run certificates
    /// witness simulator legality, not the estimate's value) and the
    /// uncertified boolean verdicts — BIP/TA deadlock, refinement, ioco
    /// conformance (no certificate machinery) — stay memory-only.
    #[must_use]
    pub fn persists_to_disk(&self) -> bool {
        !matches!(
            self,
            JobKind::Probability { .. }
                | JobKind::PricedSmc { .. }
                | JobKind::RareEvent { .. }
                | JobKind::BipDeadlock { .. }
                | JobKind::DeadlockFree { .. }
                | JobKind::Refines { .. }
                | JobKind::Ioco { .. }
        )
    }

    /// Runs the engine behind this job under `budget`, returning the
    /// verdict, the work report, and — for verdicts that admit one — a
    /// replayable certificate.
    pub(crate) fn execute(&self, budget: &Budget) -> Result<Execution, JobError> {
        match self {
            JobKind::Reach { net, goal, explore } => {
                let (out, cert) =
                    certify::certified_reachable_with(net, goal, explore.clone(), budget)
                        .map_err(engine_err)?;
                let (res, report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::Reachable(res.reachable),
                    report,
                    certificate: cert.map(Certificate::Trace),
                })
            }
            JobKind::LeadsTo { net, phi, psi } => {
                let (out, cert) =
                    certify::certified_leads_to(net, phi, psi, budget).map_err(engine_err)?;
                let ((verdict, _stats), report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::LeadsTo(matches!(verdict, tempo_ta::Verdict::Satisfied)),
                    report,
                    certificate: cert.map(Certificate::Trace),
                })
            }
            JobKind::MinCost { pnet, goal } => {
                let (out, cert) =
                    certify::certified_min_cost(pnet, goal, budget).map_err(engine_err)?;
                let (res, report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::MinCost(res.map(|r| r.cost)),
                    report,
                    certificate: cert.map(Certificate::Cost),
                })
            }
            JobKind::ReachGame { net, goal } => {
                let (out, cert) =
                    certify::certified_reach_game(net, goal, budget).map_err(engine_err)?;
                let (res, report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::GameWinning(res.winning),
                    report,
                    certificate: cert.map(Certificate::Strategy),
                })
            }
            JobKind::SafetyGame { net, bad } => {
                let (out, cert) =
                    certify::certified_safety_game(net, bad, budget).map_err(engine_err)?;
                let (res, report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::GameWinning(res.winning),
                    report,
                    certificate: cert.map(Certificate::Strategy),
                })
            }
            JobKind::Probability {
                net,
                rates,
                seed,
                goal,
                bound,
                runs,
                confidence,
            } => {
                let (out, cert) = certify::certified_probability(
                    net,
                    rates,
                    *seed,
                    goal,
                    *bound,
                    *runs,
                    *confidence,
                    WITNESS_RUNS.min(*runs),
                    budget,
                )
                .map_err(engine_err)?;
                let (est, report) = split(out)?;
                let est = est.ok_or_else(|| {
                    JobError::Engine("statistical checker produced no estimate".to_owned())
                })?;
                Ok(Execution {
                    verdict: JobVerdict::Probability(est),
                    report,
                    certificate: Some(Certificate::Runs(cert)),
                })
            }
            JobKind::PricedSmc {
                pnet,
                rates,
                seed,
                goal,
                cost_bound,
                bound,
                runs,
                confidence,
            } => {
                let (out, cert) = certified_cost_probability(
                    pnet,
                    rates,
                    *seed,
                    goal,
                    *cost_bound,
                    *bound,
                    *runs,
                    *confidence,
                    WITNESS_RUNS.min(*runs),
                    budget,
                )
                .map_err(engine_err)?;
                let (est, report) = split(out)?;
                let est = est.ok_or_else(|| {
                    JobError::Engine("priced statistical checker produced no estimate".to_owned())
                })?;
                Ok(Execution {
                    verdict: JobVerdict::PricedProbability(est),
                    report,
                    certificate: Some(Certificate::PricedRuns(cert)),
                })
            }
            JobKind::RareEvent {
                net,
                rates,
                seed,
                goal,
                bound,
                config,
            } => {
                // The splitting engine certifies its goal trajectories
                // through the priced replay path; an unpriced query uses
                // the zero-cost pricing, under which every certified cost
                // is exactly 0.
                let pnet = PricedNetwork::new((**net).clone());
                let (out, cert) = certified_splitting_probability(
                    &pnet,
                    rates,
                    *seed,
                    goal,
                    *bound,
                    config,
                    WITNESS_RUNS,
                    budget,
                )
                .map_err(engine_err)?;
                let (est, report) = split(out)?;
                let est = est.ok_or_else(|| {
                    JobError::Engine("splitting engine produced no estimate".to_owned())
                })?;
                Ok(Execution {
                    verdict: JobVerdict::RareProbability {
                        p_hat: est.p_hat,
                        lower: est.lower,
                        upper: est.upper,
                        confidence: est.confidence,
                        runs_total: est.runs_total,
                        splits_spawned: est.splits_spawned,
                    },
                    report,
                    certificate: Some(Certificate::PricedRuns(cert)),
                })
            }
            JobKind::MdpReach {
                mdp,
                opt,
                goal,
                epsilon,
            } => {
                let (out, cert) =
                    certify::certified_mdp_reachability(mdp, *opt, goal, *epsilon, budget)
                        .map_err(engine_err)?;
                let (q, report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::MdpValue(q.initial_value),
                    report,
                    certificate: Some(Certificate::Scheduler(cert)),
                })
            }
            JobKind::McptaReach {
                pta,
                opt,
                goal,
                epsilon,
            } => {
                let (built, mut report) = split(Mcpta::try_build(pta, &[], budget))?;
                let m = built.ok_or_else(|| {
                    JobError::Engine("digital-clocks MDP construction produced no model".to_owned())
                })?;
                let (out, cert) = certify::certified_mcpta_reach(&m, *opt, goal, *epsilon, budget)
                    .map_err(engine_err)?;
                let (q, reach_report) = split(out)?;
                report.merge(&reach_report);
                Ok(Execution {
                    verdict: JobVerdict::McptaValue(q.initial_value),
                    report,
                    certificate: Some(Certificate::Scheduler(cert)),
                })
            }
            JobKind::BipDeadlock { sys } => {
                let (res, report) = split(sys.find_deadlock_governed(budget))?;
                Ok(Execution {
                    verdict: JobVerdict::BipDeadlock(res.is_some()),
                    report,
                    certificate: None,
                })
            }
            JobKind::DeadlockFree { net, explore } => {
                let mut mc = tempo_ta::ModelChecker::new(net).with_config(explore.clone());
                let out = mc
                    .try_deadlock_free_governed(budget)
                    .map_err(|e| JobError::Engine(e.to_string()))?;
                let ((verdict, _stats), report) = split(out)?;
                Ok(Execution {
                    verdict: JobVerdict::DeadlockFree(verdict.holds()),
                    report,
                    certificate: None,
                })
            }
            JobKind::Refines { imp, spec } => {
                let (res, report) = split(tempo_ecdar::refines_governed(imp, spec, budget))?;
                Ok(Execution {
                    verdict: JobVerdict::Refines(res.is_ok()),
                    report,
                    certificate: None,
                })
            }
            JobKind::Ioco { imp, spec } => {
                let res = tempo_ioco::check_ioco(imp, spec);
                Ok(Execution {
                    verdict: JobVerdict::Ioco(res.is_ok()),
                    report: RunReport::default(),
                    certificate: None,
                })
            }
        }
    }

    /// Validates a disk-loaded `(verdict, certificate)` pair against the
    /// *live* model of this job: the certificate must be of the right
    /// kind, must replay successfully, and must pin the verdict's value.
    ///
    /// `budget` governs validation work that itself explores a state
    /// space (rebuilding the digital-clocks MDP for mcpta verdicts).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch; the caller
    /// treats any error as "corrupted or stale — recompute".
    pub(crate) fn validate_cached(
        &self,
        verdict: &JobVerdict,
        cert: &Certificate,
        budget: &Budget,
    ) -> Result<(), String> {
        match (self, verdict, cert) {
            (
                JobKind::Reach { net, goal, .. },
                JobVerdict::Reachable(true),
                Certificate::Trace(c),
            ) => c.validate(net, goal).map_err(|e| e.to_string()),
            (
                JobKind::LeadsTo { net, psi, .. },
                JobVerdict::LeadsTo(false),
                Certificate::Trace(c),
            ) => {
                let avoid = StateFormula::not(psi.clone());
                c.validate(net, &avoid).map_err(|e| e.to_string())
            }
            (
                JobKind::MinCost { pnet, goal },
                JobVerdict::MinCost(Some(cost)),
                Certificate::Cost(c),
            ) => {
                if c.total != *cost {
                    return Err(format!(
                        "certificate total {} does not match verdict cost {cost}",
                        c.total
                    ));
                }
                c.validate(pnet, goal).map_err(|e| e.to_string())
            }
            (
                JobKind::ReachGame { net, goal },
                JobVerdict::GameWinning(true),
                Certificate::Strategy(c),
            ) => {
                if c.objective != GameObjective::Reach {
                    return Err("strategy certificate claims the wrong objective".to_owned());
                }
                c.validate(net, goal).map_err(|e| e.to_string())
            }
            (
                JobKind::SafetyGame { net, bad },
                JobVerdict::GameWinning(true),
                Certificate::Strategy(c),
            ) => {
                if c.objective != GameObjective::Avoid {
                    return Err("strategy certificate claims the wrong objective".to_owned());
                }
                c.validate(net, bad).map_err(|e| e.to_string())
            }
            (
                JobKind::MdpReach { mdp, opt, .. },
                JobVerdict::MdpValue(v),
                Certificate::Scheduler(c),
            ) => {
                if c.opt != *opt || c.value.to_bits() != v.to_bits() {
                    return Err("scheduler certificate does not pin the cached value".to_owned());
                }
                c.validate(mdp).map_err(|e| e.to_string())
            }
            (
                JobKind::McptaReach { pta, opt, goal, .. },
                JobVerdict::McptaValue(v),
                Certificate::Scheduler(c),
            ) => {
                if c.opt != *opt || c.value.to_bits() != v.to_bits() {
                    return Err("scheduler certificate does not pin the cached value".to_owned());
                }
                let m = match Mcpta::try_build(pta, &[], budget) {
                    Outcome::Complete { value: Some(m), .. } => m,
                    _ => return Err("could not rebuild the MDP within budget".to_owned()),
                };
                if m.goal_mask(goal) != c.goal {
                    return Err("certificate goal mask does not match the query".to_owned());
                }
                c.validate(m.mdp()).map_err(|e| e.to_string())
            }
            _ => Err(format!(
                "certificate kind does not match a cacheable `{}` verdict",
                self.engine_tag()
            )),
        }
    }
}

impl fmt::Debug for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.engine_tag())
    }
}

fn opt_tag(opt: Opt) -> u8 {
    match opt {
        Opt::Max => 0,
        Opt::Min => 1,
    }
}

/// Digests every field of a splitting configuration: two rare-event
/// jobs share a cache slot only when they are the same experiment.
fn digest_split_config(config: &SplitConfig, h: &mut StableHasher) {
    h.write_tag("split-config");
    h.write_u8(match config.method {
        tempo_rare::SplitMethod::FixedEffort => 0,
        tempo_rare::SplitMethod::Restart => 1,
    });
    h.write_usize(config.effort);
    h.write_usize(config.branch);
    h.write_usize(config.replications);
    h.write_usize(config.max_levels);
    h.write_f64(config.confidence);
    h.write_usize(config.max_particles);
}

/// Quantizes each budget limit to its bit-length class, so near-equal
/// budgets share cache entries while an unlimited run and a tightly
/// boxed one do not. The cancellation token never participates: it is
/// control plumbing, not query semantics.
fn digest_budget_class(budget: &Budget, h: &mut StableHasher) {
    fn class(v: Option<u64>) -> u64 {
        match v {
            None => u64::MAX,
            Some(0) => 0,
            Some(n) => 64 - u64::from(n.leading_zeros()),
        }
    }
    h.write_tag("budget-class");
    h.write_u64(class(
        budget
            .wall
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
    ));
    h.write_u64(class(budget.max_states));
    h.write_u64(class(budget.max_iterations));
    h.write_u64(class(budget.max_runs));
}

fn engine_err(e: tempo_witness::WitnessError) -> JobError {
    JobError::Engine(e.to_string())
}

/// Unwraps a governed outcome: complete results pass through, exhausted
/// ones become typed job errors (cancellation is surfaced distinctly).
fn split<T>(out: Outcome<T>) -> Result<(T, RunReport), JobError> {
    match out {
        Outcome::Complete { value, report } => Ok((value, report)),
        Outcome::Exhausted {
            reason: ExhaustionReason::Cancelled,
            ..
        } => Err(JobError::Cancelled),
        Outcome::Exhausted { reason, .. } => Err(JobError::Exhausted(reason)),
    }
}

/// What an engine run produced, before it is cached and fanned out.
pub(crate) struct Execution {
    pub verdict: JobVerdict,
    pub report: RunReport,
    pub certificate: Option<Certificate>,
}

/// The answer of a completed job, in a canonical form shared by fresh
/// runs and cache hits — equality (and [`JobVerdict::render`] byte
/// equality) is the service's cache-soundness contract.
#[derive(Clone, Debug, PartialEq)]
pub enum JobVerdict {
    /// Whether the goal is reachable.
    Reachable(bool),
    /// Whether `phi --> psi` holds.
    LeadsTo(bool),
    /// The minimum cost to the goal, `None` when unreachable.
    MinCost(Option<i64>),
    /// Whether the controller wins the game.
    GameWinning(bool),
    /// The statistical estimate.
    Probability(Estimate),
    /// The cost-bounded statistical estimate.
    PricedProbability(Estimate),
    /// The importance-splitting rare-event estimate.
    RareProbability {
        /// Point estimate of the rare-event probability.
        p_hat: f64,
        /// Lower confidence bound.
        lower: f64,
        /// Upper confidence bound.
        upper: f64,
        /// Confidence level of `[lower, upper]`.
        confidence: f64,
        /// Simulated trajectory segments (comparable to naive runs).
        runs_total: u64,
        /// Cloned continuations spawned beyond the root level.
        splits_spawned: u64,
    },
    /// Value of the MDP's initial state.
    MdpValue(f64),
    /// Value of the compiled MODEST model's initial state.
    McptaValue(f64),
    /// Whether a global deadlock exists.
    BipDeadlock(bool),
    /// Whether the timed-automata network is deadlock-free.
    DeadlockFree(bool),
    /// Whether the implementation refines the specification (ECDAR).
    Refines(bool),
    /// Whether the implementation ioco-conforms to the specification.
    Ioco(bool),
}

fn hex64(v: f64) -> String {
    Fingerprint::hex64(v)
}

fn parse_hex64(tok: &str) -> Option<f64> {
    Fingerprint::parse_hex64(tok)
}

impl JobVerdict {
    /// Canonical single-line text form. Floats render as their exact bit
    /// pattern, so `parse(render(v))` reproduces `v` bit-for-bit — this
    /// string is both the disk-tier storage form and the byte-identity
    /// oracle of the cache tests.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            JobVerdict::Reachable(b) => format!("reachable {b}"),
            JobVerdict::LeadsTo(b) => format!("leads-to {b}"),
            JobVerdict::MinCost(None) => "min-cost unreachable".to_owned(),
            JobVerdict::MinCost(Some(c)) => format!("min-cost {c}"),
            JobVerdict::GameWinning(b) => format!("game-winning {b}"),
            JobVerdict::Probability(e) => format!(
                "probability {} {} {} {} {} {}",
                hex64(e.mean),
                hex64(e.lower),
                hex64(e.upper),
                e.runs,
                e.successes,
                hex64(e.confidence)
            ),
            JobVerdict::PricedProbability(e) => format!(
                "priced-probability {} {} {} {} {} {}",
                hex64(e.mean),
                hex64(e.lower),
                hex64(e.upper),
                e.runs,
                e.successes,
                hex64(e.confidence)
            ),
            JobVerdict::RareProbability {
                p_hat,
                lower,
                upper,
                confidence,
                runs_total,
                splits_spawned,
            } => format!(
                "rare-probability {} {} {} {} {runs_total} {splits_spawned}",
                hex64(*p_hat),
                hex64(*lower),
                hex64(*upper),
                hex64(*confidence)
            ),
            JobVerdict::MdpValue(v) => format!("mdp-value {}", hex64(*v)),
            JobVerdict::McptaValue(v) => format!("mcpta-value {}", hex64(*v)),
            JobVerdict::BipDeadlock(b) => format!("bip-deadlock {b}"),
            JobVerdict::DeadlockFree(b) => format!("deadlock-free {b}"),
            JobVerdict::Refines(b) => format!("refines {b}"),
            JobVerdict::Ioco(b) => format!("ioco {b}"),
        }
    }

    /// Parses the canonical form produced by [`JobVerdict::render`].
    #[must_use]
    pub fn parse(text: &str) -> Option<JobVerdict> {
        let toks: Vec<&str> = text.split_whitespace().collect();
        let flag = |t: &str| match t {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        };
        match toks.as_slice() {
            ["reachable", b] => Some(JobVerdict::Reachable(flag(b)?)),
            ["leads-to", b] => Some(JobVerdict::LeadsTo(flag(b)?)),
            ["min-cost", "unreachable"] => Some(JobVerdict::MinCost(None)),
            ["min-cost", c] => Some(JobVerdict::MinCost(Some(c.parse().ok()?))),
            ["game-winning", b] => Some(JobVerdict::GameWinning(flag(b)?)),
            ["probability", mean, lower, upper, runs, successes, confidence] => {
                Some(JobVerdict::Probability(Estimate {
                    mean: parse_hex64(mean)?,
                    lower: parse_hex64(lower)?,
                    upper: parse_hex64(upper)?,
                    runs: runs.parse().ok()?,
                    successes: successes.parse().ok()?,
                    confidence: parse_hex64(confidence)?,
                }))
            }
            ["priced-probability", mean, lower, upper, runs, successes, confidence] => {
                Some(JobVerdict::PricedProbability(Estimate {
                    mean: parse_hex64(mean)?,
                    lower: parse_hex64(lower)?,
                    upper: parse_hex64(upper)?,
                    runs: runs.parse().ok()?,
                    successes: successes.parse().ok()?,
                    confidence: parse_hex64(confidence)?,
                }))
            }
            ["rare-probability", p_hat, lower, upper, confidence, runs_total, splits] => {
                Some(JobVerdict::RareProbability {
                    p_hat: parse_hex64(p_hat)?,
                    lower: parse_hex64(lower)?,
                    upper: parse_hex64(upper)?,
                    confidence: parse_hex64(confidence)?,
                    runs_total: runs_total.parse().ok()?,
                    splits_spawned: splits.parse().ok()?,
                })
            }
            ["mdp-value", v] => Some(JobVerdict::MdpValue(parse_hex64(v)?)),
            ["mcpta-value", v] => Some(JobVerdict::McptaValue(parse_hex64(v)?)),
            ["bip-deadlock", b] => Some(JobVerdict::BipDeadlock(flag(b)?)),
            ["deadlock-free", b] => Some(JobVerdict::DeadlockFree(flag(b)?)),
            ["refines", b] => Some(JobVerdict::Refines(flag(b)?)),
            ["ioco", b] => Some(JobVerdict::Ioco(flag(b)?)),
            _ => None,
        }
    }
}

impl fmt::Display for JobVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobVerdict::Reachable(b) => write!(f, "reachable: {b}"),
            JobVerdict::LeadsTo(b) => write!(f, "leads-to: {b}"),
            JobVerdict::MinCost(None) => write!(f, "min-cost: unreachable"),
            JobVerdict::MinCost(Some(c)) => write!(f, "min-cost: {c}"),
            JobVerdict::GameWinning(b) => write!(f, "winning: {b}"),
            JobVerdict::Probability(e) => write!(f, "probability: {e}"),
            JobVerdict::PricedProbability(e) => write!(f, "priced probability: {e}"),
            JobVerdict::RareProbability {
                p_hat,
                lower,
                upper,
                ..
            } => write!(f, "rare probability: {p_hat} in [{lower}, {upper}]"),
            JobVerdict::MdpValue(v) => write!(f, "value: {v}"),
            JobVerdict::McptaValue(v) => write!(f, "value: {v}"),
            JobVerdict::BipDeadlock(b) => write!(f, "deadlock: {b}"),
            JobVerdict::DeadlockFree(b) => write!(f, "deadlock-free: {b}"),
            JobVerdict::Refines(b) => write!(f, "refines: {b}"),
            JobVerdict::Ioco(b) => write!(f, "conforms: {b}"),
        }
    }
}

/// Why a job did not produce a verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job was cancelled — by its owner, by all coalesced owners, or
    /// by service shutdown.
    Cancelled,
    /// A budget dimension ran out before the engine finished.
    Exhausted(ExhaustionReason),
    /// The engine (or its certificate pipeline) failed.
    Engine(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Cancelled => f.write_str("job cancelled"),
            JobError::Exhausted(r) => write!(f, "budget exhausted: {r}"),
            JobError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Typed admission-control refusal: the service never silently drops a
/// submission, it tells the caller which limit pushed back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The work queue is at capacity — backpressure; retry later.
    QueueFull,
    /// The tenant already has its maximum number of active jobs.
    TenantQuotaExceeded,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The model failed its static-analysis gate: the engine would
    /// refuse it (or produce a meaningless verdict), so admission
    /// refuses it first, with the blocking diagnostics attached.
    Lint(LintError),
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull => f.write_str("queue full"),
            Rejected::TenantQuotaExceeded => f.write_str("tenant quota exceeded"),
            Rejected::ShuttingDown => f.write_str("service shutting down"),
            Rejected::Lint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Where a verdict came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictSource {
    /// An engine ran for this job.
    Computed,
    /// Served from the in-memory cache tier.
    MemoryHit,
    /// Served from the on-disk tier after its certificate replayed
    /// successfully against the live model.
    DiskHit,
    /// Coalesced onto an identical in-flight computation.
    Coalesced,
}

/// A completed job: the verdict, the work that produced it, and which
/// path served it.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The canonical verdict.
    pub verdict: JobVerdict,
    /// Work performed (the *original* run's work for cache hits).
    pub report: RunReport,
    /// Which tier or path served the verdict.
    pub source: VerdictSource,
}

/// One submission: who asks, how urgently, with what budget, for what.
#[derive(Clone)]
pub struct JobRequest {
    /// Tenant identity for fair admission control and report rollups.
    pub tenant: String,
    /// Scheduling priority (larger = more urgent); the queue ages
    /// waiting jobs so low-priority work cannot starve.
    pub priority: i64,
    /// Resource limits for the engine run.
    pub budget: Budget,
    /// The query itself.
    pub kind: JobKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn verdict_render_parse_round_trips_bit_exactly() {
        let verdicts = [
            JobVerdict::Reachable(true),
            JobVerdict::LeadsTo(false),
            JobVerdict::MinCost(None),
            JobVerdict::MinCost(Some(-7)),
            JobVerdict::GameWinning(true),
            JobVerdict::Probability(Estimate {
                mean: 0.1 + 0.2, // deliberately non-representable sum
                lower: 0.25,
                upper: f64::MAX,
                runs: 1000,
                successes: 301,
                confidence: 0.95,
            }),
            JobVerdict::PricedProbability(Estimate {
                mean: 1.0 / 7.0,
                lower: 0.0,
                upper: 1.0,
                runs: 64,
                successes: 9,
                confidence: 0.99,
            }),
            JobVerdict::RareProbability {
                p_hat: 9.5e-7,
                lower: 4.3e-7,
                upper: 2.1e-6,
                confidence: 0.95,
                runs_total: 2688,
                splits_spawned: 2560,
            },
            JobVerdict::MdpValue(1.0 / 3.0),
            JobVerdict::McptaValue(0.0),
            JobVerdict::BipDeadlock(false),
            JobVerdict::DeadlockFree(true),
            JobVerdict::Refines(false),
            JobVerdict::Ioco(true),
        ];
        for v in verdicts {
            let text = v.render();
            assert_eq!(JobVerdict::parse(&text), Some(v.clone()), "{text}");
        }
        assert_eq!(JobVerdict::parse("gibberish"), None);
        assert_eq!(JobVerdict::parse("mdp-value zz"), None);
    }

    #[test]
    fn reduction_knobs_partition_the_cache() {
        let mut b = tempo_ta::NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.edge(l0, l1).done();
        let a = a.done();
        let net = Arc::new(b.build());
        let goal = StateFormula::at(a, l1);
        let key = |explore: ExploreConfig| {
            JobKind::Reach {
                net: Arc::clone(&net),
                goal: goal.clone(),
                explore,
            }
            .cache_key(&Budget::unlimited())
        };
        // Same knobs: shared slot (the common CI-loop hit path).
        assert_eq!(key(ExploreConfig::default()), key(ExploreConfig::default()));
        // Different knobs answer the same question but report different
        // work, so they must not serve each other's cached reports.
        assert_ne!(
            key(ExploreConfig::default()),
            key(ExploreConfig::unreduced())
        );
        assert_ne!(
            key(ExploreConfig::unreduced().with_por(true)),
            key(ExploreConfig::unreduced().with_symmetry(true))
        );
    }

    #[test]
    fn budget_class_quantizes_but_distinguishes_magnitudes() {
        let key = |b: &Budget| {
            let mut h = StableHasher::new();
            digest_budget_class(b, &mut h);
            h.finish()
        };
        let unlimited = Budget::unlimited();
        // Same bit-length class: shared slot.
        assert_eq!(
            key(&unlimited.clone().with_wall_time(Duration::from_millis(900))),
            key(&unlimited.clone().with_wall_time(Duration::from_millis(600)))
        );
        // Different magnitude: distinct slot.
        assert_ne!(
            key(&unlimited.clone().with_wall_time(Duration::from_millis(900))),
            key(&unlimited.clone().with_wall_time(Duration::from_secs(60)))
        );
        // Unlimited vs bounded: distinct slot.
        assert_ne!(
            key(&unlimited),
            key(&unlimited.clone().with_max_states(1 << 20))
        );
        // A cancellation token is control plumbing, not semantics.
        assert_eq!(
            key(&unlimited),
            key(&unlimited.clone().with_cancel(tempo_obs::CancelToken::new()))
        );
    }
}
