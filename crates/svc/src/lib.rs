//! # tempo-svc — a multi-tenant concurrent analysis service with a
//! certified, content-addressed verdict cache
//!
//! Every engine in the workspace answers one query on one model in one
//! call. This crate turns them into a long-running *service*: clients
//! submit jobs `{model, query, engine, budget, priority}` for any of the
//! seven analysis engines ([`JobKind`]) and get back [`JobHandle`]s they
//! can wait on or cancel, while a shared worker pool executes the runs.
//!
//! The pieces, and where the paper's tool-integration story meets
//! systems engineering:
//!
//! * **Scheduling** — a bounded [`tempo_conc::PriorityWorkQueue`] with
//!   priority aging (no starvation) feeds the workers; admission control
//!   is typed ([`Rejected::QueueFull`], per-tenant quotas) so overload
//!   produces backpressure, never silent drops.
//! * **Content-addressed caching** — each job is keyed by a stable
//!   structural fingerprint ([`tempo_obs::Fingerprint`]) of its model,
//!   query, engine configuration and budget class. Renaming model
//!   labels or reordering guard conjunctions hits the same cache slot;
//!   a different seed, direction or budget class never does.
//! * **Certified persistence** — the optional on-disk tier stores only
//!   verdicts that carry a `tempo-witness` certificate, and *replays the
//!   certificate against the live model* before serving any disk hit:
//!   a corrupted or stale entry is rejected and transparently
//!   recomputed. Trust in the cache reduces to trust in the independent
//!   replay validator, not in the file system.
//! * **Coalescing** — identical concurrent requests share one engine
//!   run; the run is cancelled only when *all* its owners cancel.
//! * **Cancellation & shutdown** — job cancellation and service
//!   shutdown both flow through [`tempo_conc::CancelToken`]s polled by
//!   the engines' governors, so every analysis unwinds cooperatively
//!   with a sound partial answer; [`AnalysisService::shutdown`] drains
//!   the queue deterministically and resolves every outstanding handle.
//! * **Observability** — per-job [`tempo_obs::RunReport`]s roll up into
//!   per-tenant totals, and [`tempo_obs::ServiceStats`] counts hits,
//!   misses, coalesced and rejected jobs and the queue's high-water
//!   mark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod job;
mod service;

pub use job::{JobError, JobKind, JobRequest, JobResult, JobVerdict, Rejected, VerdictSource};
pub use service::{AnalysisService, JobHandle, ServiceConfig};
