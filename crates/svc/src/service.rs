//! The multi-tenant analysis service: a shared worker pool fed by a
//! priority-aged queue, with per-tenant admission control, in-flight
//! request coalescing, cooperative cancellation through the engines'
//! [`tempo_obs::Governor`] stop mechanism, and the two-tier verdict
//! cache in front of every engine.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tempo_conc::{CancelToken, PriorityWorkQueue, PushError};
use tempo_obs::{Fingerprint, RunReport, ServiceCounters, ServiceStats};
use tempo_witness::format;

use crate::cache::{CachedVerdict, DiskLookup, VerdictCache};
use crate::job::{JobError, JobKind, JobRequest, JobResult, Rejected, VerdictSource};

/// Tuning knobs of an [`AnalysisService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing engine runs.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are refused with
    /// [`Rejected::QueueFull`] (typed backpressure, never silent drops).
    pub queue_capacity: usize,
    /// Queue operations per effective-priority increment for waiting
    /// jobs (smaller = faster aging = stronger starvation protection).
    pub aging_step: u64,
    /// Maximum jobs one tenant may have queued or running at once.
    pub max_active_per_tenant: usize,
    /// Shards of the in-memory cache tier.
    pub cache_shards: usize,
    /// Directory for the persistent certificate-backed tier; `None`
    /// disables it.
    pub disk_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            aging_step: 8,
            max_active_per_tenant: 16,
            cache_shards: 16,
            disk_dir: None,
        }
    }
}

/// One-shot rendezvous between a job's owner and the worker that
/// completes it. Filled exactly once; later fills are ignored, which is
/// what makes owner-cancellation and worker-completion race-free.
struct Slot {
    done: Mutex<Option<Result<JobResult, JobError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            done: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// First fill wins; returns whether this call was it.
    fn fill(&self, result: Result<JobResult, JobError>) -> bool {
        self.fill_with(result, |_| {})
    }

    /// Like [`Slot::fill`], but runs `before` under the slot lock ahead
    /// of the notify — bookkeeping done in `before` is guaranteed
    /// visible to anyone unblocked by this fill (e.g. tenant rollups
    /// must already include a job by the time its `wait()` returns).
    fn fill_with(
        &self,
        result: Result<JobResult, JobError>,
        before: impl FnOnce(&Result<JobResult, JobError>),
    ) -> bool {
        let mut g = self.done.lock().expect("slot poisoned");
        if g.is_some() {
            return false;
        }
        before(&result);
        *g = Some(result);
        drop(g);
        self.ready.notify_all();
        true
    }

    fn wait(&self) -> Result<JobResult, JobError> {
        let mut g = self.done.lock().expect("slot poisoned");
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            g = self.ready.wait(g).expect("slot poisoned");
        }
    }

    fn try_take(&self) -> Option<Result<JobResult, JobError>> {
        self.done.lock().expect("slot poisoned").clone()
    }
}

struct Waiter {
    slot: Arc<Slot>,
    tenant: String,
}

/// Book-keeping for one deduplicated computation: every identical
/// concurrent request attaches here as a waiter. The computation's
/// cancel token trips only when *all* attached waiters have cancelled —
/// a leader cancelling must not kill followers' answers.
struct Inflight {
    waiters: Vec<Waiter>,
    live: usize,
    comp: CancelToken,
}

/// One queued unit of work. The key doubles as the in-flight map index;
/// the budget is the first submitter's (coalesced requests share its
/// budget class by construction of the cache key).
struct Work {
    key: Fingerprint,
    kind: JobKind,
    budget: tempo_obs::Budget,
}

struct Inner {
    config: ServiceConfig,
    queue: PriorityWorkQueue<Work>,
    cache: VerdictCache,
    inflight: Mutex<HashMap<Fingerprint, Inflight>>,
    tenants: Mutex<HashMap<String, usize>>,
    tenant_reports: Mutex<HashMap<String, RunReport>>,
    stats: ServiceStats,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
}

impl Inner {
    fn try_acquire_tenant(&self, tenant: &str) -> Result<(), Rejected> {
        let mut g = self.tenants.lock().expect("tenant map poisoned");
        let count = g.entry(tenant.to_owned()).or_insert(0);
        if *count >= self.config.max_active_per_tenant {
            return Err(Rejected::TenantQuotaExceeded);
        }
        *count += 1;
        Ok(())
    }

    fn release_tenant(&self, tenant: &str) {
        let mut g = self.tenants.lock().expect("tenant map poisoned");
        if let Some(count) = g.get_mut(tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                g.remove(tenant);
            }
        }
    }

    fn record_tenant_work(&self, tenant: &str, report: &RunReport) {
        self.tenant_reports
            .lock()
            .expect("report map poisoned")
            .entry(tenant.to_owned())
            .or_default()
            .merge(report);
    }

    /// Removes the in-flight entry for `key` and fans `result` out to
    /// every waiter still listening. Followers of a computed verdict are
    /// marked [`VerdictSource::Coalesced`].
    fn complete(&self, key: Fingerprint, result: &Result<JobResult, JobError>) {
        let entry = self
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .remove(&key);
        let Some(entry) = entry else { return };
        for (i, w) in entry.waiters.iter().enumerate() {
            let mut r = result.clone();
            if i > 0 {
                if let Ok(res) = &mut r {
                    if res.source == VerdictSource::Computed {
                        res.source = VerdictSource::Coalesced;
                    }
                }
            }
            w.slot.fill_with(r, |r| {
                match r {
                    Ok(res) => self.record_tenant_work(&w.tenant, &res.report),
                    Err(JobError::Cancelled) => self.stats.record_cancelled(),
                    Err(_) => {}
                }
                self.release_tenant(&w.tenant);
            });
        }
    }

    /// Worker-side handling of one popped work item: cache tiers first,
    /// then the engine, then fan-out.
    fn process(&self, work: Work) {
        let comp = {
            let g = self.inflight.lock().expect("inflight map poisoned");
            match g.get(&work.key) {
                Some(fl) => fl.comp.clone(),
                // Entry already gone (e.g. shutdown drained it between
                // pop and here): nothing left to serve.
                None => return,
            }
        };
        if comp.is_cancelled() {
            self.complete(work.key, &Err(JobError::Cancelled));
            return;
        }
        // A prior identical computation may have landed in the memory
        // tier while this item waited in the queue.
        if let Some(hit) = self.cache.lookup_memory(&work.key) {
            self.stats.record_hit();
            self.complete(
                work.key,
                &Ok(JobResult {
                    verdict: hit.verdict,
                    report: hit.report,
                    source: VerdictSource::MemoryHit,
                }),
            );
            return;
        }
        let budget = work.budget.clone().with_cancel(comp);
        match self.cache.lookup_disk(&work.key, &work.kind, &budget) {
            DiskLookup::Hit(hit) => {
                self.stats.record_disk_hit();
                self.complete(
                    work.key,
                    &Ok(JobResult {
                        verdict: hit.verdict,
                        report: hit.report,
                        source: VerdictSource::DiskHit,
                    }),
                );
                return;
            }
            DiskLookup::Rejected { evicted } => {
                self.stats.record_disk_rejected();
                if evicted {
                    self.stats.record_disk_evicted();
                }
            }
            DiskLookup::Absent => {}
        }
        self.stats.record_miss();
        match work.kind.execute(&budget) {
            Ok(exec) => {
                let cert_text = exec
                    .certificate
                    .as_ref()
                    .map(|c| Arc::new(format::render(c)));
                let cached = CachedVerdict {
                    verdict: exec.verdict.clone(),
                    report: exec.report.clone(),
                    certificate: cert_text,
                };
                self.cache.insert(work.key, &work.kind, &cached);
                self.complete(
                    work.key,
                    &Ok(JobResult {
                        verdict: exec.verdict,
                        report: exec.report,
                        source: VerdictSource::Computed,
                    }),
                );
            }
            Err(e) => self.complete(work.key, &Err(e)),
        }
    }
}

/// A handle on one submitted job: wait for the verdict or cancel it.
///
/// Cancellation is cooperative and per-owner: it resolves *this* handle
/// immediately with [`JobError::Cancelled`], and stops the underlying
/// engine run only once every coalesced owner of the same computation
/// has cancelled (via the governor's stop mechanism, so the engine
/// unwinds at its next budget poll).
pub struct JobHandle {
    id: u64,
    key: Fingerprint,
    tenant: String,
    slot: Arc<Slot>,
    inner: Arc<Inner>,
}

impl JobHandle {
    /// Opaque job id (diagnostics).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's content-addressed cache key.
    #[must_use]
    pub fn cache_key(&self) -> Fingerprint {
        self.key
    }

    /// Blocks until the job resolves.
    ///
    /// # Errors
    ///
    /// [`JobError`] if the job was cancelled, ran out of budget, or the
    /// engine failed.
    pub fn wait(&self) -> Result<JobResult, JobError> {
        self.slot.wait()
    }

    /// The result, if the job has already resolved.
    #[must_use]
    pub fn try_result(&self) -> Option<Result<JobResult, JobError>> {
        self.slot.try_take()
    }

    /// Cancels this owner's interest in the job. Idempotent; a no-op if
    /// the job already resolved.
    pub fn cancel(&self) {
        let filled = self.slot.fill_with(Err(JobError::Cancelled), |_| {
            self.inner.stats.record_cancelled();
            self.inner.release_tenant(&self.tenant);
        });
        if !filled {
            return;
        }
        let mut g = self.inner.inflight.lock().expect("inflight map poisoned");
        if let Some(fl) = g.get_mut(&self.key) {
            fl.live = fl.live.saturating_sub(1);
            if fl.live == 0 {
                fl.comp.cancel();
            }
        }
    }
}

/// The multi-tenant concurrent analysis service.
///
/// ```
/// use std::sync::Arc;
/// use tempo_obs::{Budget, ExploreConfig};
/// use tempo_svc::{AnalysisService, JobKind, JobRequest, ServiceConfig};
/// use tempo_ta::{ClockAtom, NetworkBuilder, StateFormula};
///
/// let mut b = NetworkBuilder::new();
/// let x = b.clock("x");
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// let l1 = a.location("L1");
/// a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 2)).done();
/// let a = a.done();
/// let net = Arc::new(b.build());
///
/// let svc = AnalysisService::new(ServiceConfig::default());
/// let job = svc.submit(JobRequest {
///     tenant: "docs".into(),
///     priority: 0,
///     budget: Budget::unlimited(),
///     kind: JobKind::Reach {
///         net,
///         goal: StateFormula::at(a, l1),
///         explore: ExploreConfig::default(),
///     },
/// }).expect("admitted");
/// let result = job.wait().expect("completed");
/// assert_eq!(result.verdict.render(), "reachable true");
/// svc.shutdown();
/// ```
pub struct AnalysisService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl AnalysisService {
    /// Starts the service: spawns the worker pool and opens (or creates)
    /// the disk tier if configured.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: PriorityWorkQueue::new(config.queue_capacity, config.aging_step),
            cache: VerdictCache::new(config.cache_shards.max(1), config.disk_dir.clone()),
            inflight: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            tenant_reports: Mutex::new(HashMap::new()),
            stats: ServiceStats::new(),
            shutting_down: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    while let Some(work) = inner.queue.pop() {
                        inner.process(work);
                    }
                })
            })
            .collect();
        AnalysisService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a job, subject to admission control.
    ///
    /// A memory-tier cache hit resolves the returned handle immediately
    /// without consuming queue capacity or tenant quota. A submission
    /// identical to an in-flight computation coalesces onto it instead
    /// of queueing a duplicate engine run.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the queue is full, the tenant has too many
    /// active jobs, or the service is shutting down.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, Rejected> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::Acquire) {
            inner.stats.record_rejected();
            return Err(Rejected::ShuttingDown);
        }
        // Admission lint gate: a model the engine would refuse never
        // reaches the queue (or the cache) in the first place.
        if let Err(e) = req.kind.lint_gate() {
            inner.stats.record_rejected();
            return Err(Rejected::Lint(e));
        }
        let key = req.kind.cache_key(&req.budget);
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::new());
        let handle = JobHandle {
            id,
            key,
            tenant: req.tenant.clone(),
            slot: Arc::clone(&slot),
            inner: Arc::clone(inner),
        };

        if let Some(hit) = inner.cache.lookup_memory(&key) {
            inner.stats.record_hit();
            inner.record_tenant_work(&req.tenant, &hit.report);
            slot.fill(Ok(JobResult {
                verdict: hit.verdict,
                report: hit.report,
                source: VerdictSource::MemoryHit,
            }));
            return Ok(handle);
        }

        if let Err(r) = inner.try_acquire_tenant(&req.tenant) {
            inner.stats.record_rejected();
            return Err(r);
        }

        // The in-flight lock is held across the queue push so the map
        // entry and the queued item appear atomically to workers.
        let mut map = inner.inflight.lock().expect("inflight map poisoned");
        let waiter = Waiter {
            slot,
            tenant: req.tenant.clone(),
        };
        if let Some(fl) = map.get_mut(&key) {
            fl.waiters.push(waiter);
            fl.live += 1;
            drop(map);
            inner.stats.record_coalesced();
            return Ok(handle);
        }
        let work = Work {
            key,
            kind: req.kind,
            budget: req.budget,
        };
        match inner.queue.try_push(work, req.priority) {
            Ok(()) => {
                map.insert(
                    key,
                    Inflight {
                        waiters: vec![waiter],
                        live: 1,
                        comp: CancelToken::new(),
                    },
                );
                drop(map);
                inner.stats.observe_queue_depth(inner.queue.len() as u64);
                Ok(handle)
            }
            Err(e) => {
                drop(map);
                inner.release_tenant(&req.tenant);
                inner.stats.record_rejected();
                Err(match e {
                    PushError::Full => Rejected::QueueFull,
                    PushError::Stopped => Rejected::ShuttingDown,
                })
            }
        }
    }

    /// Convenience: submit and block for the result.
    ///
    /// # Errors
    ///
    /// [`JobError::Engine`] wrapping the rejection when admission
    /// control refuses the submission, otherwise the job's own error.
    pub fn run(&self, req: JobRequest) -> Result<JobResult, JobError> {
        match self.submit(req) {
            Ok(handle) => handle.wait(),
            Err(r) => Err(JobError::Engine(format!("rejected: {r}"))),
        }
    }

    /// Point-in-time service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceCounters {
        self.inner.stats.snapshot()
    }

    /// The merged [`RunReport`] of every job a tenant completed so far.
    #[must_use]
    pub fn tenant_report(&self, tenant: &str) -> Option<RunReport> {
        self.inner
            .tenant_reports
            .lock()
            .expect("report map poisoned")
            .get(tenant)
            .cloned()
    }

    /// Entries currently in the in-memory cache tier.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.inner.cache.memory_len()
    }

    /// Disk-tier path for a cache key (tests tamper with these files to
    /// exercise the certificate-replay rejection path).
    #[must_use]
    pub fn disk_entry_path(&self, key: &Fingerprint) -> Option<PathBuf> {
        self.inner.cache.disk_path(key)
    }

    /// Deterministic shutdown: refuse new submissions, stop the queue,
    /// complete every still-queued job as cancelled, cancel every
    /// running computation through its governor, and join the workers.
    /// When this returns, every outstanding [`JobHandle::wait`] has a
    /// result.
    pub fn shutdown(&self) -> ServiceCounters {
        let inner = &self.inner;
        inner.shutting_down.store(true, Ordering::Release);
        // Workers' pop() returns None as soon as the queue stops, even
        // with entries remaining — those are drained below, exactly once.
        inner.queue.stop();
        for work in inner.queue.drain() {
            inner.complete(work.key, &Err(JobError::Cancelled));
        }
        let running: Vec<CancelToken> = inner
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .values()
            .map(|fl| fl.comp.clone())
            .collect();
        for token in running {
            token.cancel();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for handle in workers {
            let _ = handle.join();
        }
        // Defensive sweep: nothing should remain, but an entry leaked by
        // a panicked worker must still resolve its waiters.
        let keys: Vec<Fingerprint> = inner
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .keys()
            .copied()
            .collect();
        for key in keys {
            inner.complete(key, &Err(JobError::Cancelled));
        }
        inner.stats.snapshot()
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        // Idempotent: a second shutdown finds an empty worker list.
        self.shutdown();
    }
}
