//! Concurrency substrate shared by the tempo analysis engines.
//!
//! Everything here is built on `std::thread::scope` and `std::sync` only —
//! no external dependencies. The pieces:
//!
//! * [`ParallelConfig`] — the thread-count knob, defaulting to the machine's
//!   available parallelism;
//! * [`run_workers`] — a scoped worker pool returning per-worker results in
//!   worker order, so merges are deterministic;
//! * [`WorkQueue`] — a shared waiting list with idle-count termination
//!   detection and cooperative early stop, for fixpoint explorations;
//! * [`ShardedMap`] — a mutex-striped hash map for passed lists keyed by
//!   hashable discrete state;
//! * [`split_budget`] / [`derive_stream_seed`] — deterministic partitioning
//!   of a trace budget and per-worker RNG stream derivation for reproducible
//!   parallel simulation.
//!
//! Determinism contract: engines built on these helpers merge per-worker
//! results in worker-index order, so for a fixed seed *and* fixed thread
//! count the merged outcome is bitwise-reproducible. Exploration engines
//! (zone graphs, fixpoints) additionally compute exact, order-independent
//! verdicts, so their verdicts are identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spill;

pub use spill::{fnv64, RecordRef, SpillError, StateLog, SPILL_MAGIC};

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// The worker-pool configuration: how many OS threads an analysis may use.
///
/// `ParallelConfig::default()` resolves to the machine's available
/// parallelism; `sequential()` pins the engines to their single-threaded
/// reference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    threads: Option<NonZeroUsize>,
}

impl ParallelConfig {
    /// Use the machine's available parallelism (resolved lazily).
    #[must_use]
    pub fn auto() -> Self {
        Self::default()
    }

    /// Pin to the single-threaded reference engine.
    #[must_use]
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Use exactly `threads` workers (`0` is treated as `1`).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: Some(NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero")),
        }
    }

    /// The resolved worker count (at least 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        match self.threads {
            Some(n) => n.get(),
            None => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
        }
    }

    /// Whether this configuration resolves to the sequential path.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.threads() == 1
    }
}

/// Run `threads` scoped workers and collect their results *in worker order*,
/// so downstream merges are deterministic regardless of completion order.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_workers<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Fold per-worker results in worker order. This is the deterministic-merge
/// helper: because [`run_workers`] returns results indexed by worker, the
/// fold order (and therefore e.g. floating-point rounding) is fixed.
pub fn merge_ordered<T, A>(parts: Vec<T>, init: A, fold: impl FnMut(A, T) -> A) -> A {
    parts.into_iter().fold(init, fold)
}

/// Split a total work budget into `parts` near-equal chunks, largest first.
/// The split is deterministic and exhaustive: the chunks sum to `total`.
#[must_use]
pub fn split_budget(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Derive the RNG stream seed for worker `worker` from a base seed.
///
/// Uses a SplitMix64-style mix so that nearby worker indices produce
/// uncorrelated streams; the derivation is pure, so a fixed
/// `(seed, thread-count)` pair always reproduces the same streams.
#[must_use]
pub fn derive_stream_seed(seed: u64, worker: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((worker as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a [`WorkQueue`] terminated (why `pop` started returning `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// Every worker went idle on an empty queue: the exploration reached
    /// its natural fixpoint.
    Fixpoint,
    /// A worker called [`WorkQueue::stop`] — early exit because a
    /// definitive answer was found (e.g. a goal state).
    Stopped,
    /// A worker called [`WorkQueue::stop_exhausted`] — a resource budget
    /// ran out and the exploration is incomplete.
    Exhausted,
}

struct QueueState<T> {
    queue: VecDeque<T>,
    idle: usize,
    stopped: bool,
    /// Set exactly once, when the queue transitions to stopped.
    cause: Option<StopCause>,
    /// True only for the fixpoint transition: the queue is dead for good
    /// and reusing it is a bug (see [`WorkQueue::push`]).
    finished: bool,
    peak: usize,
}

/// A shared waiting list for N cooperating workers.
///
/// [`WorkQueue::pop`] blocks until an item is available and returns `None`
/// exactly when the exploration is finished: either every worker is idle
/// with an empty queue (fixpoint reached), or some worker called
/// [`WorkQueue::stop`] / [`WorkQueue::stop_exhausted`] (cooperative early
/// exit). [`WorkQueue::stop_cause`] distinguishes the three endings, and
/// [`WorkQueue::peak_len`] reports the high-water mark of the waiting
/// list for run reports.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    workers: usize,
    stopped: AtomicBool,
}

impl<T> WorkQueue<T> {
    /// A queue coordinated among `workers` poppers.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                idle: 0,
                stopped: false,
                cause: None,
                finished: false,
                peak: 0,
            }),
            available: Condvar::new(),
            workers: workers.max(1),
            stopped: AtomicBool::new(false),
        }
    }

    /// Enqueue one item and wake a waiting worker.
    ///
    /// Pushing onto a queue that already reached its **fixpoint** is a
    /// bug: the workers have all observed termination and the item can
    /// never be popped. Debug builds assert on it; release builds drop
    /// the item. (Pushing after an early [`WorkQueue::stop`] /
    /// [`WorkQueue::stop_exhausted`] is fine — workers race the stop
    /// flag by design, and such items are silently discarded.)
    pub fn push(&self, item: T) {
        let mut st = self.state.lock().expect("queue poisoned");
        debug_assert!(
            !st.finished,
            "push on a WorkQueue that reached fixpoint: the queue is dead, create a new one"
        );
        if st.stopped {
            return;
        }
        st.queue.push_back(item);
        st.peak = st.peak.max(st.queue.len());
        drop(st);
        self.available.notify_one();
    }

    /// Blocking pop; `None` means the exploration is over (see type docs).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if st.stopped {
                return None;
            }
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            st.idle += 1;
            if st.idle == self.workers {
                // Everyone is waiting on an empty queue: fixpoint reached.
                st.stopped = true;
                st.finished = true;
                st.cause = Some(StopCause::Fixpoint);
                self.stopped.store(true, Ordering::Release);
                self.available.notify_all();
                return None;
            }
            st = self.available.wait(st).expect("queue poisoned");
            st.idle -= 1;
        }
    }

    fn stop_with(&self, cause: StopCause) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.stopped = true;
        if st.cause.is_none() {
            st.cause = Some(cause);
        }
        self.stopped.store(true, Ordering::Release);
        drop(st);
        self.available.notify_all();
    }

    /// Request early termination: all current and future `pop`s return
    /// `None`. Queued items are dropped when the queue is.
    pub fn stop(&self) {
        self.stop_with(StopCause::Stopped);
    }

    /// Budget-aware cooperative stop: like [`WorkQueue::stop`], but
    /// records that the exploration ended because a resource budget ran
    /// out, so the caller can report an `Exhausted` outcome instead of a
    /// definitive verdict.
    pub fn stop_exhausted(&self) {
        self.stop_with(StopCause::Exhausted);
    }

    /// Cheap check for workers to bail out of long successor loops early.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// Why the queue terminated, or `None` while it is still live. The
    /// first stop wins: a fixpoint observed before an exhaustion signal
    /// stays `Fixpoint`, and vice versa.
    #[must_use]
    pub fn stop_cause(&self) -> Option<StopCause> {
        self.state.lock().expect("queue poisoned").cause
    }

    /// High-water mark of the waiting list over the queue's lifetime.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.state.lock().expect("queue poisoned").peak
    }
}

/// A shared cancellation flag for cooperative early termination.
///
/// Clones observe the same flag: the analysis service hands one clone to
/// the job owner (who may call [`CancelToken::cancel`]) and threads the
/// other through the engine's `Budget`, whose `Governor` polls it at the
/// same cadence as the wall-clock deadline. Cancellation is level-
/// triggered and sticky: once cancelled, a token stays cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: std::sync::Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: every clone observes it from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether `other` is a clone of this token (same underlying flag).
    #[must_use]
    pub fn same_as(&self, other: &CancelToken) -> bool {
        std::sync::Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Why a [`PriorityWorkQueue::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure; retry later or shed load.
    Full,
    /// The queue was stopped (service shutting down).
    Stopped,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PushError::Full => "queue at capacity",
            PushError::Stopped => "queue stopped",
        })
    }
}

impl std::error::Error for PushError {}

struct PrioEntry<T> {
    item: T,
    priority: i64,
    seq: u64,
}

struct PrioState<T> {
    entries: Vec<PrioEntry<T>>,
    next_seq: u64,
    stopped: bool,
    peak: usize,
}

/// A bounded, long-lived priority queue with aging, for job scheduling.
///
/// Unlike [`WorkQueue`] (a fixpoint-exploration waiting list that
/// terminates when all workers idle), a `PriorityWorkQueue` is a
/// *service* queue: it stays alive across an arbitrary job stream and
/// only terminates through [`PriorityWorkQueue::stop`].
///
/// * **Backpressure** — [`PriorityWorkQueue::try_push`] refuses with
///   [`PushError::Full`] once `capacity` items wait, instead of growing
///   without bound.
/// * **Priority with aging** — [`PriorityWorkQueue::pop`] returns the
///   entry maximizing `priority + waited/aging_step`, where `waited` is
///   measured in queue operations (push + pop ticks), so a low-priority
///   job's effective priority rises the longer it waits and starvation
///   is impossible. Ties break FIFO by arrival order, which makes the
///   schedule deterministic for a fixed operation interleaving.
pub struct PriorityWorkQueue<T> {
    state: Mutex<PrioState<T>>,
    available: Condvar,
    capacity: usize,
    aging_step: u64,
}

impl<T> PriorityWorkQueue<T> {
    /// A queue holding at most `capacity` items, promoting a waiting
    /// item's effective priority by one for every `aging_step` queue
    /// operations it has waited.
    #[must_use]
    pub fn new(capacity: usize, aging_step: u64) -> Self {
        PriorityWorkQueue {
            state: Mutex::new(PrioState {
                entries: Vec::new(),
                next_seq: 0,
                stopped: false,
                peak: 0,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            aging_step: aging_step.max(1),
        }
    }

    /// Enqueues `item` at `priority` (larger = more urgent), or reports
    /// typed backpressure.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Stopped`] after
    /// [`PriorityWorkQueue::stop`].
    pub fn try_push(&self, item: T, priority: i64) -> Result<(), PushError> {
        let mut st = self.state.lock().expect("queue poisoned");
        if st.stopped {
            return Err(PushError::Stopped);
        }
        if st.entries.len() >= self.capacity {
            return Err(PushError::Full);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.entries.push(PrioEntry {
            item,
            priority,
            seq,
        });
        st.peak = st.peak.max(st.entries.len());
        drop(st);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking pop of the highest effective-priority entry; `None`
    /// exactly when the queue has been stopped.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if st.stopped {
                return None;
            }
            if !st.entries.is_empty() {
                let now = st.next_seq;
                st.next_seq += 1; // a pop is also an aging tick
                let aging = self.aging_step;
                let effective = |e: &PrioEntry<T>| {
                    let waited = (now.saturating_sub(e.seq) / aging) as i64;
                    e.priority.saturating_add(waited)
                };
                let best = st
                    .entries
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        effective(a).cmp(&effective(b)).then(b.seq.cmp(&a.seq)) // FIFO: older seq wins ties
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty");
                return Some(st.entries.swap_remove(best).item);
            }
            st = self.available.wait(st).expect("queue poisoned");
        }
    }

    /// Stops the queue: all current and future `pop`s return `None`,
    /// pushes are refused, and the remaining entries can be collected
    /// with [`PriorityWorkQueue::drain`].
    pub fn stop(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.stopped = true;
        drop(st);
        self.available.notify_all();
    }

    /// Whether [`PriorityWorkQueue::stop`] has been called.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.state.lock().expect("queue poisoned").stopped
    }

    /// Removes and returns all still-queued items in arrival order.
    /// Intended for deterministic shutdown: stop, then drain and
    /// complete every leftover job as cancelled.
    pub fn drain(&self) -> Vec<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        let mut entries = std::mem::take(&mut st.entries);
        entries.sort_by_key(|e| e.seq);
        entries.into_iter().map(|e| e.item).collect()
    }

    /// Number of items currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").entries.len()
    }

    /// Whether no items are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the waiting list over the queue's lifetime.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.state.lock().expect("queue poisoned").peak
    }
}

/// A mutex-striped hash map: the key space is split across `shards`
/// independent `Mutex<HashMap>`s so concurrent writers on different shards
/// never contend. Used as the passed list of parallel explorations, keyed by
/// the discrete part of a symbolic state.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map with `shards` stripes (rounded up to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ShardedMap {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The recommended stripe count for `threads` workers: enough stripes
    /// that two random keys rarely collide on a lock.
    #[must_use]
    pub fn for_threads(threads: usize) -> Self {
        Self::new((threads.max(1) * 16).next_power_of_two())
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Lock the shard owning `key`. The guard covers every key in that
    /// stripe; hold it only for the compare-and-update.
    pub fn lock_shard(&self, key: &K) -> MutexGuard<'_, HashMap<K, V>> {
        self.shards[self.shard_index(key)]
            .lock()
            .expect("shard poisoned")
    }

    /// Iterate all shards (for end-of-run aggregation; takes `&mut self`,
    /// so no worker can still hold a lock).
    pub fn into_inner(self) -> impl Iterator<Item = HashMap<K, V>> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().expect("shard poisoned"))
    }

    /// Total number of values across all shards (locks each shard briefly).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|m| m.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn config_resolves_to_at_least_one() {
        assert_eq!(ParallelConfig::sequential().threads(), 1);
        assert!(ParallelConfig::sequential().is_sequential());
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(3).threads(), 3);
        assert!(ParallelConfig::auto().threads() >= 1);
    }

    #[test]
    fn workers_return_in_worker_order() {
        let results = run_workers(8, |w| {
            // Finish in reverse order to prove ordering comes from the
            // index, not completion time.
            std::thread::sleep(std::time::Duration::from_millis((8 - w as u64) * 2));
            w * 10
        });
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn budget_split_is_exhaustive_and_balanced() {
        assert_eq!(split_budget(10, 3), vec![4, 3, 3]);
        assert_eq!(split_budget(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split_budget(0, 3), vec![0, 0, 0]);
        for (total, parts) in [(1000, 7), (13, 13), (5, 1)] {
            let chunks = split_budget(total, parts);
            assert_eq!(chunks.iter().sum::<usize>(), total);
            assert_eq!(chunks.len(), parts);
            assert!(chunks.iter().max().unwrap() - chunks.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn stream_seeds_are_stable_and_distinct() {
        let a = derive_stream_seed(42, 0);
        assert_eq!(a, derive_stream_seed(42, 0));
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|w| derive_stream_seed(42, w)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn queue_drains_and_terminates() {
        let queue = WorkQueue::new(4);
        for i in 0..1000 {
            queue.push(i);
        }
        let popped = AtomicUsize::new(0);
        run_workers(4, |_| {
            while let Some(item) = queue.pop() {
                popped.fetch_add(1, Ordering::Relaxed);
                // Simulate work that generates a little more work.
                if item < 50 {
                    queue.push(item + 1000);
                }
            }
        });
        assert_eq!(popped.load(Ordering::Relaxed), 1050);
    }

    #[test]
    fn queue_stop_is_observed() {
        let queue = WorkQueue::new(2);
        queue.push(1);
        queue.stop();
        assert!(queue.is_stopped());
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.stop_cause(), Some(StopCause::Stopped));
    }

    #[test]
    fn queue_reports_fixpoint_cause_and_peak() {
        let queue = WorkQueue::new(2);
        for i in 0..10 {
            queue.push(i);
        }
        run_workers(2, |_| while queue.pop().is_some() {});
        assert_eq!(queue.stop_cause(), Some(StopCause::Fixpoint));
        assert_eq!(queue.peak_len(), 10);
    }

    #[test]
    fn queue_exhausted_stop_is_distinguished() {
        let queue = WorkQueue::new(2);
        queue.push(1);
        queue.stop_exhausted();
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.stop_cause(), Some(StopCause::Exhausted));
        // The first cause wins; a later plain stop does not overwrite it.
        queue.stop();
        assert_eq!(queue.stop_cause(), Some(StopCause::Exhausted));
    }

    #[test]
    #[should_panic(expected = "reached fixpoint")]
    #[cfg(debug_assertions)]
    fn queue_reuse_after_fixpoint_is_a_debug_error() {
        let queue = WorkQueue::new(1);
        queue.push(1);
        while queue.pop().is_some() {}
        assert_eq!(queue.stop_cause(), Some(StopCause::Fixpoint));
        // The queue is dead: this push can never be popped.
        queue.push(2);
    }

    /// Stress the `stop()`/`push`/`pop` race: concurrent pushers keep
    /// feeding the queue while the poppers race a stop signal. The
    /// invariants: nothing deadlocks (no lost wakeups — the test
    /// finishes), and once `stop` has returned every subsequent `pop`
    /// returns `None`.
    #[test]
    fn queue_stop_push_pop_race_loses_no_wakeups() {
        for round in 0..100 {
            // Sized for one worker more than will ever pop: the pushers
            // here are *external* producers (engine workers push only
            // before going idle themselves), so a natural fixpoint could
            // otherwise be declared mid-push and trip the dead-queue
            // assertion. With a spare worker slot the queue can only
            // terminate through `stop()`, which pushes tolerate.
            let queue = WorkQueue::new(5);
            let after_stop_pops = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                // Two pushers flood the queue while the race is on.
                for p in 0..2 {
                    let queue = &queue;
                    scope.spawn(move || {
                        for i in 0..500 {
                            queue.push(p * 1000 + i);
                            if queue.is_stopped() {
                                break;
                            }
                        }
                    });
                }
                // One stopper fires mid-flight, then verifies that every
                // pop *issued after stop() returned* yields None.
                {
                    let queue = &queue;
                    let after_stop_pops = &after_stop_pops;
                    scope.spawn(move || {
                        if round % 2 == 0 {
                            std::thread::yield_now();
                        }
                        queue.stop();
                        for _ in 0..16 {
                            if queue.pop().is_some() {
                                after_stop_pops.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    });
                }
                // Four poppers drain until termination. The test
                // completing at all is the no-lost-wakeup assertion: a
                // missed notify would leave a popper blocked forever.
                for _ in 0..4 {
                    let queue = &queue;
                    scope.spawn(move || while queue.pop().is_some() {});
                }
            });
            assert_eq!(after_stop_pops.load(Ordering::SeqCst), 0);
            assert_eq!(queue.stop_cause(), Some(StopCause::Stopped));
            assert_eq!(queue.pop(), None);
        }
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        assert!(t.same_as(&clone));
        assert!(!t.same_as(&CancelToken::new()));
        clone.cancel();
        assert!(t.is_cancelled());
        clone.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn priority_queue_orders_by_priority_then_fifo() {
        let q: PriorityWorkQueue<&str> = PriorityWorkQueue::new(16, 1_000_000);
        q.try_push("low-1", 0).unwrap();
        q.try_push("high", 5).unwrap();
        q.try_push("low-2", 0).unwrap();
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("low-1"));
        assert_eq!(q.pop(), Some("low-2"));
    }

    #[test]
    fn priority_queue_rejects_when_full_or_stopped() {
        let q: PriorityWorkQueue<u32> = PriorityWorkQueue::new(2, 8);
        q.try_push(1, 0).unwrap();
        q.try_push(2, 0).unwrap();
        assert_eq!(q.try_push(3, 9), Err(PushError::Full));
        assert_eq!(q.peak_len(), 2);
        q.stop();
        assert_eq!(q.try_push(4, 0), Err(PushError::Stopped));
        assert_eq!(q.pop(), None);
        assert_eq!(q.drain(), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn priority_queue_aging_prevents_starvation() {
        // With an aging step of 2 queue operations, a priority-0 entry
        // that waited long enough outranks a fresh priority-3 entry.
        let q: PriorityWorkQueue<&str> = PriorityWorkQueue::new(64, 2);
        q.try_push("old-low", 0).unwrap();
        for _ in 0..4 {
            q.try_push("filler", -100).unwrap();
        }
        // old-low has now aged (4 pushes = 2 effective boosts).
        q.try_push("fresh-high", 1).unwrap();
        assert_eq!(q.pop(), Some("old-low"));
    }

    #[test]
    fn priority_queue_pop_blocks_until_push_or_stop() {
        let q: PriorityWorkQueue<u32> = PriorityWorkQueue::new(8, 8);
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.try_push(7, 0).unwrap();
            assert_eq!(popper.join().unwrap(), Some(7));
            let popper = scope.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.stop();
            assert_eq!(popper.join().unwrap(), None);
        });
    }

    #[test]
    fn sharded_map_counts_across_shards() {
        let map: ShardedMap<u64, Vec<u64>> = ShardedMap::for_threads(4);
        run_workers(4, |w| {
            for i in 0..256u64 {
                let key = i;
                let mut shard = map.lock_shard(&key);
                shard.entry(key).or_default().push(w as u64);
            }
        });
        assert_eq!(map.len(), 256);
        let mut total = 0;
        for shard in map.into_inner() {
            for (_, v) in shard {
                assert_eq!(v.len(), 4);
                total += v.len();
            }
        }
        assert_eq!(total, 1024);
    }

    #[test]
    fn merge_ordered_folds_in_order() {
        let parts = vec!["a", "b", "c"];
        let merged = merge_ordered(parts, String::new(), |mut acc, p| {
            acc.push_str(p);
            acc
        });
        assert_eq!(merged, "abc");
    }
}
