//! Append-only spill log for out-of-core state storage.
//!
//! [`StateLog`] is the disk substrate of the exploration engines'
//! spill stores: an append-only file of length-prefixed, checksummed
//! records. The log is deliberately dumb — it knows nothing about
//! symbolic states; engines serialize their own records and keep an
//! in-memory index of [`RecordRef`] handles.
//!
//! Corruption discipline (mirroring the certificate pipeline): a torn
//! or bit-flipped record is *always* detected at read time and surfaces
//! as a typed [`SpillError`], never as silently wrong bytes. Each
//! record carries its payload length and an FNV-1a checksum; the file
//! starts with a magic header so a foreign file is rejected outright.
//!
//! The log is safe to share across worker threads: appends serialize on
//! an internal mutex, reads go through a separate handle so they never
//! block writers longer than one record copy.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic header of a spill log file (identifies format + version).
pub const SPILL_MAGIC: &[u8; 8] = b"TMPSPL1\n";

/// Per-record header: payload length (u32 LE) + FNV-1a 64 checksum
/// (u64 LE) of the payload.
const RECORD_HEADER: usize = 4 + 8;

/// 64-bit FNV-1a over a byte slice — the log's payload checksum.
/// Self-contained on purpose: this crate sits below the observability
/// crate that hosts the engines' stable content hasher.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Handle to one record in a [`StateLog`]: byte offset of the record
/// header and payload length. Engines keep these in their in-memory
/// index and fault the payload back with [`StateLog::read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef {
    /// Byte offset of the record header within the log file.
    pub offset: u64,
    /// Payload length in bytes (excluding the record header).
    pub len: u32,
}

impl RecordRef {
    /// Total on-disk footprint of the record, header included.
    #[must_use]
    pub fn disk_bytes(self) -> u64 {
        RECORD_HEADER as u64 + u64::from(self.len)
    }
}

/// Typed failure of a spill-log operation. Every variant is loud by
/// design: an engine that hits one must abort the analysis with an
/// error, never guess at the lost state.
///
/// The I/O variant stores the OS error's kind and rendering instead of
/// the [`std::io::Error`] itself so that the whole enum stays `Clone`
/// and `PartialEq` — callers embed it in their own comparable error
/// types (e.g. the witness pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the log was doing when the error hit.
        context: String,
        /// The OS error's kind.
        kind: std::io::ErrorKind,
        /// The OS error's rendering.
        message: String,
    },
    /// A record extends past the end of the file — the tail was torn
    /// off by a crash or an external truncation.
    Torn {
        /// Offset of the torn record's header.
        offset: u64,
        /// Bytes the record claimed to need.
        expected: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A record's bytes do not match their checksum, or its payload
    /// fails to decode — the file was corrupted in place.
    Corrupt {
        /// Offset of the corrupt record's header.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io {
                context, message, ..
            } => {
                write!(f, "spill log I/O failure while {context}: {message}")
            }
            SpillError::Torn {
                offset,
                expected,
                available,
            } => write!(
                f,
                "spill log torn at offset {offset}: record needs {expected} bytes, {available} available"
            ),
            SpillError::Corrupt { offset, detail } => {
                write!(f, "spill log corrupt at offset {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

impl SpillError {
    /// Wraps an OS error with the operation it interrupted.
    #[must_use]
    pub fn io(context: &str, source: std::io::Error) -> Self {
        SpillError::Io {
            context: context.to_owned(),
            kind: source.kind(),
            message: source.to_string(),
        }
    }
}

/// The append-only spill log: a file of checksummed records.
///
/// Appends are serialized on an internal mutex and return a
/// [`RecordRef`]; reads reopen their own cursor, verify length and
/// checksum, and hand back the payload. The file is created fresh by
/// [`StateLog::create`] and removed again when the log is dropped —
/// spill files are scratch space, not artifacts.
#[derive(Debug)]
pub struct StateLog {
    path: PathBuf,
    writer: Mutex<File>,
    reader: Mutex<File>,
    /// Total bytes appended (header + payload), for spill accounting.
    bytes: AtomicU64,
}

impl StateLog {
    /// Creates (truncating) the log file at `path` and writes the magic
    /// header.
    ///
    /// # Errors
    ///
    /// [`SpillError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path) -> Result<StateLog, SpillError> {
        let mut writer = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| SpillError::io("creating the spill log", e))?;
        writer
            .write_all(SPILL_MAGIC)
            .map_err(|e| SpillError::io("writing the spill log header", e))?;
        let reader = File::open(path).map_err(|e| SpillError::io("opening the spill log", e))?;
        Ok(StateLog {
            path: path.to_path_buf(),
            writer: Mutex::new(writer),
            reader: Mutex::new(reader),
            bytes: AtomicU64::new(SPILL_MAGIC.len() as u64),
        })
    }

    /// The path of the underlying file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes written so far, header included.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Appends one record and returns its handle.
    ///
    /// # Errors
    ///
    /// [`SpillError::Io`] when the write fails; the log is then in an
    /// undefined state and the analysis must abort (loudly, per the
    /// corruption discipline).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn append(&self, payload: &[u8]) -> Result<RecordRef, SpillError> {
        let len = u32::try_from(payload.len()).expect("spill record exceeds u32 length");
        let mut file = self.writer.lock().expect("spill log writer poisoned");
        let offset = file
            .seek(SeekFrom::End(0))
            .map_err(|e| SpillError::io("seeking to the spill log tail", e))?;
        let mut header = [0u8; RECORD_HEADER];
        header[..4].copy_from_slice(&len.to_le_bytes());
        header[4..].copy_from_slice(&fnv64(payload).to_le_bytes());
        file.write_all(&header)
            .and_then(|()| file.write_all(payload))
            .map_err(|e| SpillError::io("appending a spill record", e))?;
        drop(file);
        let rec = RecordRef { offset, len };
        self.bytes.fetch_add(rec.disk_bytes(), Ordering::Relaxed);
        Ok(rec)
    }

    /// Reads a record back, verifying its length prefix and checksum.
    ///
    /// # Errors
    ///
    /// [`SpillError::Torn`] when the file ends inside the record,
    /// [`SpillError::Corrupt`] when the stored header disagrees with the
    /// handle or the checksum does not match, [`SpillError::Io`] on any
    /// filesystem failure.
    pub fn read(&self, rec: RecordRef) -> Result<Vec<u8>, SpillError> {
        let mut file = self.reader.lock().expect("spill log reader poisoned");
        let file_len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| SpillError::io("sizing the spill log", e))?;
        let needed = rec.offset + rec.disk_bytes();
        if needed > file_len {
            return Err(SpillError::Torn {
                offset: rec.offset,
                expected: rec.disk_bytes(),
                available: file_len.saturating_sub(rec.offset),
            });
        }
        file.seek(SeekFrom::Start(rec.offset))
            .map_err(|e| SpillError::io("seeking to a spill record", e))?;
        let mut header = [0u8; RECORD_HEADER];
        file.read_exact(&mut header)
            .map_err(|e| SpillError::io("reading a spill record header", e))?;
        let stored_len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let stored_sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if stored_len != rec.len {
            return Err(SpillError::Corrupt {
                offset: rec.offset,
                detail: format!(
                    "record length mismatch: index says {}, file says {stored_len}",
                    rec.len
                ),
            });
        }
        let mut payload = vec![0u8; rec.len as usize];
        file.read_exact(&mut payload)
            .map_err(|e| SpillError::io("reading a spill record payload", e))?;
        drop(file);
        let sum = fnv64(&payload);
        if sum != stored_sum {
            return Err(SpillError::Corrupt {
                offset: rec.offset,
                detail: format!(
                    "checksum mismatch: stored {stored_sum:#018x}, computed {sum:#018x}"
                ),
            });
        }
        Ok(payload)
    }
}

impl Drop for StateLog {
    /// Best-effort removal: spill files are scratch space and carry no
    /// state that outlives the analysis.
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tempo-spill-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_records() {
        let path = temp_path("roundtrip.log");
        let log = StateLog::create(&path).expect("create");
        let a = log.append(b"first record").expect("append a");
        let b = log.append(&[0u8; 1000]).expect("append b");
        let c = log.append(b"").expect("append empty");
        assert_eq!(log.read(a).expect("read a"), b"first record");
        assert_eq!(log.read(b).expect("read b"), vec![0u8; 1000]);
        assert_eq!(log.read(c).expect("read c"), Vec::<u8>::new());
        assert_eq!(
            log.bytes_written(),
            SPILL_MAGIC.len() as u64 + a.disk_bytes() + b.disk_bytes() + c.disk_bytes()
        );
    }

    #[test]
    fn truncation_reports_torn() {
        let path = temp_path("torn.log");
        let log = StateLog::create(&path).expect("create");
        let rec = log.append(b"this record will be torn").expect("append");
        // Tear the file mid-record, as a crash would.
        let keep = rec.offset + rec.disk_bytes() - 5;
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(keep).expect("truncate");
        match log.read(rec) {
            Err(SpillError::Torn {
                offset,
                expected,
                available,
            }) => {
                assert_eq!(offset, rec.offset);
                assert_eq!(expected, rec.disk_bytes());
                assert_eq!(available, rec.disk_bytes() - 5);
            }
            other => panic!("expected Torn, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_reports_corrupt() {
        let path = temp_path("corrupt.log");
        let log = StateLog::create(&path).expect("create");
        let rec = log.append(b"payload under test").expect("append");
        // Flip one payload bit in place.
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open");
        let pos = rec.offset + RECORD_HEADER as u64 + 3;
        f.seek(SeekFrom::Start(pos)).expect("seek");
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte).expect("read");
        byte[0] ^= 0x40;
        f.seek(SeekFrom::Start(pos)).expect("seek back");
        f.write_all(&byte).expect("write");
        match log.read(rec) {
            Err(SpillError::Corrupt { offset, detail }) => {
                assert_eq!(offset, rec.offset);
                assert!(detail.contains("checksum"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn drop_removes_the_file() {
        let path = temp_path("dropped.log");
        {
            let log = StateLog::create(&path).expect("create");
            log.append(b"x").expect("append");
            assert!(path.exists());
        }
        assert!(!path.exists(), "spill file should be scratch space");
    }

    #[test]
    fn concurrent_appends_all_read_back() {
        let path = temp_path("concurrent.log");
        let log = StateLog::create(&path).expect("create");
        let refs: Mutex<Vec<(u8, RecordRef)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0u8..4 {
                let (log, refs) = (&log, &refs);
                s.spawn(move || {
                    for i in 0..50 {
                        let payload = vec![w; 10 + i];
                        let r = log.append(&payload).expect("append");
                        refs.lock().expect("refs").push((w, r));
                    }
                });
            }
        });
        for (w, r) in refs.into_inner().expect("refs") {
            let payload = log.read(r).expect("read");
            assert!(payload.iter().all(|&b| b == w));
        }
    }
}
