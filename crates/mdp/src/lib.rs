//! # tempo-mdp — Markov decision processes and probabilistic model checking
//!
//! The PRISM-like substrate of the workspace: finite [`Mdp`] models with
//! nondeterministic actions, probabilistic transitions and action rewards,
//! analysed by qualitative graph precomputation (`Prob0`/`Prob1`) and
//! Gauss–Seidel value iteration. The `mcpta` analogue in `tempo-modest`
//! translates probabilistic timed automata to these MDPs with the digital
//! clocks construction (Bozga et al., DATE 2012, §III).
//!
//! Supported queries:
//!
//! * [`reachability`] — `Pmax` / `Pmin` of eventually reaching a goal set;
//! * [`bounded_reachability`] — step-bounded variants;
//! * [`expected_reward`] — `Emax` / `Emin` of the total reward accumulated
//!   until the goal (e.g. expected completion time);
//! * qualitative sets: [`reach_exists`], [`reach_forall_positive`],
//!   [`prob1_exists`].
//!
//! ## Example
//!
//! ```
//! use tempo_mdp::{MdpBuilder, Opt, reachability};
//!
//! let mut b = MdpBuilder::new();
//! let s0 = b.add_state();
//! let win = b.add_state();
//! let lose = b.add_state();
//! b.add_action(s0, None, 0.0, vec![(win, 0.3), (lose, 0.7)])?;
//! let mdp = b.build(s0)?;
//! let goal = vec![false, true, false];
//! let res = reachability(&mdp, Opt::Max, &goal);
//! assert!((res.initial_value - 0.3).abs() < 1e-9);
//! # Ok::<(), tempo_mdp::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod model;

pub use analysis::{
    bounded_reachability, bounded_reachability_governed, expected_reward, expected_reward_governed,
    interval_reachability, interval_reachability_governed, prob1_exists, reach_exists,
    reach_forall_positive, reachability, reachability_governed, IntervalResult, Opt, Quantitative,
    EPSILON, MAX_ITERATIONS,
};
pub use model::{BuildError, Mdp, MdpAction, MdpBuilder, StateId};
