//! Probabilistic reachability and expected rewards by graph
//! precomputation plus value iteration — the algorithmic core of
//! PRISM-style probabilistic model checking, used by the `mcpta` tool of
//! the MODEST toolset (Bozga et al., DATE 2012, §III).

use crate::model::{Mdp, StateId};
use tempo_obs::{Budget, Governor, Outcome, RunReport};

/// [`RunReport`] for a value-iteration engine: every state is stored up
/// front, so the state counters mirror the model size and `sweeps`
/// counts Bellman sweeps.
fn vi_report(gov: &Governor, states: usize, sweeps: usize) -> RunReport {
    RunReport {
        states_explored: states as u64,
        states_stored: states as u64,
        sweeps: sweeps as u64,
        wall_time: gov.elapsed(),
        ..RunReport::default()
    }
}

/// Optimization direction over schedulers (resolutions of
/// nondeterminism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opt {
    /// Maximize over schedulers (`Pmax`, `Emax`).
    Max,
    /// Minimize over schedulers (`Pmin`, `Emin`).
    Min,
}

/// Result of a quantitative query: per-state values, the value of the
/// initial state, a memoryless scheduler realizing it, and iteration
/// statistics.
#[derive(Debug, Clone)]
pub struct Quantitative {
    /// Value per state.
    pub values: Vec<f64>,
    /// Value of the initial state.
    pub initial_value: f64,
    /// Chosen action index per state (`None` for absorbing states).
    pub scheduler: Vec<Option<usize>>,
    /// Number of value-iteration sweeps performed.
    pub iterations: usize,
}

impl Quantitative {
    /// The memoryless policy extracted from value iteration: for each state,
    /// the index of the optimal action (`None` on absorbing states). Fixing
    /// these choices turns the MDP into a Markov chain whose reachability
    /// probability equals [`Quantitative::values`] — the basis for
    /// independent certificate checking.
    #[must_use]
    pub fn policy(&self) -> &[Option<usize>] {
        &self.scheduler
    }
}

/// Convergence threshold for value iteration (absolute).
pub const EPSILON: f64 = 1e-10;

/// Maximum number of value-iteration sweeps.
pub const MAX_ITERATIONS: usize = 1_000_000;

/// States from which the goal set is reachable by *some* scheduler with
/// positive probability (the complement is the `Pmax = 0` set).
#[must_use]
pub fn reach_exists(mdp: &Mdp, goal: &[bool]) -> Vec<bool> {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    // Backward BFS over the underlying graph.
    let n = mdp.num_states();
    let mut pre: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in mdp.states() {
        for a in mdp.actions(s) {
            for &(t, p) in &a.transitions {
                if p > 0.0 {
                    pre[t.0].push(s.0);
                }
            }
        }
    }
    let mut seen = goal.to_vec();
    let mut stack: Vec<usize> = (0..n).filter(|&i| goal[i]).collect();
    while let Some(v) = stack.pop() {
        for &u in &pre[v] {
            if !seen[u] {
                seen[u] = true;
                stack.push(u);
            }
        }
    }
    seen
}

/// States from which *every* scheduler reaches the goal with positive
/// probability (the complement is the `Pmin = 0` set): the classic
/// `Prob0A` fixpoint, computed as a greatest fixpoint of "can avoid".
#[must_use]
pub fn reach_forall_positive(mdp: &Mdp, goal: &[bool]) -> Vec<bool> {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    let n = mdp.num_states();
    // avoid[s]: some scheduler keeps the probability of reaching goal at 0.
    // Fixpoint: s ∈ avoid iff !goal[s] and some action has all successors
    // in avoid (absorbing non-goal states avoid trivially).
    let mut avoid: Vec<bool> = (0..n).map(|i| !goal[i]).collect();
    loop {
        let mut changed = false;
        for s in mdp.states() {
            if !avoid[s.0] || goal[s.0] {
                continue;
            }
            let stays = if mdp.is_absorbing(s) {
                true
            } else {
                mdp.actions(s)
                    .iter()
                    .any(|a| a.transitions.iter().all(|&(t, p)| p == 0.0 || avoid[t.0]))
            };
            if !stays {
                avoid[s.0] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    avoid.iter().map(|&a| !a).collect()
}

/// States where `Pmax(reach goal) = 1`: the classic `Prob1E` double
/// fixpoint.
#[must_use]
pub fn prob1_exists(mdp: &Mdp, goal: &[bool]) -> Vec<bool> {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    let n = mdp.num_states();
    let mut candidate: Vec<bool> = vec![true; n];
    loop {
        // Inner fixpoint: states that can reach goal while staying in
        // `candidate`, using only actions that keep all mass in candidate.
        let mut reach: Vec<bool> = goal.to_vec();
        loop {
            let mut changed = false;
            for s in mdp.states() {
                if reach[s.0] || !candidate[s.0] {
                    continue;
                }
                let ok = mdp.actions(s).iter().any(|a| {
                    a.transitions
                        .iter()
                        .all(|&(t, p)| p == 0.0 || candidate[t.0])
                        && a.transitions.iter().any(|&(t, p)| p > 0.0 && reach[t.0])
                });
                if ok {
                    reach[s.0] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if reach == candidate {
            return candidate;
        }
        candidate = reach;
    }
}

/// Unbounded probabilistic reachability `P{max,min}(◇ goal)`.
///
/// Performs qualitative precomputation (exact `0`/`1` states) followed by
/// Gauss–Seidel value iteration on the remaining states.
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()`.
#[must_use]
pub fn reachability(mdp: &Mdp, opt: Opt, goal: &[bool]) -> Quantitative {
    reachability_governed(mdp, opt, goal, &Budget::unlimited()).into_value()
}

/// Unbounded probabilistic reachability under a resource [`Budget`].
///
/// The iteration budget bounds the number of Bellman sweeps and the
/// wall-clock deadline is checked once per sweep. On exhaustion the
/// partial [`Quantitative`] holds the value vector reached so far (for
/// `Max` a lower bound on the true probabilities, the qualitative 0/1
/// states being already exact).
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()`.
pub fn reachability_governed(
    mdp: &Mdp,
    opt: Opt,
    goal: &[bool],
    budget: &Budget,
) -> Outcome<Quantitative> {
    let gov = budget.governor();
    let result = reachability_with(mdp, opt, goal, &gov);
    let report = vi_report(&gov, mdp.num_states(), result.iterations);
    gov.finish(result, report)
}

fn reachability_with(mdp: &Mdp, opt: Opt, goal: &[bool], gov: &Governor) -> Quantitative {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    let n = mdp.num_states();
    let mut values = vec![0.0_f64; n];
    let mut fixed = vec![false; n];

    match opt {
        Opt::Max => {
            let can = reach_exists(mdp, goal);
            let one = prob1_exists(mdp, goal);
            for i in 0..n {
                if !can[i] {
                    values[i] = 0.0;
                    fixed[i] = true;
                } else if one[i] {
                    values[i] = 1.0;
                    fixed[i] = true;
                }
            }
        }
        Opt::Min => {
            let positive = reach_forall_positive(mdp, goal);
            for i in 0..n {
                if goal[i] {
                    values[i] = 1.0;
                    fixed[i] = true;
                } else if !positive[i] {
                    values[i] = 0.0;
                    fixed[i] = true;
                }
            }
        }
    }

    let iterations = iterate(mdp, opt, &mut values, &fixed, None, MAX_ITERATIONS, gov);
    let scheduler = extract_scheduler(mdp, opt, &values, None, goal);
    Quantitative {
        initial_value: values[mdp.initial().0],
        values,
        scheduler,
        iterations,
    }
}

/// Step-bounded probabilistic reachability `P{max,min}(◇≤k goal)`.
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()`.
#[must_use]
pub fn bounded_reachability(mdp: &Mdp, opt: Opt, goal: &[bool], steps: usize) -> Quantitative {
    bounded_reachability_governed(mdp, opt, goal, steps, &Budget::unlimited()).into_value()
}

/// Step-bounded probabilistic reachability under a resource [`Budget`]:
/// each of the `steps` backup sweeps charges one iteration. On
/// exhaustion after `k < steps` sweeps the partial result is the exact
/// `k`-step value (a lower bound on the `steps`-step value).
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()`.
pub fn bounded_reachability_governed(
    mdp: &Mdp,
    opt: Opt,
    goal: &[bool],
    steps: usize,
    budget: &Budget,
) -> Outcome<Quantitative> {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    let gov = budget.governor();
    let mut values: Vec<f64> = goal.iter().map(|&g| f64::from(u8::from(g))).collect();
    let mut done = 0_usize;
    for _ in 0..steps {
        if !gov.charge_iteration() || !gov.check_time() {
            break;
        }
        done += 1;
        let prev = values.clone();
        for s in mdp.states() {
            if goal[s.0] {
                continue;
            }
            values[s.0] = combine(mdp, s, opt, &prev, None).0;
        }
    }
    let scheduler = extract_scheduler(mdp, opt, &values, None, goal);
    let report = vi_report(&gov, mdp.num_states(), done);
    gov.finish(
        Quantitative {
            initial_value: values[mdp.initial().0],
            values,
            scheduler,
            iterations: done,
        },
        report,
    )
}

/// Expected total reward accumulated until reaching `goal`
/// (`E{max,min}(◇ goal)` in PRISM terms).
///
/// Returns `f64::INFINITY` for states that may avoid the goal forever
/// (for `Max`: where `Pmin(◇ goal) < 1`; for `Min`: where
/// `Pmax(◇ goal) < 1`).
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()`.
#[must_use]
pub fn expected_reward(mdp: &Mdp, opt: Opt, goal: &[bool]) -> Quantitative {
    expected_reward_governed(mdp, opt, goal, &Budget::unlimited()).into_value()
}

/// Expected total reward under a resource [`Budget`]. The budget is
/// shared between the embedded qualitative reachability analysis and the
/// reward iteration; on exhaustion the partial values are the current
/// (under-approximate for `Max`) reward vector.
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()`.
pub fn expected_reward_governed(
    mdp: &Mdp,
    opt: Opt,
    goal: &[bool],
    budget: &Budget,
) -> Outcome<Quantitative> {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    let gov = budget.governor();
    let n = mdp.num_states();
    // States where the relevant scheduler class reaches the goal a.s.
    let sure: Vec<bool> = match opt {
        Opt::Max => {
            // Emax is finite iff *every* scheduler reaches goal a.s.;
            // approximate with Pmin = 1 via value iteration on Pmin.
            let pmin = reachability_with(mdp, Opt::Min, goal, &gov);
            pmin.values.iter().map(|&v| v > 1.0 - 1e-9).collect()
        }
        Opt::Min => {
            let pmax = reachability_with(mdp, Opt::Max, goal, &gov);
            pmax.values.iter().map(|&v| v > 1.0 - 1e-9).collect()
        }
    };
    let mut values = vec![0.0_f64; n];
    let mut fixed = vec![false; n];
    for i in 0..n {
        if goal[i] {
            values[i] = 0.0;
            fixed[i] = true;
        } else if !sure[i] {
            values[i] = f64::INFINITY;
            fixed[i] = true;
        }
    }
    let iterations = iterate(
        mdp,
        opt,
        &mut values,
        &fixed,
        Some(goal),
        MAX_ITERATIONS,
        &gov,
    );
    let scheduler = extract_scheduler(mdp, opt, &values, Some(goal), goal);
    let report = vi_report(&gov, n, iterations);
    gov.finish(
        Quantitative {
            initial_value: values[mdp.initial().0],
            values,
            scheduler,
            iterations,
        },
        report,
    )
}

/// Result of an interval-iteration query: certified lower and upper
/// bounds on the value.
#[derive(Debug, Clone)]
pub struct IntervalResult {
    /// Certified lower bound per state.
    pub lower: Vec<f64>,
    /// Certified upper bound per state.
    pub upper: Vec<f64>,
    /// Lower bound at the initial state.
    pub initial_lower: f64,
    /// Upper bound at the initial state.
    pub initial_upper: f64,
    /// Sweeps performed.
    pub iterations: usize,
}

/// Sound probabilistic reachability by *interval iteration*
/// (Haddad–Monmege / Baier et al.): value iteration from below **and**
/// from above, stopping when the two approximations are within
/// `precision` everywhere. Unlike plain value iteration, the returned
/// interval is a certified enclosure of the true probability.
///
/// If unresolved end components remain after the qualitative
/// precomputation, the upper iteration cannot descend below them; the
/// iteration then stops on stagnation and the (sound but wider) enclosure
/// is returned.
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()` or `precision <= 0`.
#[must_use]
pub fn interval_reachability(mdp: &Mdp, opt: Opt, goal: &[bool], precision: f64) -> IntervalResult {
    interval_reachability_governed(mdp, opt, goal, precision, &Budget::unlimited()).into_value()
}

/// Interval iteration under a resource [`Budget`]. Every intermediate
/// `[lower, upper]` pair is already a certified enclosure, so the
/// partial result on exhaustion is sound — merely wider than requested.
///
/// # Panics
///
/// Panics if `goal.len() != mdp.num_states()` or `precision <= 0`.
pub fn interval_reachability_governed(
    mdp: &Mdp,
    opt: Opt,
    goal: &[bool],
    precision: f64,
    budget: &Budget,
) -> Outcome<IntervalResult> {
    assert_eq!(goal.len(), mdp.num_states(), "goal mask length mismatch");
    assert!(precision > 0.0, "precision must be positive");
    let n = mdp.num_states();
    // Qualitative precomputation pins the exact 0/1 states; interval
    // iteration converges on the rest (the precomputation removes the
    // end components that would trap the upper iteration).
    let mut lower = vec![0.0_f64; n];
    let mut upper = vec![1.0_f64; n];
    let mut fixed = vec![false; n];
    match opt {
        Opt::Max => {
            let can = reach_exists(mdp, goal);
            let one = prob1_exists(mdp, goal);
            for i in 0..n {
                if !can[i] {
                    lower[i] = 0.0;
                    upper[i] = 0.0;
                    fixed[i] = true;
                } else if one[i] {
                    lower[i] = 1.0;
                    upper[i] = 1.0;
                    fixed[i] = true;
                }
            }
        }
        Opt::Min => {
            let positive = reach_forall_positive(mdp, goal);
            for i in 0..n {
                if goal[i] {
                    lower[i] = 1.0;
                    upper[i] = 1.0;
                    fixed[i] = true;
                } else if !positive[i] {
                    lower[i] = 0.0;
                    upper[i] = 0.0;
                    fixed[i] = true;
                }
            }
        }
    }
    // Absorbing non-goal states never reach the goal.
    for s in mdp.states() {
        if mdp.is_absorbing(s) && !goal[s.0] && !fixed[s.0] {
            lower[s.0] = 0.0;
            upper[s.0] = 0.0;
            fixed[s.0] = true;
        }
    }
    let gov = budget.governor();
    let mut iterations = 0;
    let mut prev_gap = f64::INFINITY;
    let mut stagnant = 0_u32;
    for _ in 0..MAX_ITERATIONS {
        if !gov.charge_iteration() || !gov.check_time() {
            break;
        }
        iterations += 1;
        let mut gap = 0.0_f64;
        for s in mdp.states() {
            if fixed[s.0] {
                continue;
            }
            let (lo, _) = combine(mdp, s, opt, &lower, None);
            let (hi, _) = combine(mdp, s, opt, &upper, None);
            lower[s.0] = lo;
            upper[s.0] = hi;
            gap = gap.max(hi - lo);
        }
        if gap <= precision {
            break;
        }
        // End components among the unresolved states keep the upper
        // iteration from descending; the enclosure is still sound, so
        // stop once the gap stagnates instead of spinning.
        if (prev_gap - gap).abs() < f64::EPSILON {
            stagnant += 1;
            if stagnant > 1000 {
                break;
            }
        } else {
            stagnant = 0;
        }
        prev_gap = gap;
    }
    let report = vi_report(&gov, n, iterations);
    gov.finish(
        IntervalResult {
            initial_lower: lower[mdp.initial().0],
            initial_upper: upper[mdp.initial().0],
            lower,
            upper,
            iterations,
        },
        report,
    )
}

/// One Bellman backup at state `s`. With `rewards = Some(goal)`, the
/// action reward is added (expected-reward form); goal states contribute
/// their (zero) value.
fn combine(
    mdp: &Mdp,
    s: StateId,
    opt: Opt,
    values: &[f64],
    rewards: Option<&[bool]>,
) -> (f64, Option<usize>) {
    let acts = mdp.actions(s);
    if acts.is_empty() {
        // Absorbing: implicit self-loop. Reachability value stays; the
        // expected reward of a non-goal absorbing state is handled by the
        // qualitative precomputation (infinite), so 0 here is safe.
        return (values[s.0], None);
    }
    let mut best: Option<(f64, usize)> = None;
    for (ai, a) in acts.iter().enumerate() {
        let mut v = if rewards.is_some() { a.reward } else { 0.0 };
        for &(t, p) in &a.transitions {
            if p > 0.0 {
                v += p * values[t.0];
            }
        }
        let better = match (&best, opt) {
            (None, _) => true,
            (Some((b, _)), Opt::Max) => v > *b,
            (Some((b, _)), Opt::Min) => v < *b,
        };
        if better {
            best = Some((v, ai));
        }
    }
    let (v, ai) = best.expect("non-empty action set");
    (v, Some(ai))
}

/// Gauss–Seidel value iteration over non-fixed states. Each sweep
/// charges one iteration against the governor; on a tripped budget the
/// loop stops early with the values computed so far.
fn iterate(
    mdp: &Mdp,
    opt: Opt,
    values: &mut [f64],
    fixed: &[bool],
    rewards: Option<&[bool]>,
    max_iter: usize,
    gov: &Governor,
) -> usize {
    for it in 0..max_iter {
        if !gov.charge_iteration() || !gov.check_time() {
            return it;
        }
        let mut delta = 0.0_f64;
        for s in mdp.states() {
            if fixed[s.0] {
                continue;
            }
            let (v, _) = combine(mdp, s, opt, values, rewards);
            let d = (v - values[s.0]).abs();
            if d > delta {
                delta = d;
            }
            values[s.0] = v;
        }
        if delta < EPSILON {
            return it + 1;
        }
    }
    max_iter
}

/// Extracts a memoryless scheduler realizing the computed values.
///
/// Greedy choice among value-optimal actions is not enough: with ties, a
/// greedy scheduler may cycle forever inside an equal-value region and
/// never actually reach the goal (the textbook `Pmax` pitfall). Optimal
/// actions are therefore ranked by progress: a state prefers a
/// value-optimal action with a successor strictly closer (in admissible
/// steps) to the goal.
fn extract_scheduler(
    mdp: &Mdp,
    opt: Opt,
    values: &[f64],
    rewards: Option<&[bool]>,
    goal: &[bool],
) -> Vec<Option<usize>> {
    let n = mdp.num_states();
    let admissible = |s: StateId, ai: usize| -> bool {
        let a = &mdp.actions(s)[ai];
        let mut q = if rewards.is_some() { a.reward } else { 0.0 };
        for &(t, p) in &a.transitions {
            if p > 0.0 {
                q += p * values[t.0];
            }
        }
        let v = values[s.0];
        if v.is_infinite() {
            return q.is_infinite();
        }
        (q - v).abs() <= 1e-9 * v.abs().max(1.0)
    };
    let mut scheduler: Vec<Option<usize>> = vec![None; n];
    let mut ranked: Vec<bool> = goal.to_vec();
    loop {
        let mut changed = false;
        for s in mdp.states() {
            if ranked[s.0] || scheduler[s.0].is_some() {
                continue;
            }
            let progress = (0..mdp.actions(s).len()).find(|&ai| {
                admissible(s, ai)
                    && mdp.actions(s)[ai]
                        .transitions
                        .iter()
                        .any(|&(t, p)| p > 0.0 && ranked[t.0])
            });
            if let Some(ai) = progress {
                scheduler[s.0] = Some(ai);
                ranked[s.0] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // States that cannot make progress toward the goal (value 0 for Pmax,
    // goal avoided for Pmin, infinite expectation): any optimal action.
    for s in mdp.states() {
        if scheduler[s.0].is_none() {
            scheduler[s.0] = combine(mdp, s, opt, values, rewards).1;
        }
    }
    scheduler
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MdpBuilder;

    /// A fair coin DTMC: s0 → heads/tails with probability ½ each.
    fn coin() -> (Mdp, StateId, StateId) {
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let heads = b.add_state();
        let tails = b.add_state();
        b.add_action(s0, None, 1.0, vec![(heads, 0.5), (tails, 0.5)])
            .unwrap();
        (b.build(s0).unwrap(), heads, tails)
    }

    fn mask(n: usize, set: &[StateId]) -> Vec<bool> {
        let mut m = vec![false; n];
        for s in set {
            m[s.0] = true;
        }
        m
    }

    #[test]
    fn coin_probabilities() {
        let (mdp, heads, _) = coin();
        let goal = mask(mdp.num_states(), &[heads]);
        let res = reachability(&mdp, Opt::Max, &goal);
        assert!((res.initial_value - 0.5).abs() < 1e-9);
        let res = reachability(&mdp, Opt::Min, &goal);
        assert!((res.initial_value - 0.5).abs() < 1e-9);
    }

    #[test]
    fn geometric_retry_reaches_almost_surely() {
        // s0: retry with p=0.9 back to s0, succeed with 0.1.
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let ok = b.add_state();
        b.add_action(s0, None, 1.0, vec![(s0, 0.9), (ok, 0.1)])
            .unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(2, &[ok]);
        let p = reachability(&mdp, Opt::Max, &goal);
        assert!((p.initial_value - 1.0).abs() < 1e-9);
        // Expected number of trials = 10 (reward 1 per attempt).
        let e = expected_reward(&mdp, Opt::Max, &goal);
        assert!((e.initial_value - 10.0).abs() < 1e-6);
    }

    #[test]
    fn nondeterminism_max_vs_min() {
        // s0 has two actions: safe (to goal w.p. 1) and risky (goal 0.3,
        // sink 0.7).
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let goal_s = b.add_state();
        let sink = b.add_state();
        b.add_action(s0, Some("safe"), 0.0, vec![(goal_s, 1.0)])
            .unwrap();
        b.add_action(s0, Some("risky"), 0.0, vec![(goal_s, 0.3), (sink, 0.7)])
            .unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(3, &[goal_s]);
        let pmax = reachability(&mdp, Opt::Max, &goal);
        let pmin = reachability(&mdp, Opt::Min, &goal);
        assert!((pmax.initial_value - 1.0).abs() < 1e-9);
        assert!((pmin.initial_value - 0.3).abs() < 1e-9);
        assert_eq!(pmax.scheduler[0], Some(0));
        assert_eq!(pmin.scheduler[0], Some(1));
    }

    #[test]
    fn qualitative_sets() {
        // s0 -> s1 -> goal; s2 isolated.
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let g = b.add_state();
        let s2 = b.add_state();
        b.add_action(s0, None, 0.0, vec![(s1, 1.0)]).unwrap();
        b.add_action(s1, None, 0.0, vec![(g, 1.0)]).unwrap();
        b.add_action(s2, None, 0.0, vec![(s2, 1.0)]).unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(4, &[g]);
        let can = reach_exists(&mdp, &goal);
        assert_eq!(can, vec![true, true, true, false]);
        let one = prob1_exists(&mdp, &goal);
        assert_eq!(one, vec![true, true, true, false]);
        let pos = reach_forall_positive(&mdp, &goal);
        assert_eq!(pos, vec![true, true, true, false]);
    }

    #[test]
    fn bounded_reachability_steps() {
        // Chain s0 -> s1 -> s2(goal).
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.add_action(s0, None, 0.0, vec![(s1, 1.0)]).unwrap();
        b.add_action(s1, None, 0.0, vec![(s2, 1.0)]).unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(3, &[s2]);
        assert_eq!(
            bounded_reachability(&mdp, Opt::Max, &goal, 1).initial_value,
            0.0
        );
        assert_eq!(
            bounded_reachability(&mdp, Opt::Max, &goal, 2).initial_value,
            1.0
        );
    }

    #[test]
    fn infinite_expected_reward_detected() {
        // s0 can loop forever away from the goal.
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let g = b.add_state();
        b.add_action(s0, Some("loop"), 1.0, vec![(s0, 1.0)])
            .unwrap();
        b.add_action(s0, Some("go"), 1.0, vec![(g, 1.0)]).unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(2, &[g]);
        // Max: the maximizing scheduler can avoid the goal ⇒ ∞.
        let emax = expected_reward(&mdp, Opt::Max, &goal);
        assert!(emax.initial_value.is_infinite());
        // Min: go directly ⇒ 1.
        let emin = expected_reward(&mdp, Opt::Min, &goal);
        assert!((emin.initial_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interval_iteration_brackets_value_iteration() {
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let ok = b.add_state();
        let lose = b.add_state();
        b.add_action(s0, None, 0.0, vec![(s0, 0.5), (ok, 0.3), (lose, 0.2)])
            .unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(3, &[ok]);
        let vi = reachability(&mdp, Opt::Max, &goal);
        let ii = interval_reachability(&mdp, Opt::Max, &goal, 1e-8);
        assert!(ii.initial_lower <= vi.initial_value + 1e-8);
        assert!(vi.initial_value <= ii.initial_upper + 1e-8);
        assert!(ii.initial_upper - ii.initial_lower <= 1e-8);
        // Exact value: 0.3 / 0.5 = 0.6.
        assert!((vi.initial_value - 0.6).abs() < 1e-8);
    }

    #[test]
    fn interval_iteration_pins_qualitative_states() {
        // s2 cannot reach the goal: both bounds must be exactly 0 without
        // iteration error.
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let g = b.add_state();
        let s2 = b.add_state();
        b.add_action(s0, None, 0.0, vec![(g, 1.0)]).unwrap();
        b.add_action(s2, None, 0.0, vec![(s2, 1.0)]).unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(3, &[g]);
        let ii = interval_reachability(&mdp, Opt::Max, &goal, 1e-6);
        assert_eq!(ii.lower[s2.0], 0.0);
        assert_eq!(ii.upper[s2.0], 0.0);
        assert_eq!(ii.lower[s0.0], 1.0);
        assert_eq!(ii.upper[s0.0], 1.0);
    }

    #[test]
    fn interval_iteration_sound_on_end_components() {
        // s0 may loop forever (end component) or gamble 50/50: Pmax = 0.5,
        // but the upper iteration cannot descend below the loop. The
        // enclosure must stay sound and the call must terminate.
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let g = b.add_state();
        let lose = b.add_state();
        b.add_action(s0, Some("loop"), 0.0, vec![(s0, 1.0)])
            .unwrap();
        b.add_action(s0, Some("gamble"), 0.0, vec![(g, 0.5), (lose, 0.5)])
            .unwrap();
        let mdp = b.build(s0).unwrap();
        let goal = mask(3, &[g]);
        let ii = interval_reachability(&mdp, Opt::Max, &goal, 1e-6);
        let vi = reachability(&mdp, Opt::Max, &goal);
        assert!(ii.initial_lower <= vi.initial_value + 1e-9);
        assert!(vi.initial_value <= ii.initial_upper + 1e-9);
        assert!((vi.initial_value - 0.5).abs() < 1e-9);
        assert!(ii.iterations < MAX_ITERATIONS);
    }

    #[test]
    fn knuth_yao_die_first_roll() {
        // Knuth–Yao simulation of a die with a fair coin: check the
        // probability of rolling a 1 is 1/6.
        let mut b = MdpBuilder::new();
        let states: Vec<StateId> = (0..13).map(|_| b.add_state()).collect();
        // 0 is the root; 7..=12 are die outcomes 1..=6.
        let coin = |b: &mut MdpBuilder, s: usize, l: usize, r: usize| {
            b.add_action(
                states[s],
                None,
                0.0,
                vec![(states[l], 0.5), (states[r], 0.5)],
            )
            .unwrap();
        };
        coin(&mut b, 0, 1, 2);
        coin(&mut b, 1, 3, 4);
        coin(&mut b, 2, 5, 6);
        coin(&mut b, 3, 1, 7); // back to 1 or outcome 1
        coin(&mut b, 4, 8, 9);
        coin(&mut b, 5, 10, 11);
        coin(&mut b, 6, 2, 12); // back to 2 or outcome 6
        let mdp = b.build(states[0]).unwrap();
        let goal = mask(13, &[states[7]]);
        let p = reachability(&mdp, Opt::Max, &goal);
        assert!((p.initial_value - 1.0 / 6.0).abs() < 1e-9);
    }
}
