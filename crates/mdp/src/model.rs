//! Markov decision processes: states, nondeterministic actions, and
//! probabilistic transitions.

use std::fmt;

/// Identifier of an MDP state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl StateId {
    /// The state's position in the MDP's state table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One nondeterministic action of a state: a probability distribution
/// over successors, plus a reward earned when the action is taken.
#[derive(Debug, Clone, PartialEq)]
pub struct MdpAction {
    /// Optional label for diagnostics.
    pub label: Option<String>,
    /// Reward earned by taking this action (e.g. elapsed time).
    pub reward: f64,
    /// Successor distribution: pairs `(state, probability)`, summing to 1.
    pub transitions: Vec<(StateId, f64)>,
}

/// A finite Markov decision process.
///
/// States with no explicit actions are absorbing (they receive an implicit
/// zero-reward self-loop during analysis). A DTMC is the special case in
/// which every state has exactly one action.
///
/// ```
/// use tempo_mdp::{MdpBuilder, StateId};
/// let mut b = MdpBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// b.add_action(s0, None, 0.0, vec![(s1, 0.5), (s0, 0.5)])?;
/// let mdp = b.build(s0)?;
/// assert_eq!(mdp.num_states(), 2);
/// # Ok::<(), tempo_mdp::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mdp {
    pub(crate) actions: Vec<Vec<MdpAction>>,
    pub(crate) initial: StateId,
}

/// An error raised while constructing an MDP.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A transition targets an undeclared state.
    UnknownState {
        /// The offending target.
        state: StateId,
    },
    /// A distribution's probabilities do not sum to 1 (within 1e-9) or a
    /// probability is negative.
    BadDistribution {
        /// The source state of the offending action.
        state: StateId,
        /// The actual probability mass.
        sum: f64,
    },
    /// A reward is negative or non-finite (expected-reward analysis
    /// requires non-negative rewards).
    BadReward {
        /// The source state of the offending action.
        state: StateId,
        /// The offending reward.
        reward: f64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownState { state } => write!(f, "unknown state {state}"),
            BuildError::BadDistribution { state, sum } => {
                write!(f, "distribution from {state} sums to {sum}, expected 1")
            }
            BuildError::BadReward { state, reward } => {
                write!(f, "invalid reward {reward} on action from {state}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl tempo_obs::StableDigest for MdpAction {
    /// Digests the reward and the successor distribution. Labels are
    /// diagnostics and excluded; the distribution is a set of
    /// `(state, probability)` pairs, so it folds commutatively.
    fn digest(&self, h: &mut tempo_obs::StableHasher) {
        h.write_tag("action");
        h.write_f64(self.reward);
        h.write_unordered(
            self.transitions
                .iter()
                .map(|&(s, p)| tempo_obs::Fingerprint::of(&(s.index(), p))),
        );
    }
}

impl tempo_obs::StableDigest for Mdp {
    /// Structural fingerprint of the MDP: per-state action lists in
    /// order (state and action indices are the identities schedulers
    /// refer to) plus the initial state.
    fn digest(&self, h: &mut tempo_obs::StableHasher) {
        h.write_tag("mdp");
        self.actions.digest(h);
        h.write_usize(self.initial.index());
    }
}

impl Mdp {
    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Total number of actions over all states.
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }

    /// Total number of probabilistic transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.actions
            .iter()
            .flat_map(|acts| acts.iter().map(|a| a.transitions.len()))
            .sum()
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Actions available in a state (empty means absorbing).
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range.
    #[must_use]
    pub fn actions(&self, s: StateId) -> &[MdpAction] {
        &self.actions[s.0]
    }

    /// Whether the state has no outgoing actions.
    #[must_use]
    pub fn is_absorbing(&self, s: StateId) -> bool {
        self.actions[s.0].is_empty()
    }

    /// Iterator over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.actions.len()).map(StateId)
    }
}

/// Incremental builder for [`Mdp`] models.
#[derive(Debug, Clone, Default)]
pub struct MdpBuilder {
    actions: Vec<Vec<MdpAction>>,
}

impl MdpBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        MdpBuilder::default()
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.actions.push(Vec::new());
        StateId(self.actions.len() - 1)
    }

    /// Ensures at least `n` states exist.
    pub fn reserve_states(&mut self, n: usize) {
        while self.actions.len() < n {
            self.actions.push(Vec::new());
        }
    }

    /// Number of states added so far.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Adds an action from `state` with the given reward and successor
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if `state` or a target is unknown, the
    /// distribution does not sum to 1, or the reward is negative/NaN.
    pub fn add_action(
        &mut self,
        state: StateId,
        label: Option<&str>,
        reward: f64,
        transitions: Vec<(StateId, f64)>,
    ) -> Result<(), BuildError> {
        if state.0 >= self.actions.len() {
            return Err(BuildError::UnknownState { state });
        }
        if !reward.is_finite() || reward < 0.0 {
            return Err(BuildError::BadReward { state, reward });
        }
        let mut sum = 0.0;
        for &(t, p) in &transitions {
            if t.0 >= self.actions.len() {
                return Err(BuildError::UnknownState { state: t });
            }
            if !(0.0..=1.0 + 1e-9).contains(&p) {
                return Err(BuildError::BadDistribution { state, sum: p });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(BuildError::BadDistribution { state, sum });
        }
        self.actions[state.0].push(MdpAction {
            label: label.map(str::to_owned),
            reward,
            transitions,
        });
        Ok(())
    }

    /// Finalizes the MDP with the given initial state.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownState`] if `initial` is out of range.
    pub fn build(self, initial: StateId) -> Result<Mdp, BuildError> {
        if initial.0 >= self.actions.len() {
            return Err(BuildError::UnknownState { state: initial });
        }
        Ok(Mdp {
            actions: self.actions,
            initial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_distributions() {
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        assert!(b
            .add_action(s0, None, 0.0, vec![(s1, 0.6), (s0, 0.4)])
            .is_ok());
        assert!(matches!(
            b.add_action(s0, None, 0.0, vec![(s1, 0.6)]),
            Err(BuildError::BadDistribution { .. })
        ));
        assert!(matches!(
            b.add_action(s0, None, -1.0, vec![(s1, 1.0)]),
            Err(BuildError::BadReward { .. })
        ));
        assert!(matches!(
            b.add_action(s0, None, 0.0, vec![(StateId(9), 1.0)]),
            Err(BuildError::UnknownState { .. })
        ));
    }

    #[test]
    fn model_accessors() {
        let mut b = MdpBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_action(s0, Some("go"), 2.0, vec![(s1, 1.0)]).unwrap();
        let mdp = b.build(s0).unwrap();
        assert_eq!(mdp.num_states(), 2);
        assert_eq!(mdp.num_actions(), 1);
        assert_eq!(mdp.num_transitions(), 1);
        assert!(mdp.is_absorbing(s1));
        assert!(!mdp.is_absorbing(s0));
        assert_eq!(mdp.actions(s0)[0].label.as_deref(), Some("go"));
        assert_eq!(mdp.initial(), s0);
        assert_eq!(mdp.states().count(), 2);
    }

    #[test]
    fn bad_initial_rejected() {
        let b = MdpBuilder::new();
        assert!(b.build(StateId(0)).is_err());
    }
}
