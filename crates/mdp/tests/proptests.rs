//! Property-based tests for the MDP engine: probabilistic-reachability
//! laws checked on randomly generated small MDPs.

use proptest::prelude::*;
use tempo_mdp::{
    bounded_reachability, expected_reward, prob1_exists, reach_exists, reachability, Mdp,
    MdpBuilder, Opt, StateId,
};

const N: usize = 6;

/// A random MDP over `N` states: each state gets 0..=2 actions, each with
/// a distribution over 1..=3 successors.
fn arb_mdp() -> impl Strategy<Value = Mdp> {
    let action = (
        prop::collection::vec((0..N, 1..=10_u32), 1..=3),
        0.0..3.0_f64,
    );
    prop::collection::vec(prop::collection::vec(action, 0..=2), N).prop_map(|spec| {
        let mut b = MdpBuilder::new();
        let states: Vec<StateId> = (0..N).map(|_| b.add_state()).collect();
        for (s, actions) in spec.into_iter().enumerate() {
            for (targets, reward) in actions {
                let total: u32 = targets.iter().map(|(_, w)| w).sum();
                let mut dist: Vec<(StateId, f64)> = targets
                    .iter()
                    .map(|&(t, w)| (states[t], f64::from(w) / f64::from(total)))
                    .collect();
                // Repair floating normalization exactly.
                let sum: f64 = dist.iter().map(|(_, p)| p).sum();
                dist.last_mut().expect("non-empty").1 += 1.0 - sum;
                b.add_action(states[s], None, reward, dist)
                    .expect("valid action");
            }
        }
        b.build(states[0]).expect("valid initial state")
    })
}

fn arb_goal() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(prop::bool::ANY, N)
}

proptest! {
    #[test]
    fn probabilities_are_within_bounds(mdp in arb_mdp(), goal in arb_goal()) {
        let pmax = reachability(&mdp, Opt::Max, &goal);
        let pmin = reachability(&mdp, Opt::Min, &goal);
        for i in 0..N {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pmax.values[i]));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pmin.values[i]));
            prop_assert!(pmin.values[i] <= pmax.values[i] + 1e-9);
        }
    }

    #[test]
    fn goal_states_have_probability_one(mdp in arb_mdp(), goal in arb_goal()) {
        let pmax = reachability(&mdp, Opt::Max, &goal);
        let pmin = reachability(&mdp, Opt::Min, &goal);
        for (i, &g) in goal.iter().enumerate() {
            if g {
                prop_assert!((pmax.values[i] - 1.0).abs() < 1e-9);
                prop_assert!((pmin.values[i] - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bounded_is_monotone_and_below_unbounded(mdp in arb_mdp(), goal in arb_goal()) {
        let unbounded = reachability(&mdp, Opt::Max, &goal);
        let mut prev = 0.0;
        for k in [0, 1, 2, 5, 20] {
            let bounded = bounded_reachability(&mdp, Opt::Max, &goal, k);
            prop_assert!(bounded.initial_value + 1e-9 >= prev, "monotone in k");
            prop_assert!(bounded.initial_value <= unbounded.initial_value + 1e-9);
            prev = bounded.initial_value;
        }
    }

    #[test]
    fn qualitative_sets_agree_with_quantitative(mdp in arb_mdp(), goal in arb_goal()) {
        let pmax = reachability(&mdp, Opt::Max, &goal);
        let can = reach_exists(&mdp, &goal);
        let one = prob1_exists(&mdp, &goal);
        for i in 0..N {
            if !can[i] {
                prop_assert!(pmax.values[i].abs() < 1e-9, "Prob0 states get 0");
            } else {
                prop_assert!(pmax.values[i] > 0.0 || goal.iter().all(|&g| !g));
            }
            if one[i] {
                prop_assert!((pmax.values[i] - 1.0).abs() < 1e-9, "Prob1E states get 1");
            }
        }
    }

    #[test]
    fn scheduler_achieves_the_value(mdp in arb_mdp(), goal in arb_goal()) {
        // Evaluate the extracted max scheduler as a Markov chain and
        // compare to the reported value (the scheduler realizes Pmax).
        let pmax = reachability(&mdp, Opt::Max, &goal);
        let mut b = MdpBuilder::new();
        let states: Vec<StateId> = (0..N).map(|_| b.add_state()).collect();
        for s in mdp.states() {
            if let Some(ai) = pmax.scheduler[s.index()] {
                let a = &mdp.actions(s)[ai];
                b.add_action(states[s.index()], None, a.reward, a.transitions.clone())
                    .expect("copied action is valid");
            }
        }
        let chain = b.build(states[mdp.initial().index()]).expect("valid");
        let induced = reachability(&chain, Opt::Max, &goal);
        prop_assert!(
            (induced.initial_value - pmax.initial_value).abs() < 1e-6,
            "scheduler value {} vs Pmax {}",
            induced.initial_value,
            pmax.initial_value
        );
    }

    #[test]
    fn expected_reward_nonnegative_and_min_below_max(mdp in arb_mdp(), goal in arb_goal()) {
        let emax = expected_reward(&mdp, Opt::Max, &goal);
        let emin = expected_reward(&mdp, Opt::Min, &goal);
        for i in 0..N {
            prop_assert!(emax.values[i] >= -1e-9);
            prop_assert!(emin.values[i] >= -1e-9);
            if emax.values[i].is_finite() {
                prop_assert!(emin.values[i] <= emax.values[i] + 1e-6);
            }
        }
    }
}
