//! # tempo-tiga — timed-game strategy synthesis
//!
//! The UPPAAL-TIGA analogue of the workspace (Bozga et al., DATE 2012,
//! §II): timed *game* automata partition edges between a controller
//! (solid, [`controllable`]) and the environment (dashed,
//! [`EdgeBuilder::uncontrollable`]); the tool synthesizes winning control
//! strategies for reachability and safety objectives — e.g. deciding when
//! to stop and restart the paper's trains instead of hand-writing the
//! controller (Fig. 2/3).
//!
//! The paper's tool works on-the-fly over zones; this reproduction solves
//! the equivalent discrete game over the digital-clocks graph
//! ([`tempo_ta::DigitalExplorer`]), exact for closed models, using the
//! classic controllable-predecessor fixpoints:
//!
//! * **Reachability**: `W` grows from the goal; a state is winning if all
//!   uncontrollable moves stay in `W` *and* the controller can either fire
//!   a controllable move into `W` or let time pass into `W`.
//! * **Safety**: `W` shrinks from the non-bad states; a state stays
//!   winning if all uncontrollable moves remain in `W` and the controller
//!   can keep the game in `W` (delay or a controllable move).
//!
//! [`controllable`]: tempo_ta::Edge#structfield.controllable
//! [`EdgeBuilder::uncontrollable`]: tempo_ta::EdgeBuilder::uncontrollable

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use tempo_conc::{run_workers, split_budget, ParallelConfig};
use tempo_obs::{Budget, Governor, Outcome, RunReport};
use tempo_ta::flow::FlowMetrics;
use tempo_ta::{DigitalError, DigitalExplorer, DigitalMove, DigitalState, Network, StateFormula};

/// What the synthesized controller prescribes in a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyMove {
    /// Let time elapse (take no controllable action yet).
    Wait,
    /// Fire the given controllable move.
    Act(DigitalMove),
}

/// A memoryless winning strategy over digital states.
///
/// When the game was solved on an actively-reduced network (see
/// [`tempo_ta::ClockReduction`]), the strategy keys its states in the
/// reduced clock space and carries the projection; [`Strategy::decide`]
/// accepts full-network states and projects them transparently, so
/// callers never observe the reduction.
#[derive(Debug, Clone, Default)]
pub struct Strategy {
    moves: HashMap<DigitalState, StrategyMove>,
    /// Original clock indices of the kept clocks (reduced order), when
    /// the solve ran on a reduced network.
    proj: Option<Vec<usize>>,
}

impl Strategy {
    fn key(&self, state: &DigitalState) -> DigitalState {
        match &self.proj {
            None => state.clone(),
            Some(kept) => DigitalState {
                locs: state.locs.clone(),
                store: state.store.clone(),
                clocks: kept.iter().map(|&i| state.clocks[i]).collect(),
            },
        }
    }

    /// The prescription for a state, if the state is winning.
    #[must_use]
    pub fn decide(&self, state: &DigitalState) -> Option<&StrategyMove> {
        self.moves.get(&self.key(state))
    }

    /// Number of states with a prescription.
    #[must_use]
    pub fn size(&self) -> usize {
        self.moves.len()
    }

    /// Whether the state is in the winning region.
    #[must_use]
    pub fn is_winning(&self, state: &DigitalState) -> bool {
        self.moves.contains_key(&self.key(state))
    }

    /// Iterates over the `(state, prescription)` table. States are keyed
    /// in the strategy's own clock space (see [`Strategy::projection`]).
    pub fn prescriptions(&self) -> impl Iterator<Item = (&DigitalState, &StrategyMove)> {
        self.moves.iter()
    }

    /// Original clock indices of the kept clocks when the game was
    /// solved on a reduced network; `None` when states use the full
    /// clock space.
    #[must_use]
    pub fn projection(&self) -> Option<&[usize]> {
        self.proj.as_deref()
    }
}

/// Lists every prescription, one `state -> move` line, sorted for a
/// deterministic rendering of the underlying hash map.
impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<String> = self
            .moves
            .iter()
            .map(|(s, m)| {
                let locs: Vec<String> = s.locs.iter().map(|l| l.index().to_string()).collect();
                let mv = match m {
                    StrategyMove::Wait => "wait".to_owned(),
                    StrategyMove::Act(m) => m.label.clone(),
                };
                format!("({}) {:?} -> {mv}", locs.join(", "), s.clocks)
            })
            .collect();
        entries.sort_unstable();
        writeln!(f, "strategy over {} states", entries.len())?;
        for e in entries {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Result of a game solution.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Whether the initial state is winning for the controller.
    pub winning: bool,
    /// The synthesized strategy on the winning region.
    pub strategy: Strategy,
    /// Number of states in the explored game graph.
    pub states: usize,
}

/// The timed-game solver.
#[derive(Debug)]
pub struct GameSolver<'n> {
    exp: DigitalExplorer<'n>,
    threads: usize,
    flow: bool,
}

/// Internal: the explored game graph.
struct Graph {
    states: Vec<DigitalState>,
    index: HashMap<DigitalState, usize>,
    /// Per state: (move, successor index, controllable).
    moves: Vec<Vec<(DigitalMove, usize)>>,
    /// Per state: tick successor index.
    tick: Vec<Option<usize>>,
}

impl<'n> GameSolver<'n> {
    /// Creates a solver for the network (validating closedness).
    ///
    /// # Panics
    ///
    /// Panics if the network contains strict clock bounds; use
    /// [`GameSolver::try_new`] for the non-panicking API.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        Self::try_new(net).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a solver, returning a typed [`DigitalError`] (one
    /// diagnostic per strict clock bound) instead of panicking when the
    /// model is not closed.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] when any guard or invariant uses a
    /// strict bound, for which the digital-game semantics is not exact.
    pub fn try_new(net: &'n Network) -> Result<Self, DigitalError> {
        Ok(GameSolver {
            exp: DigitalExplorer::try_new(net)?,
            threads: 1,
            flow: true,
        })
    }

    /// Disables query-directed slicing, solving the game on the
    /// unreduced network. The verdict and winning region are identical
    /// either way — this switch exists for differential testing and
    /// measurement.
    #[must_use]
    pub fn without_flow(mut self) -> Self {
        self.flow = false;
        self
    }

    /// Statically checks a network before solving games on it: the lint
    /// rules of `tempo-lint` plus the digital-clocks closedness
    /// requirements of the game semantics. On success returns the
    /// non-blocking findings (warnings) for display.
    ///
    /// # Errors
    ///
    /// Returns a typed [`LintError`](tempo_lint::LintError) — never
    /// panics — when the model has error-level findings (or any
    /// finding under [`LintConfig::strict`](tempo_lint::LintConfig)).
    pub fn check_first(
        net: &Network,
        config: &tempo_lint::LintConfig,
    ) -> Result<tempo_lint::LintReport, tempo_lint::LintError> {
        let mut report = tempo_lint::check_network(net);
        if let Err(e) = DigitalExplorer::try_new(net) {
            let lint: tempo_lint::LintError = e.into();
            report.diagnostics.extend(lint.diagnostics);
        }
        report.into_result(config)
    }

    /// Sets the number of worker threads used by the fixpoint sweeps.
    ///
    /// The winning region is the unique fixpoint of the controllable
    /// predecessor, so verdict and strategy are identical at any thread
    /// count; `threads = 1` keeps the original sequential sweep.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the thread count from a shared [`ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// The configured number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Explores the game graph, charging the governor's state budget.
    /// Returns the (possibly truncated) graph and the frontier's
    /// high-water mark; on truncation the governor is left exhausted.
    fn build_graph(exp: &DigitalExplorer<'_>, gov: &Governor) -> (Graph, usize) {
        let mut graph = Graph {
            states: Vec::new(),
            index: HashMap::new(),
            moves: Vec::new(),
            tick: Vec::new(),
        };
        let mut peak = 0usize;
        if !gov.charge_state() {
            return (graph, peak);
        }
        let init = exp.initial_state();
        graph.index.insert(init.clone(), 0);
        graph.states.push(init);
        graph.moves.push(Vec::new());
        graph.tick.push(None);
        peak = 1;
        let mut frontier = vec![0_usize];
        'build: while let Some(i) = frontier.pop() {
            if !gov.check_time() {
                break;
            }
            let state = graph.states[i].clone();
            if let Some(next) = exp.tick(&state) {
                let Some(j) = intern(&mut graph, next, &mut frontier, gov) else {
                    break 'build;
                };
                graph.tick[i] = Some(j);
            }
            for (mv, next) in exp.moves(&state) {
                let Some(j) = intern(&mut graph, next, &mut frontier, gov) else {
                    break 'build;
                };
                graph.moves[i].push((mv, j));
            }
            peak = peak.max(frontier.len());
        }
        (graph, peak)
    }

    /// Query-directed slicing followed by active-clock reduction for one
    /// query: provably disabled edges change neither player's options
    /// (their guards are false in every reachable store), and clocks read
    /// by no remaining guard, invariant or property atom cannot influence
    /// enabledness, so the reduced game is bisimilar to the full one
    /// under clock projection. Returns the solving network, the mapped
    /// property, the projection for the [`Strategy`] (if any reduction
    /// happened) and the dataflow metrics.
    ///
    /// The per-location LU tick clamp of the cost engine is deliberately
    /// *not* used here: strategies are state-indexed artifacts that the
    /// independent witness checker replays against exact digital states,
    /// so coarsening the state abstraction would break the certificate's
    /// strategy lookups.
    fn reduced_for(
        &self,
        prop: &StateFormula,
    ) -> (
        tempo_ta::ClockReduction,
        StateFormula,
        Option<Vec<usize>>,
        FlowMetrics,
    ) {
        let mut metrics = FlowMetrics::default();
        let sliced = self.flow.then(|| tempo_ta::slice(self.exp.network()));
        let base: &Network = sliced.as_ref().map_or(self.exp.network(), |s| &s.net);
        if let Some(s) = &sliced {
            metrics.sliced_edges = s.disabled_edges;
            metrics.vars_narrowed = s.vars_narrowed;
            metrics.sliced_vars = s.dead_vars.len() as u64;
        }
        let reduction = base.reduced_with(&prop.clock_atoms());
        if let Some(s) = &sliced {
            if s.disabled_edges > 0 {
                let plain = self
                    .exp
                    .network()
                    .reduced_with(&prop.clock_atoms())
                    .removed()
                    .len();
                metrics.sliced_clocks = reduction.removed().len().saturating_sub(plain) as u64;
            }
        }
        if reduction.is_reduced() {
            let mapped = reduction
                .map_formula(prop)
                .expect("property atoms are kept alive by reduced_with");
            let proj = Some(reduction.kept());
            (reduction, mapped, proj, metrics)
        } else {
            (reduction, prop.clone(), None, metrics)
        }
    }

    fn game_report(
        &self,
        gov: &Governor,
        states: usize,
        peak: usize,
        sweeps: u64,
        dim: usize,
    ) -> RunReport {
        RunReport {
            states_explored: states as u64,
            states_stored: states as u64,
            peak_waiting: peak as u64,
            sweeps,
            runs_simulated: 0,
            dbm_dim: dim as u64,
            dbm_dim_model: self.exp.network().dim() as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        }
    }

    /// Solves the reachability game: the controller wins by eventually
    /// reaching a state satisfying `goal`, whatever the environment does.
    #[must_use]
    pub fn solve_reachability(&self, goal: &StateFormula) -> GameResult {
        self.solve_reachability_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// Solves the reachability game under a resource [`Budget`].
    ///
    /// The winning region grows monotonically from the goal (least
    /// fixpoint), so on iteration/wall-clock exhaustion the states ranked
    /// so far are *genuinely* winning: the partial strategy is sound, and
    /// if the initial state is already ranked the verdict is definitive
    /// (`Complete`). Exhaustion during graph exploration yields an empty
    /// strategy with `winning == false` ("not proven winning").
    pub fn solve_reachability_governed(
        &self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<GameResult> {
        let gov = budget.governor();
        let (reduction, goal, proj, metrics) = self.reduced_for(goal);
        let exp = DigitalExplorer::new(reduction.network());
        let dim = reduction.network().dim();
        let (graph, peak) = Self::build_graph(&exp, &gov);
        let n = graph.states.len();
        let mut sweeps = 0u64;
        if gov.is_exhausted() {
            let report = metrics.stamp(self.game_report(&gov, n, peak, sweeps, dim));
            return gov.finish(
                GameResult {
                    winning: false,
                    strategy: Strategy::default(),
                    states: n,
                },
                report,
            );
        }
        let is_goal: Vec<bool> = graph
            .states
            .iter()
            .map(|s| exp.satisfies(s, &goal))
            .collect();
        // Least fixpoint of the controllable predecessor, tracking the
        // round in which each state became winning (its *rank*); the
        // strategy moves to strictly smaller ranks, guaranteeing progress
        // toward the goal.
        let mut rank: Vec<Option<usize>> = is_goal
            .iter()
            .map(|&g| if g { Some(0) } else { None })
            .collect();
        let becomes_winning = |i: usize, rank: &[Option<usize>]| -> bool {
            if rank[i].is_some() {
                return false;
            }
            // All uncontrollable moves must stay in W.
            let safe_u = graph.moves[i]
                .iter()
                .filter(|(m, _)| !m.controllable)
                .all(|&(_, j)| rank[j].is_some());
            if !safe_u {
                return false;
            }
            let can_act = graph.moves[i]
                .iter()
                .any(|(m, j)| m.controllable && rank[*j].is_some());
            let can_wait = graph.tick[i].is_some_and(|j| rank[j].is_some());
            // If time is blocked and only uncontrollable moves exist,
            // the environment is forced to move (into W, by safe_u).
            let forced =
                graph.tick[i].is_none() && graph.moves[i].iter().any(|(m, _)| !m.controllable);
            can_act || can_wait || forced
        };
        let mut round = 0_usize;
        loop {
            if !gov.charge_iteration() || !gov.check_time() {
                break;
            }
            sweeps += 1;
            round += 1;
            // Each round scans a snapshot of `rank` and applies additions
            // afterwards, so chunking the scan across workers yields the
            // same ranks as the sequential sweep.
            let added: Vec<usize> = if self.threads > 1 {
                let ranges = chunk_ranges(n, self.threads);
                let rank_ref = &rank;
                run_workers(self.threads, |w| {
                    ranges[w]
                        .clone()
                        .filter(|&i| becomes_winning(i, rank_ref))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                (0..n).filter(|&i| becomes_winning(i, &rank)).collect()
            };
            if added.is_empty() {
                break;
            }
            for i in added {
                rank[i] = Some(round);
            }
        }
        let mut strategy = Strategy {
            moves: HashMap::new(),
            proj,
        };
        for i in 0..n {
            let Some(r) = rank[i] else { continue };
            if is_goal[i] {
                strategy
                    .moves
                    .insert(graph.states[i].clone(), StrategyMove::Wait);
                continue;
            }
            // Progress: move to a strictly smaller rank if a controllable
            // move offers one; otherwise wait (tick or forced environment
            // moves decrease the rank by construction).
            let act = graph.moves[i]
                .iter()
                .find(|(m, j)| m.controllable && rank[*j].is_some_and(|rj| rj < r));
            let mv = match act {
                Some((m, _)) => StrategyMove::Act(m.clone()),
                None => StrategyMove::Wait,
            };
            strategy.moves.insert(graph.states[i].clone(), mv);
        }
        let winning = rank.first().is_some_and(Option::is_some);
        let result = GameResult {
            winning,
            strategy,
            states: n,
        };
        let report = metrics.stamp(self.game_report(&gov, n, peak, sweeps, dim));
        if winning {
            // Ranked states are winning even under an interrupted least
            // fixpoint, so a ranked initial state is a definitive verdict.
            gov.finish_complete(result, report)
        } else {
            gov.finish(result, report)
        }
    }

    /// Solves the safety game: the controller wins by forever avoiding
    /// states satisfying `bad`.
    #[must_use]
    pub fn solve_safety(&self, bad: &StateFormula) -> GameResult {
        self.solve_safety_governed(bad, &Budget::unlimited())
            .into_value()
    }

    /// Solves the safety game under a resource [`Budget`].
    ///
    /// The safety fixpoint shrinks from above (greatest fixpoint), so an
    /// interrupted run only has an *over*-approximation of the winning
    /// region — claiming any state winning would be unsound. On
    /// exhaustion the partial result therefore has `winning == false` and
    /// an empty strategy: "no winning strategy proven within the budget".
    pub fn solve_safety_governed(
        &self,
        bad: &StateFormula,
        budget: &Budget,
    ) -> Outcome<GameResult> {
        let gov = budget.governor();
        let (reduction, bad, proj, metrics) = self.reduced_for(bad);
        let exp = DigitalExplorer::new(reduction.network());
        let dim = reduction.network().dim();
        let (graph, peak) = Self::build_graph(&exp, &gov);
        let n = graph.states.len();
        let mut sweeps = 0u64;
        if gov.is_exhausted() {
            let report = metrics.stamp(self.game_report(&gov, n, peak, sweeps, dim));
            return gov.finish(
                GameResult {
                    winning: false,
                    strategy: Strategy::default(),
                    states: n,
                },
                report,
            );
        }
        let mut winning: Vec<bool> = graph
            .states
            .iter()
            .map(|s| !exp.satisfies(s, &bad))
            .collect();
        // Greatest fixpoint: remove states the environment can force out
        // of W or where the controller cannot stay in W.
        let stays_winning = |i: usize, winning: &[bool]| -> bool {
            let safe_u = graph.moves[i]
                .iter()
                .filter(|(m, _)| !m.controllable)
                .all(|&(_, j)| winning[j]);
            // The controller must be able to stay in W when it has to
            // move: delay into W, fire a controllable move into W, or
            // rest in a state where neither time nor actions force an
            // exit (no tick and no moves: a quiescent state).
            let can_wait = graph.tick[i].is_some_and(|j| winning[j]);
            let can_act = graph.moves[i]
                .iter()
                .any(|(m, j)| m.controllable && winning[*j]);
            let quiescent = graph.tick[i].is_none() && graph.moves[i].is_empty();
            // Environment forced to move into W when time is blocked.
            let forced =
                graph.tick[i].is_none() && graph.moves[i].iter().any(|(m, _)| !m.controllable);
            safe_u && (can_wait || can_act || quiescent || forced)
        };
        if self.threads > 1 {
            // Jacobi-style sweeps: remove against a per-sweep snapshot of
            // W. The greatest fixpoint is unique, so this terminates on
            // the same winning region as the in-place sequential sweep.
            loop {
                if !gov.charge_iteration() || !gov.check_time() {
                    break;
                }
                sweeps += 1;
                let ranges = chunk_ranges(n, self.threads);
                let winning_ref = &winning;
                let removed: Vec<usize> = run_workers(self.threads, |w| {
                    ranges[w]
                        .clone()
                        .filter(|&i| winning_ref[i] && !stays_winning(i, winning_ref))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
                if removed.is_empty() {
                    break;
                }
                for i in removed {
                    winning[i] = false;
                }
            }
        } else {
            loop {
                if !gov.charge_iteration() || !gov.check_time() {
                    break;
                }
                sweeps += 1;
                let mut changed = false;
                for i in 0..n {
                    if winning[i] && !stays_winning(i, &winning) {
                        winning[i] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        if gov.is_exhausted() {
            // Interrupted greatest fixpoint: `winning` is only an
            // over-approximation; claim nothing.
            let report = metrics.stamp(self.game_report(&gov, n, peak, sweeps, dim));
            return gov.finish(
                GameResult {
                    winning: false,
                    strategy: Strategy::default(),
                    states: n,
                },
                report,
            );
        }
        let mut strategy = Strategy {
            moves: HashMap::new(),
            proj,
        };
        for i in 0..n {
            if !winning[i] {
                continue;
            }
            let mv = if graph.tick[i].is_some_and(|j| winning[j]) {
                StrategyMove::Wait
            } else if let Some((m, _)) = graph.moves[i]
                .iter()
                .find(|(m, j)| m.controllable && winning[*j])
            {
                StrategyMove::Act(m.clone())
            } else {
                StrategyMove::Wait
            };
            strategy.moves.insert(graph.states[i].clone(), mv);
        }
        let report = metrics.stamp(self.game_report(&gov, n, peak, sweeps, dim));
        gov.finish_complete(
            GameResult {
                winning: winning.first().copied().unwrap_or(false),
                strategy,
                states: n,
            },
            report,
        )
    }

    /// Simulates the closed loop "strategy controller against a
    /// worst-case-free environment" from the initial state for up to
    /// `max_steps` discrete steps, returning the visited states. The
    /// environment plays its uncontrollable moves eagerly (first enabled);
    /// used in tests and examples to exercise synthesized strategies.
    #[must_use]
    pub fn closed_loop(&self, strategy: &Strategy, max_steps: usize) -> Vec<DigitalState> {
        let mut state = self.exp.initial_state();
        let mut visited = vec![state.clone()];
        for _ in 0..max_steps {
            let Some(mv) = strategy.decide(&state) else {
                break;
            };
            let next = match mv {
                StrategyMove::Act(m) => self
                    .exp
                    .moves(&state)
                    .into_iter()
                    .find(|(cand, _)| cand == m)
                    .map(|(_, s)| s),
                StrategyMove::Wait => {
                    // Environment may act before the tick; play the first
                    // uncontrollable move if any, else tick.
                    let umove = self
                        .exp
                        .moves(&state)
                        .into_iter()
                        .find(|(m, _)| !m.controllable);
                    match umove {
                        Some((_, s)) => Some(s),
                        None => self.exp.tick(&state),
                    }
                }
            };
            match next {
                Some(s) => {
                    state = s;
                    visited.push(state.clone());
                }
                None => break,
            }
        }
        visited
    }
}

/// Splits `0..n` into `parts` contiguous index ranges of near-equal size.
fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let mut start = 0;
    split_budget(n, parts)
        .into_iter()
        .map(|len| {
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

fn intern(
    graph: &mut Graph,
    state: DigitalState,
    frontier: &mut Vec<usize>,
    gov: &Governor,
) -> Option<usize> {
    if let Some(&i) = graph.index.get(&state) {
        return Some(i);
    }
    if !gov.charge_state() {
        return None;
    }
    let i = graph.states.len();
    graph.index.insert(state.clone(), i);
    graph.states.push(state);
    graph.moves.push(Vec::new());
    graph.tick.push(None);
    frontier.push(i);
    Some(i)
}

impl tempo_obs::StableDigest for GameSolver<'_> {
    /// Structural fingerprint of the game: the underlying network (whose
    /// edge digests already include controllability) under a game tag,
    /// so the same network analyzed as a plain model and as a game never
    /// shares a cache slot. Thread count is excluded — synthesis is
    /// deterministic in the verdict.
    fn digest(&self, h: &mut tempo_obs::StableHasher) {
        h.write_tag("timed-game");
        self.exp.network().digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    /// A game: the controller must catch a window the environment opens.
    /// Env opens the door (uncontrollable) within 0..=2; controller may
    /// enter (controllable) only while the door is open (<= 1 time unit
    /// after opening, enforced with a clock).
    fn door_game() -> (Network, tempo_ta::AutomatonId, tempo_ta::LocationId) {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Door");
        let closed = a.location_with_invariant("Closed", vec![ClockAtom::le(x, 2)]);
        let open = a.location_with_invariant("Open", vec![ClockAtom::le(x, 1)]);
        let inside = a.location("Inside");
        let missed = a.location("Missed");
        a.edge(closed, open).reset(x, 0).uncontrollable().done();
        a.edge(open, inside).guard_clock(ClockAtom::le(x, 1)).done();
        a.edge(open, missed)
            .guard_clock(ClockAtom::ge(x, 1))
            .uncontrollable()
            .done();
        let aid = a.done();
        (b.build(), aid, inside)
    }

    #[test]
    fn reachability_game_winning() {
        let (net, aid, inside) = door_game();
        let solver = GameSolver::new(&net);
        let res = solver.solve_reachability(&StateFormula::at(aid, inside));
        assert!(
            res.winning,
            "controller can enter as soon as the door opens"
        );
        assert!(res.strategy.size() > 0);
    }

    #[test]
    fn reachability_game_losing() {
        // The environment can keep the controller out: entering requires
        // x >= 3 but the door closes (invariant) at 1.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Door");
        let open = a.location_with_invariant("Open", vec![ClockAtom::le(x, 1)]);
        let inside = a.location("Inside");
        let shut = a.location("Shut");
        a.edge(open, inside).guard_clock(ClockAtom::ge(x, 3)).done();
        a.edge(open, shut).uncontrollable().done();
        let aid = a.done();
        let net = b.build();
        let solver = GameSolver::new(&net);
        let res = solver.solve_reachability(&StateFormula::at(aid, inside));
        assert!(!res.winning);
    }

    #[test]
    fn safety_game() {
        // Controller must avoid Bad; the uncontrollable edge to Bad is
        // guarded by x >= 2, and the controller can reset x (self-loop)
        // whenever x >= 1.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let ok = a.location("Ok");
        let bad = a.location("Bad");
        a.edge(ok, bad)
            .guard_clock(ClockAtom::ge(x, 2))
            .uncontrollable()
            .done();
        a.edge(ok, ok)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        let aid = a.done();
        let net = b.build();
        let solver = GameSolver::new(&net);
        let res = solver.solve_safety(&StateFormula::at(aid, bad));
        assert!(res.winning, "reset x before it reaches 2");
        // Without the reset edge the controller loses.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let ok = a.location("Ok");
        let bad = a.location("Bad");
        a.edge(ok, bad)
            .guard_clock(ClockAtom::ge(x, 2))
            .uncontrollable()
            .done();
        let aid = a.done();
        let net = b.build();
        let solver = GameSolver::new(&net);
        let res = solver.solve_safety(&StateFormula::at(aid, bad));
        assert!(!res.winning);
        let _ = x;
    }

    #[test]
    fn closed_loop_reaches_goal() {
        let (net, aid, inside) = door_game();
        let solver = GameSolver::new(&net);
        let res = solver.solve_reachability(&StateFormula::at(aid, inside));
        let visited = solver.closed_loop(&res.strategy, 100);
        assert!(
            visited.iter().any(|s| s.locs[aid.index()] == inside),
            "closed loop must reach Inside"
        );
    }
}
