//! Refinement checking between timed I/O automata: the core of ECDAR
//! ("designed to check incrementally refinement and consistency between
//! component specifications", Bozga et al., DATE 2012, §II).
//!
//! `impl ≤ spec` (alternating timed simulation) holds iff, from related
//! states,
//!
//! * every **output** (and every delay) of the implementation can be
//!   matched by the specification, and
//! * every **input** of the specification can be matched by the
//!   implementation.
//!
//! Computed as a greatest fixpoint over the product of the digital-clock
//! graphs, which is exact for the closed specifications used here.

use crate::tioa::{IoDir, Tioa, TioaExplorer, TioaState};
use std::collections::{HashMap, HashSet, VecDeque};
use tempo_obs::{Budget, Governor, Outcome, RunReport};

/// [`RunReport`] for the product-graph engines of this module.
fn product_report(
    gov: &Governor,
    explored: usize,
    stored: usize,
    peak: usize,
    sweeps: u64,
) -> RunReport {
    RunReport {
        states_explored: explored as u64,
        states_stored: stored as u64,
        peak_waiting: peak as u64,
        sweeps,
        wall_time: gov.elapsed(),
        ..RunReport::default()
    }
}

/// A witness that refinement fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementError {
    /// Human-readable reason (which obligation failed and where).
    pub reason: String,
    /// Sequence of steps (action names, `tick`) from the initial pair to
    /// the failure.
    pub trace: Vec<String>,
}

impl std::fmt::Display for RefinementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after ⟨{}⟩", self.reason, self.trace.join(" "))
    }
}

/// Checks `imp ≤ spec` (alternating timed simulation on digital clocks).
///
/// Returns the shallowest failed obligation if refinement does not hold.
///
/// # Errors
///
/// Returns a [`RefinementError`] describing the violated obligation.
pub fn refines(imp: &Tioa, spec: &Tioa) -> Result<(), RefinementError> {
    refines_governed(imp, spec, &Budget::unlimited()).into_value()
}

/// Checks `imp ≤ spec` under a resource [`Budget`].
///
/// Product pairs are charged against the state budget and the fixpoint
/// rounds against the iteration budget. A refinement *error* found
/// within the budget is definitive (kills in the greatest fixpoint are
/// inductively justified); an exhausted budget yields `Ok(())` as the
/// partial answer, to be read as "no violation established", never as a
/// proof of refinement.
pub fn refines_governed(
    imp: &Tioa,
    spec: &Tioa,
    budget: &Budget,
) -> Outcome<Result<(), RefinementError>> {
    let gov = budget.governor();
    let ei = TioaExplorer::new(imp);
    let es = TioaExplorer::new(spec);
    // Collect the reachable product pairs (forward), then refine the
    // relation backwards (greatest fixpoint).
    let start = (ei.initial_state(), es.initial_state());
    let mut pairs: Vec<(TioaState, TioaState)> = Vec::new();
    let mut index: HashMap<(TioaState, TioaState), usize> = HashMap::new();
    let mut trace_to: Vec<(Option<usize>, String)> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut peak = 0_usize;
    let mut explored = 0_usize;
    if gov.charge_state() {
        index.insert(start.clone(), 0);
        pairs.push(start);
        trace_to.push((None, String::new()));
        queue.push_back(0);
        peak = 1;
    }

    // Product moves per pair: (label, list of successor pair indices the
    // *matching* side may choose from, obligation kind).
    #[derive(Debug)]
    enum Obligation {
        /// imp moves, spec must match (outputs, ticks).
        SpecMatches { label: String, choices: Vec<usize> },
        /// spec moves, imp must match (inputs).
        ImpMatches { label: String, choices: Vec<usize> },
    }
    let mut obligations: Vec<Vec<Obligation>> = Vec::new();

    let mut outputs: Vec<String> = imp.outputs().map(str::to_owned).collect();
    outputs.extend(spec.outputs().map(str::to_owned));
    outputs.sort_unstable();
    outputs.dedup();
    let mut inputs: Vec<String> = spec.inputs().map(str::to_owned).collect();
    inputs.extend(imp.inputs().map(str::to_owned));
    inputs.sort_unstable();
    inputs.dedup();

    // Interns a product pair. Charging may fail once the state budget is
    // exhausted; the pair is still interned (so obligation indices stay
    // consistent for the current parent) but the outer loop breaks at
    // its next pop, bounding the overshoot by one pair's out-degree —
    // and a truncated exploration skips the fixpoint entirely.
    let gov_ref = &gov;
    let intern = |pairs: &mut Vec<(TioaState, TioaState)>,
                  index: &mut HashMap<(TioaState, TioaState), usize>,
                  trace_to: &mut Vec<(Option<usize>, String)>,
                  queue: &mut VecDeque<usize>,
                  parent: usize,
                  label: &str,
                  p: (TioaState, TioaState)|
     -> usize {
        if let Some(&i) = index.get(&p) {
            return i;
        }
        let _ = gov_ref.charge_state();
        let i = pairs.len();
        index.insert(p.clone(), i);
        pairs.push(p);
        trace_to.push((Some(parent), label.to_owned()));
        queue.push_back(i);
        i
    };

    while let Some(pi) = queue.pop_front() {
        if gov.is_exhausted() || !gov.check_time() {
            break;
        }
        explored += 1;
        peak = peak.max(queue.len() + 1);
        let (si, ss) = pairs[pi].clone();
        let mut obs: Vec<Obligation> = Vec::new();
        // 1. Implementation outputs: spec must match.
        for o in &outputs {
            for si2 in ei.step(&si, o, IoDir::Output) {
                let choices: Vec<usize> = es
                    .step(&ss, o, IoDir::Output)
                    .into_iter()
                    .map(|ss2| {
                        intern(
                            &mut pairs,
                            &mut index,
                            &mut trace_to,
                            &mut queue,
                            pi,
                            &format!("{o}!"),
                            (si2.clone(), ss2),
                        )
                    })
                    .collect();
                obs.push(Obligation::SpecMatches {
                    label: format!("{o}!"),
                    choices,
                });
            }
        }
        // 2. Implementation delay: spec must delay too.
        if let Some(si2) = ei.tick(&si) {
            let choices: Vec<usize> = es
                .tick(&ss)
                .into_iter()
                .map(|ss2| {
                    intern(
                        &mut pairs,
                        &mut index,
                        &mut trace_to,
                        &mut queue,
                        pi,
                        "tick",
                        (si2.clone(), ss2),
                    )
                })
                .collect();
            obs.push(Obligation::SpecMatches {
                label: "tick".to_owned(),
                choices,
            });
        }
        // 3. Specification inputs: imp must accept.
        for i in &inputs {
            for ss2 in es.step(&ss, i, IoDir::Input) {
                let choices: Vec<usize> = ei
                    .step(&si, i, IoDir::Input)
                    .into_iter()
                    .map(|si2| {
                        intern(
                            &mut pairs,
                            &mut index,
                            &mut trace_to,
                            &mut queue,
                            pi,
                            &format!("{i}?"),
                            (si2, ss2.clone()),
                        )
                    })
                    .collect();
                obs.push(Obligation::ImpMatches {
                    label: format!("{i}?"),
                    choices,
                });
            }
        }
        obligations.push(obs);
        debug_assert_eq!(obligations.len(), pi + 1);
    }

    let mut sweeps = 0_u64;
    if gov.is_exhausted() {
        // Truncated product graph: obligation choice lists may be
        // missing genuine matching moves, so running the fixpoint could
        // fabricate spurious failures. Claim nothing.
        let report = product_report(&gov, explored, pairs.len(), peak, sweeps);
        return gov.finish(Ok(()), report);
    }

    // Greatest fixpoint: drop pairs with an unmatchable obligation.
    let n = pairs.len();
    let mut alive: Vec<bool> = vec![true; n];
    // failure: reason plus whether it is *primary* (the matching side has
    // no candidate move at all) or propagated (all candidates died).
    let mut failure: Vec<Option<(String, bool)>> = vec![None; n];
    loop {
        if !gov.charge_iteration() || !gov.check_time() {
            break;
        }
        sweeps += 1;
        let mut changed = false;
        for pi in 0..n {
            if !alive[pi] {
                continue;
            }
            for ob in &obligations[pi] {
                let (label, choices, who) = match ob {
                    Obligation::SpecMatches { label, choices } => {
                        (label, choices, "specification cannot match")
                    }
                    Obligation::ImpMatches { label, choices } => {
                        (label, choices, "implementation cannot match")
                    }
                };
                if !choices.iter().any(|&c| alive[c]) {
                    alive[pi] = false;
                    failure[pi] = Some((format!("{who} {label}"), choices.is_empty()));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let report = product_report(&gov, explored, pairs.len(), peak, sweeps);
    if alive[0] {
        // An interrupted greatest fixpoint only over-approximates the
        // refinement relation, so a still-alive initial pair proves
        // nothing when the budget tripped; `finish` keeps the claim
        // partial in that case.
        return gov.finish(Ok(()), report);
    }
    // Report the shallowest *primary* failure (an obligation with no
    // candidate at all); propagated failures merely echo deeper causes.
    let mut best: Option<usize> = None;
    for pi in 0..n {
        if let Some((_, primary)) = &failure[pi] {
            let better = match best {
                None => true,
                Some(b) => {
                    let (_, best_primary) = failure[b].as_ref().expect("failed");
                    match (primary, best_primary) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => trace_depth(&trace_to, pi) < trace_depth(&trace_to, b),
                    }
                }
            };
            if better {
                best = Some(pi);
            }
        }
    }
    let pi = best.expect("initial pair failed, so some pair has a failure");
    let mut steps = Vec::new();
    let mut cur = pi;
    while let (Some(parent), label) = &trace_to[cur] {
        steps.push(label.clone());
        cur = *parent;
    }
    steps.reverse();
    // Kills are inductively justified even mid-fixpoint: a dead initial
    // pair is a definitive counterexample regardless of the budget.
    gov.finish_complete(
        Err(RefinementError {
            reason: failure[pi].clone().expect("selected pair failed").0,
            trace: steps,
        }),
        report,
    )
}

fn trace_depth(trace_to: &[(Option<usize>, String)], mut i: usize) -> usize {
    let mut d = 0;
    while let (Some(p), _) = &trace_to[i] {
        d += 1;
        i = *p;
    }
    d
}

/// Consistency: a specification is consistent iff no reachable state is
/// *immediately inconsistent* — time blocked by the invariant with no
/// enabled output to escape (the component would violate its own
/// contract). Returns the offending state if any.
#[must_use]
pub fn find_inconsistency(spec: &Tioa) -> Option<TioaState> {
    find_inconsistency_governed(spec, &Budget::unlimited()).into_value()
}

/// Consistency search under a resource [`Budget`]: an inconsistent state
/// found within the budget is definitive; exhaustion yields `None` as
/// the partial answer ("no inconsistency found in the explored part").
pub fn find_inconsistency_governed(spec: &Tioa, budget: &Budget) -> Outcome<Option<TioaState>> {
    let gov = budget.governor();
    let exp = TioaExplorer::new(spec);
    let mut seen: HashSet<TioaState> = HashSet::new();
    let mut queue: VecDeque<TioaState> = VecDeque::new();
    let mut peak = 0_usize;
    let mut explored = 0_usize;
    if gov.charge_state() {
        let init = exp.initial_state();
        seen.insert(init.clone());
        queue.push_back(init);
        peak = 1;
    }
    'explore: while let Some(s) = queue.pop_front() {
        if !gov.check_time() {
            break;
        }
        explored += 1;
        let tick = exp.tick(&s);
        let enabled = exp.enabled(&s);
        let has_output = enabled.iter().any(|(_, d)| *d == IoDir::Output);
        if tick.is_none() && !has_output {
            let report = product_report(&gov, explored, seen.len(), peak, 0);
            return gov.finish_complete(Some(s), report);
        }
        if let Some(next) = tick {
            if !seen.contains(&next) {
                if !gov.charge_state() {
                    break 'explore;
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
        for (a, d) in enabled {
            for next in exp.step(&s, &a, d) {
                if !seen.contains(&next) {
                    if !gov.charge_state() {
                        break 'explore;
                    }
                    seen.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
        peak = peak.max(queue.len());
    }
    let report = product_report(&gov, explored, seen.len(), peak, 0);
    gov.finish(None, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tioa::{TioaAtom, TioaBuilder};

    /// Spec: after coin?, emit coffee! within [2, 5].
    fn spec() -> Tioa {
        let mut b = TioaBuilder::new("Spec");
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 5)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.output(busy, idle, "coffee")
            .guard(TioaAtom::ge(x, 2))
            .done();
        b.build()
    }

    /// A faster machine: coffee within [2, 3]. Refines the spec (its
    /// output timing window is contained in the spec's).
    fn fast_impl() -> Tioa {
        let mut b = TioaBuilder::new("Fast");
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 3)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.output(busy, idle, "coffee")
            .guard(TioaAtom::ge(x, 2))
            .done();
        b.build()
    }

    /// An eager machine that may emit coffee immediately (x >= 0):
    /// violates the spec's lower bound of 2.
    fn eager_impl() -> Tioa {
        let mut b = TioaBuilder::new("Eager");
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 3)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.output(busy, idle, "coffee").done();
        b.build()
    }

    /// A machine that refuses the coin input.
    fn deaf_impl() -> Tioa {
        let mut b = TioaBuilder::new("Deaf");
        let _x = b.clock("x");
        let idle = b.location("Idle");
        let _ = idle;
        b.build()
    }

    #[test]
    fn reflexive() {
        assert!(refines(&spec(), &spec()).is_ok());
    }

    #[test]
    fn tighter_timing_refines() {
        assert!(refines(&fast_impl(), &spec()).is_ok());
        // The converse fails: the spec may emit at 5, which Fast cannot
        // even reach (its invariant blocks delay at 3) — but outputs are
        // checked on the *implementation* side, so Spec ≤ Fast fails
        // because Spec can output at 4 while Fast no longer matches.
        let err = refines(&spec(), &fast_impl()).unwrap_err();
        assert!(err.reason.contains("cannot match"), "{err}");
    }

    #[test]
    fn early_output_caught() {
        let err = refines(&eager_impl(), &spec()).unwrap_err();
        assert!(err.reason.contains("coffee!"), "{err}");
        assert_eq!(err.trace, vec!["coin?"]);
    }

    #[test]
    fn missing_input_caught() {
        let err = refines(&deaf_impl(), &spec()).unwrap_err();
        assert!(err.reason.contains("coin?"), "{err}");
    }

    #[test]
    fn consistency() {
        assert!(find_inconsistency(&spec()).is_none());
        // Invariant forces time to stop with no output: inconsistent.
        let mut b = TioaBuilder::new("Stuck");
        let x = b.clock("x");
        let l = b.location_with_invariant("L", vec![TioaAtom::le(x, 1)]);
        let _ = l;
        let bad = b.build();
        let s = find_inconsistency(&bad).expect("timelock with no output");
        assert_eq!(s.clocks[1], 1);
    }

    #[test]
    fn extra_inputs_in_impl_are_fine() {
        // The implementation accepts more inputs than the spec requires.
        let mut b = TioaBuilder::new("Generous");
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 5)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.input(idle, idle, "token").done();
        b.output(busy, idle, "coffee")
            .guard(TioaAtom::ge(x, 2))
            .done();
        let generous = b.build();
        assert!(refines(&generous, &spec()).is_ok());
    }
}
