//! # tempo-ecdar — compositional development with timed I/O automata
//!
//! The ECDAR member of the UPPAAL family (Bozga et al., DATE 2012, §II):
//! "a variant of UPPAAL supporting compositional development … designed
//! to check incrementally refinement and consistency between component
//! specifications given as timed automata. Also, the tool allows for
//! structural and logical composition of specifications."
//!
//! * [`Tioa`] — timed input/output automata (specifications with
//!   input/output-partitioned alphabets), built with [`TioaBuilder`];
//! * [`refines`] — alternating timed simulation `impl ≤ spec` with
//!   counterexample traces;
//! * [`find_inconsistency`] — consistency checking (no reachable state
//!   where the invariant blocks time with no output available);
//! * [`parallel`] / [`conjunction`] — structural and logical composition.
//!
//! ## Example: incremental development
//!
//! ```
//! use tempo_ecdar::{TioaBuilder, TioaAtom, refines, parallel};
//!
//! // Abstract contract: respond within 10.
//! let mut c = TioaBuilder::new("Contract");
//! let t = c.clock("t");
//! let i = c.location("I");
//! let p = c.location_with_invariant("P", vec![TioaAtom::le(t, 10)]);
//! c.input(i, p, "req").reset(t).done();
//! c.output(p, i, "resp").done();
//! let contract = c.build();
//!
//! // Concrete component: respond within [1, 4].
//! let mut m = TioaBuilder::new("Impl");
//! let x = m.clock("x");
//! let i = m.location("I");
//! let p = m.location_with_invariant("P", vec![TioaAtom::le(x, 4)]);
//! m.input(i, p, "req").reset(x).done();
//! m.output(p, i, "resp").guard(TioaAtom::ge(x, 1)).done();
//! let imp = m.build();
//!
//! assert!(refines(&imp, &contract).is_ok());
//! # let _ = parallel(&imp, &contract);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod digest;
mod refine;
mod tioa;

pub use compose::{conjunction, parallel, ComposeError};
pub use refine::{
    find_inconsistency, find_inconsistency_governed, refines, refines_governed, RefinementError,
};
pub use tioa::{
    IoDir, Tioa, TioaAtom, TioaBuilder, TioaEdge, TioaEdgeBuilder, TioaExplorer, TioaLocation,
    TioaState,
};
