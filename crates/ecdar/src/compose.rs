//! Structural and logical composition of timed I/O automata — the two
//! composition operators the paper attributes to ECDAR ("the tool allows
//! for structural and logical composition of specifications").
//!
//! * [`parallel`] (`A ∥ B`): structural composition. Shared actions
//!   synchronize (an output on either side makes the composite action an
//!   output); others interleave. Requires disjoint output alphabets.
//! * [`conjunction`] (`A ∧ B`): logical composition. Both specifications
//!   constrain the same component, so every action synchronizes; the
//!   result allows exactly the behaviour permitted by both.

use crate::tioa::{IoDir, Tioa, TioaAtom, TioaEdge, TioaLocation};
use std::collections::HashSet;
use tempo_dbm::Clock;

/// An error raised by a composition operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// `parallel` requires disjoint output alphabets.
    OutputClash {
        /// The offending action.
        action: String,
    },
    /// `conjunction` requires the action to have the same direction in
    /// both operands.
    DirectionClash {
        /// The offending action.
        action: String,
    },
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::OutputClash { action } => {
                write!(f, "both components output {action}")
            }
            ComposeError::DirectionClash { action } => {
                write!(f, "{action} has different directions in the operands")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

fn offset_atom(a: &TioaAtom, offset: usize) -> TioaAtom {
    TioaAtom {
        clock: Clock(a.clock.index() + offset),
        upper: a.upper,
        bound: a.bound,
    }
}

fn offset_edge_clocks(e: &TioaEdge, offset: usize) -> (Vec<TioaAtom>, Vec<Clock>) {
    (
        e.guard.iter().map(|a| offset_atom(a, offset)).collect(),
        e.resets.iter().map(|c| Clock(c.index() + offset)).collect(),
    )
}

/// Structural (parallel) composition `a ∥ b`.
///
/// # Errors
///
/// Returns [`ComposeError::OutputClash`] if the output alphabets overlap.
pub fn parallel(a: &Tioa, b: &Tioa) -> Result<Tioa, ComposeError> {
    let a_out: HashSet<&str> = a.outputs().collect();
    let b_out: HashSet<&str> = b.outputs().collect();
    if let Some(action) = a_out.intersection(&b_out).next() {
        return Err(ComposeError::OutputClash {
            action: (*action).to_owned(),
        });
    }
    let a_alpha: HashSet<&str> = a.inputs().chain(a.outputs()).collect();
    let b_alpha: HashSet<&str> = b.inputs().chain(b.outputs()).collect();
    let shared: HashSet<String> = a_alpha
        .intersection(&b_alpha)
        .map(|s| (*s).to_owned())
        .collect();
    Ok(product(a, b, &|action: &str,
                       da: Option<IoDir>,
                       db: Option<IoDir>| {
        if shared.contains(action) {
            // Synchronized: both sides must move; the composite direction
            // is Output if either side outputs (input-output sync), else
            // Input (input-input sync).
            match (da, db) {
                (Some(x), Some(y)) => {
                    let dir = if x == IoDir::Output || y == IoDir::Output {
                        IoDir::Output
                    } else {
                        IoDir::Input
                    };
                    SyncKind::Joint(dir)
                }
                _ => SyncKind::Blocked,
            }
        } else {
            SyncKind::Interleave
        }
    }))
}

/// Logical composition (conjunction) `a ∧ b`: both operands constrain the
/// same interface, every action synchronizes.
///
/// # Errors
///
/// Returns [`ComposeError::DirectionClash`] if an action is an input in
/// one operand and an output in the other.
pub fn conjunction(a: &Tioa, b: &Tioa) -> Result<Tioa, ComposeError> {
    // Validate directions agree on the shared alphabet.
    for action in a.inputs() {
        if b.outputs().any(|o| o == action) {
            return Err(ComposeError::DirectionClash {
                action: action.to_owned(),
            });
        }
    }
    for action in a.outputs() {
        if b.inputs().any(|i| i == action) {
            return Err(ComposeError::DirectionClash {
                action: action.to_owned(),
            });
        }
    }
    Ok(product(a, b, &|_action, da, db| match (da, db) {
        (Some(x), Some(_)) => SyncKind::Joint(x),
        // An action only one operand knows: the conjunction still allows
        // it (the other operand is indifferent), moving one side only.
        _ => SyncKind::Interleave,
    }))
}

enum SyncKind {
    Joint(IoDir),
    Interleave,
    Blocked,
}

/// How an action with the given directions in each operand composes.
type SyncPolicy<'a> = dyn Fn(&str, Option<IoDir>, Option<IoDir>) -> SyncKind + 'a;

/// Generic synchronous product. `policy(action, dir_in_a, dir_in_b)`
/// decides how each action composes.
fn product(a: &Tioa, b: &Tioa, policy: &SyncPolicy<'_>) -> Tioa {
    let offset = a.dim() - 1;
    let dir_in = |t: &Tioa, action: &str| -> Option<IoDir> {
        t.edges().iter().find(|e| e.action == action).map(|e| e.dir)
    };
    let mut locations = Vec::new();
    for la in a.locations() {
        for lb in b.locations() {
            let mut invariant = la.invariant.clone();
            invariant.extend(lb.invariant.iter().map(|at| offset_atom(at, offset)));
            locations.push(TioaLocation {
                name: format!("{}|{}", la.name, lb.name),
                invariant,
            });
        }
    }
    let nb = b.locations().len();
    let loc = |ia: usize, ib: usize| ia * nb + ib;
    let mut edges = Vec::new();
    let mut alphabet: Vec<String> = a
        .edges()
        .iter()
        .chain(b.edges())
        .map(|e| e.action.clone())
        .collect();
    alphabet.sort_unstable();
    alphabet.dedup();
    for action in &alphabet {
        let da = dir_in(a, action);
        let db = dir_in(b, action);
        match policy(action, da, db) {
            SyncKind::Blocked => {}
            SyncKind::Joint(dir) => {
                for ea in a.edges().iter().filter(|e| &e.action == action) {
                    for eb in b.edges().iter().filter(|e| &e.action == action) {
                        let (bg, br) = offset_edge_clocks(eb, offset);
                        let mut guard = ea.guard.clone();
                        guard.extend(bg);
                        let mut resets = ea.resets.clone();
                        resets.extend(br);
                        edges.push(TioaEdge {
                            from: loc(ea.from, eb.from),
                            to: loc(ea.to, eb.to),
                            action: action.clone(),
                            dir,
                            guard,
                            resets,
                        });
                    }
                }
            }
            SyncKind::Interleave => {
                for ea in a.edges().iter().filter(|e| &e.action == action) {
                    for ib in 0..nb {
                        edges.push(TioaEdge {
                            from: loc(ea.from, ib),
                            to: loc(ea.to, ib),
                            action: action.clone(),
                            dir: ea.dir,
                            guard: ea.guard.clone(),
                            resets: ea.resets.clone(),
                        });
                    }
                }
                for eb in b.edges().iter().filter(|e| &e.action == action) {
                    let (bg, br) = offset_edge_clocks(eb, offset);
                    for ia in 0..a.locations().len() {
                        edges.push(TioaEdge {
                            from: loc(ia, eb.from),
                            to: loc(ia, eb.to),
                            action: action.clone(),
                            dir: eb.dir,
                            guard: bg.clone(),
                            resets: br.clone(),
                        });
                    }
                }
            }
        }
    }
    let mut clock_names: Vec<String> = (1..a.dim()).map(|i| format!("{}.x{i}", a.name())).collect();
    clock_names.extend((1..b.dim()).map(|i| format!("{}.x{i}", b.name())));
    Tioa {
        name: format!("({} | {})", a.name(), b.name()),
        clock_names,
        locations,
        edges,
        initial: loc(a.initial(), b.initial()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::{find_inconsistency, refines};
    use crate::tioa::TioaBuilder;

    /// A machine that accepts coin? and emits brew!.
    fn machine() -> Tioa {
        let mut b = TioaBuilder::new("M");
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 4)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.output(busy, idle, "brew")
            .guard(TioaAtom::ge(x, 1))
            .done();
        b.build()
    }

    /// A logger that listens to brew? and emits log!.
    fn logger() -> Tioa {
        let mut b = TioaBuilder::new("L");
        let y = b.clock("y");
        let wait = b.location("Wait");
        let note = b.location_with_invariant("Note", vec![TioaAtom::le(y, 2)]);
        b.input(wait, note, "brew").reset(y).done();
        b.output(note, wait, "log").done();
        b.build()
    }

    #[test]
    fn parallel_synchronizes_shared_actions() {
        let sys = parallel(&machine(), &logger()).expect("compatible");
        // brew is shared (M output, L input) → composite output.
        let brew = sys.edges().iter().find(|e| e.action == "brew").unwrap();
        assert_eq!(brew.dir, IoDir::Output);
        // coin only in M → interleaved input, one copy per L location.
        let coins = sys.edges().iter().filter(|e| e.action == "coin").count();
        assert_eq!(coins, logger().locations().len());
        assert_eq!(sys.dim(), 3, "clock sets are disjointly united");
        assert!(find_inconsistency(&sys).is_none());
    }

    #[test]
    fn parallel_rejects_output_clash() {
        let err = parallel(&machine(), &machine()).unwrap_err();
        assert!(matches!(err, ComposeError::OutputClash { .. }));
    }

    #[test]
    fn conjunction_takes_tightest_timing() {
        // Spec A: brew within [1, 4]; Spec B: brew within [2, 6].
        let spec_b = {
            let mut b = TioaBuilder::new("B");
            let x = b.clock("x");
            let idle = b.location("Idle");
            let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 6)]);
            b.input(idle, busy, "coin").reset(x).done();
            b.output(busy, idle, "brew")
                .guard(TioaAtom::ge(x, 2))
                .done();
            b.build()
        };
        let both = conjunction(&machine(), &spec_b).expect("same directions");
        // The conjunction allows brew only in [2, 4]: it refines both.
        assert!(refines(&both, &machine()).is_ok());
        assert!(refines(&both, &spec_b).is_ok());
        // And neither original refines the conjunction (each allows
        // behaviour the other forbids).
        assert!(refines(&machine(), &both).is_err());
    }

    #[test]
    fn conjunction_rejects_direction_clash() {
        let err = conjunction(&machine(), &logger()).unwrap_err();
        assert!(matches!(err, ComposeError::DirectionClash { action } if action == "brew"));
    }

    #[test]
    fn composed_system_refines_a_coarser_contract() {
        // Contract: after coin?, a log! eventually (within 6) — expressed
        // as a TIOA over the composite's externally visible actions.
        let contract = {
            let mut b = TioaBuilder::new("Contract");
            let t = b.clock("t");
            let idle = b.location("Idle");
            let pending = b.location_with_invariant("Pending", vec![TioaAtom::le(t, 6)]);
            b.input(idle, pending, "coin").reset(t).done();
            b.output(pending, pending, "brew").done();
            b.output(pending, idle, "log").done();
            b.build()
        };
        let sys = parallel(&machine(), &logger()).expect("compatible");
        assert!(
            refines(&sys, &contract).is_ok(),
            "machine ∥ logger meets the end-to-end deadline contract"
        );
    }
}
