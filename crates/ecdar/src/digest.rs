//! Stable structural fingerprints for TIOA specifications.
//!
//! Lets the analysis service key its verdict cache by specification
//! content: two builds of the same TIOA fingerprint identically, and
//! renaming the automaton, its locations or its clocks does not change
//! the fingerprint (names are diagnostics; refinement depends only on
//! structure). Action names *do* hash — they are the synchronisation
//! alphabet, so renaming an action changes which behaviours refine.
//! Invariant and guard conjunctions fold commutatively; locations and
//! edges hash in order because indices are the identity the automaton
//! refers to.

use crate::tioa::{IoDir, Tioa, TioaAtom, TioaEdge, TioaLocation};
use tempo_obs::{Fingerprint, StableDigest, StableHasher};

impl StableDigest for TioaAtom {
    fn digest(&self, h: &mut StableHasher) {
        h.write_usize(self.clock.index());
        h.write_bool(self.upper);
        h.write_i64(self.bound);
    }
}

impl StableDigest for TioaEdge {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("tioa-edge");
        h.write_usize(self.from);
        h.write_usize(self.to);
        h.write_str(&self.action);
        h.write_u8(match self.dir {
            IoDir::Input => 0,
            IoDir::Output => 1,
        });
        // A guard is a conjunction: reordering its atoms preserves the
        // edge's semantics. Resets all write zero, so order (and even
        // duplicates) cannot matter either.
        h.write_unordered(self.guard.iter().map(Fingerprint::of));
        h.write_unordered(self.resets.iter().map(|c| {
            let mut rh = StableHasher::new();
            rh.write_usize(c.index());
            rh.finish()
        }));
    }
}

impl StableDigest for TioaLocation {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("tioa-location");
        h.write_unordered(self.invariant.iter().map(Fingerprint::of));
    }
}

impl StableDigest for Tioa {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("tioa");
        // Clocks are identified by index; only their count is structure.
        h.write_usize(self.clock_names.len());
        self.locations.digest(h);
        self.edges.digest(h);
        h.write_usize(self.initial);
    }
}

#[cfg(test)]
mod tests {
    use crate::{TioaAtom, TioaBuilder};
    use tempo_obs::Fingerprint;

    fn machine(name: &str, deadline: i64) -> crate::Tioa {
        let mut b = TioaBuilder::new(name);
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, deadline)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.output(busy, idle, "coffee")
            .guard(TioaAtom::ge(x, 2))
            .done();
        b.build()
    }

    #[test]
    fn renaming_preserves_fingerprint_but_bounds_do_not() {
        assert_eq!(
            Fingerprint::of(&machine("Machine", 5)),
            Fingerprint::of(&machine("Renamed", 5))
        );
        assert_ne!(
            Fingerprint::of(&machine("Machine", 5)),
            Fingerprint::of(&machine("Machine", 6))
        );
    }

    #[test]
    fn action_names_and_directions_are_structure() {
        let build = |action: &str, output: bool| {
            let mut b = TioaBuilder::new("M");
            let l = b.location("L");
            if output {
                b.output(l, l, action).done();
            } else {
                b.input(l, l, action).done();
            }
            b.build()
        };
        assert_ne!(
            Fingerprint::of(&build("a", true)),
            Fingerprint::of(&build("b", true))
        );
        assert_ne!(
            Fingerprint::of(&build("a", true)),
            Fingerprint::of(&build("a", false))
        );
    }
}
