//! Timed input/output automata: the specifications of the ECDAR
//! specification theory (David, Larsen, Legay, Nyman, Wąsowski,
//! HSCC 2010; surveyed in Bozga et al., DATE 2012, §II).
//!
//! A TIOA partitions its actions into *inputs* (controlled by the
//! environment) and *outputs* (controlled by the component). Unlike the
//! networks of `tempo-ta`, a TIOA is a single open component: its actions
//! fire against an unknown environment, which is what refinement and
//! composition quantify over.

use std::collections::BTreeMap;
use std::fmt;
use tempo_dbm::{Bound, Clock};

/// Direction of an action, from the component's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IoDir {
    /// Received from the environment (`a?`).
    Input,
    /// Emitted by the component (`a!`).
    Output,
}

/// A clock constraint `x ≺ c` or `x ≽ c` (single-clock atoms; TIOA
/// specifications in the ECDAR literature are diagonal-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TioaAtom {
    /// The constrained clock.
    pub clock: Clock,
    /// `true` for upper bounds (`x ≺ c`), `false` for lower (`x ≽ c`).
    pub upper: bool,
    /// The bound; must be non-strict (closed specs, so the digital
    /// semantics is exact).
    pub bound: i64,
}

impl TioaAtom {
    /// `x ≤ c`.
    #[must_use]
    pub fn le(clock: Clock, bound: i64) -> Self {
        TioaAtom {
            clock,
            upper: true,
            bound,
        }
    }

    /// `x ≥ c`.
    #[must_use]
    pub fn ge(clock: Clock, bound: i64) -> Self {
        TioaAtom {
            clock,
            upper: false,
            bound,
        }
    }

    /// Whether the integer valuation satisfies the atom.
    #[must_use]
    pub fn satisfied_by(&self, clocks: &[i64]) -> bool {
        let v = clocks[self.clock.index()];
        if self.upper {
            v <= self.bound
        } else {
            v >= self.bound
        }
    }

    /// The equivalent [`Bound`]-style rendering (for diagnostics).
    #[must_use]
    pub fn as_bound(&self) -> Bound {
        if self.upper {
            Bound::le(self.bound)
        } else {
            Bound::le(-self.bound)
        }
    }
}

/// An edge of a TIOA.
#[derive(Debug, Clone, PartialEq)]
pub struct TioaEdge {
    /// Source location index.
    pub from: usize,
    /// Target location index.
    pub to: usize,
    /// Action name.
    pub action: String,
    /// Input or output.
    pub dir: IoDir,
    /// Conjunction of clock atoms guarding the edge.
    pub guard: Vec<TioaAtom>,
    /// Clocks reset to `0`.
    pub resets: Vec<Clock>,
}

/// A location of a TIOA.
#[derive(Debug, Clone, PartialEq)]
pub struct TioaLocation {
    /// Name for diagnostics.
    pub name: String,
    /// Invariant atoms (upper bounds force outputs before deadlines).
    pub invariant: Vec<TioaAtom>,
}

/// A timed input/output automaton.
///
/// Build with [`TioaBuilder`]:
///
/// ```
/// use tempo_ecdar::{TioaBuilder, TioaAtom};
/// let mut b = TioaBuilder::new("Machine");
/// let x = b.clock("x");
/// let idle = b.location("Idle");
/// let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 5)]);
/// b.input(idle, busy, "coin").reset(x).done();
/// b.output(busy, idle, "coffee").guard(TioaAtom::ge(x, 2)).done();
/// let machine = b.build();
/// assert_eq!(machine.inputs().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tioa {
    pub(crate) name: String,
    pub(crate) clock_names: Vec<String>,
    pub(crate) locations: Vec<TioaLocation>,
    pub(crate) edges: Vec<TioaEdge>,
    pub(crate) initial: usize,
}

impl Tioa {
    /// The specification's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// DBM-style dimension: clocks + the reference clock.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.clock_names.len() + 1
    }

    /// The locations.
    #[must_use]
    pub fn locations(&self) -> &[TioaLocation] {
        &self.locations
    }

    /// The edges.
    #[must_use]
    pub fn edges(&self) -> &[TioaEdge] {
        &self.edges
    }

    /// The initial location index.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Distinct input action names.
    pub fn inputs(&self) -> impl Iterator<Item = &str> + '_ {
        let mut names: Vec<&str> = self
            .edges
            .iter()
            .filter(|e| e.dir == IoDir::Input)
            .map(|e| e.action.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.into_iter()
    }

    /// Distinct output action names.
    pub fn outputs(&self) -> impl Iterator<Item = &str> + '_ {
        let mut names: Vec<&str> = self
            .edges
            .iter()
            .filter(|e| e.dir == IoDir::Output)
            .map(|e| e.action.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.into_iter()
    }

    /// The largest constant, for digital-clock clamping.
    #[must_use]
    pub fn max_constant(&self) -> i64 {
        self.locations
            .iter()
            .flat_map(|l| l.invariant.iter())
            .chain(self.edges.iter().flat_map(|e| e.guard.iter()))
            .map(|a| a.bound)
            .max()
            .unwrap_or(0)
    }
}

/// A concrete digital state of one TIOA: location + integer clocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TioaState {
    /// Location index.
    pub loc: usize,
    /// Clock values (index 0 is the reference clock, always 0), clamped.
    pub clocks: Vec<i64>,
}

/// Digital-clocks explorer for a single TIOA.
#[derive(Debug)]
pub struct TioaExplorer<'t> {
    tioa: &'t Tioa,
    clamp: i64,
}

impl<'t> TioaExplorer<'t> {
    /// Creates an explorer (clocks clamp one above the max constant).
    #[must_use]
    pub fn new(tioa: &'t Tioa) -> Self {
        TioaExplorer {
            clamp: tioa.max_constant() + 1,
            tioa,
        }
    }

    /// The initial state.
    #[must_use]
    pub fn initial_state(&self) -> TioaState {
        TioaState {
            loc: self.tioa.initial,
            clocks: vec![0; self.tioa.dim()],
        }
    }

    fn invariant_holds(&self, loc: usize, clocks: &[i64]) -> bool {
        self.tioa.locations[loc]
            .invariant
            .iter()
            .all(|a| a.satisfied_by(clocks))
    }

    /// The unit-delay successor, if the invariant permits it.
    #[must_use]
    pub fn tick(&self, s: &TioaState) -> Option<TioaState> {
        let ticked: Vec<i64> = s
            .clocks
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == 0 { 0 } else { (c + 1).min(self.clamp) })
            .collect();
        self.invariant_holds(s.loc, &ticked).then_some(TioaState {
            loc: s.loc,
            clocks: ticked,
        })
    }

    /// Successors of `s` on action `(name, dir)`.
    #[must_use]
    pub fn step(&self, s: &TioaState, action: &str, dir: IoDir) -> Vec<TioaState> {
        self.tioa
            .edges
            .iter()
            .filter(|e| {
                e.from == s.loc
                    && e.action == action
                    && e.dir == dir
                    && e.guard.iter().all(|a| a.satisfied_by(&s.clocks))
            })
            .filter_map(|e| {
                let mut clocks = s.clocks.clone();
                for c in &e.resets {
                    clocks[c.index()] = 0;
                }
                self.invariant_holds(e.to, &clocks)
                    .then_some(TioaState { loc: e.to, clocks })
            })
            .collect()
    }

    /// The actions (with direction) enabled in `s`.
    #[must_use]
    pub fn enabled(&self, s: &TioaState) -> Vec<(String, IoDir)> {
        let mut out: BTreeMap<(String, IoDir), ()> = BTreeMap::new();
        for e in &self.tioa.edges {
            if e.from == s.loc
                && e.guard.iter().all(|a| a.satisfied_by(&s.clocks))
                && !self.step(s, &e.action, e.dir).is_empty()
            {
                out.insert((e.action.clone(), e.dir), ());
            }
        }
        out.into_keys().collect()
    }
}

impl fmt::Display for Tioa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tioa {} ({} locations, {} edges)",
            self.name,
            self.locations.len(),
            self.edges.len()
        )?;
        for e in &self.edges {
            let d = if e.dir == IoDir::Input { "?" } else { "!" };
            writeln!(
                f,
                "  {} --{}{}--> {}",
                self.locations[e.from].name, e.action, d, self.locations[e.to].name
            )?;
        }
        Ok(())
    }
}

/// Builder for [`Tioa`] specifications.
#[derive(Debug)]
pub struct TioaBuilder {
    tioa: Tioa,
}

impl TioaBuilder {
    /// Creates a builder for a named specification.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TioaBuilder {
            tioa: Tioa {
                name: name.to_owned(),
                clock_names: Vec::new(),
                locations: Vec::new(),
                edges: Vec::new(),
                initial: 0,
            },
        }
    }

    /// Declares a clock.
    pub fn clock(&mut self, name: &str) -> Clock {
        self.tioa.clock_names.push(name.to_owned());
        Clock(self.tioa.clock_names.len())
    }

    /// Adds a location without invariant.
    pub fn location(&mut self, name: &str) -> usize {
        self.location_with_invariant(name, Vec::new())
    }

    /// Adds a location with an invariant.
    pub fn location_with_invariant(&mut self, name: &str, invariant: Vec<TioaAtom>) -> usize {
        self.tioa.locations.push(TioaLocation {
            name: name.to_owned(),
            invariant,
        });
        self.tioa.locations.len() - 1
    }

    /// Sets the initial location (defaults to the first added).
    pub fn set_initial(&mut self, loc: usize) {
        self.tioa.initial = loc;
    }

    /// Starts an input edge `from --action?--> to`.
    pub fn input(&mut self, from: usize, to: usize, action: &str) -> TioaEdgeBuilder<'_> {
        self.edge(from, to, action, IoDir::Input)
    }

    /// Starts an output edge `from --action!--> to`.
    pub fn output(&mut self, from: usize, to: usize, action: &str) -> TioaEdgeBuilder<'_> {
        self.edge(from, to, action, IoDir::Output)
    }

    fn edge(&mut self, from: usize, to: usize, action: &str, dir: IoDir) -> TioaEdgeBuilder<'_> {
        TioaEdgeBuilder {
            edges: &mut self.tioa.edges,
            edge: TioaEdge {
                from,
                to,
                action: action.to_owned(),
                dir,
                guard: Vec::new(),
                resets: Vec::new(),
            },
        }
    }

    /// Finalizes the specification.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an out-of-range location or an action
    /// name is used with both directions (each action belongs to exactly
    /// one alphabet in a TIOA).
    #[must_use]
    pub fn build(self) -> Tioa {
        let t = self.tioa;
        for e in &t.edges {
            assert!(
                e.from < t.locations.len() && e.to < t.locations.len(),
                "edge references unknown location in {}",
                t.name
            );
        }
        for e in &t.edges {
            assert!(
                !t.edges
                    .iter()
                    .any(|f| f.action == e.action && f.dir != e.dir),
                "action {} used as both input and output in {}",
                e.action,
                t.name
            );
        }
        t
    }
}

/// Builder for one TIOA edge.
#[derive(Debug)]
pub struct TioaEdgeBuilder<'a> {
    edges: &'a mut Vec<TioaEdge>,
    edge: TioaEdge,
}

impl TioaEdgeBuilder<'_> {
    /// Conjoins a guard atom.
    #[must_use]
    pub fn guard(mut self, atom: TioaAtom) -> Self {
        self.edge.guard.push(atom);
        self
    }

    /// Resets a clock to `0`.
    #[must_use]
    pub fn reset(mut self, clock: Clock) -> Self {
        self.edge.resets.push(clock);
        self
    }

    /// Commits the edge.
    pub fn done(self) {
        self.edges.push(self.edge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Tioa {
        let mut b = TioaBuilder::new("Machine");
        let x = b.clock("x");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(x, 5)]);
        b.input(idle, busy, "coin").reset(x).done();
        b.output(busy, idle, "coffee")
            .guard(TioaAtom::ge(x, 2))
            .done();
        b.build()
    }

    #[test]
    fn alphabets() {
        let m = machine();
        assert_eq!(m.inputs().collect::<Vec<_>>(), vec!["coin"]);
        assert_eq!(m.outputs().collect::<Vec<_>>(), vec!["coffee"]);
        assert_eq!(m.max_constant(), 5);
    }

    #[test]
    fn exploration() {
        let m = machine();
        let exp = TioaExplorer::new(&m);
        let s0 = exp.initial_state();
        assert!(exp.step(&s0, "coffee", IoDir::Output).is_empty());
        let busy = exp.step(&s0, "coin", IoDir::Input);
        assert_eq!(busy.len(), 1);
        let mut s = busy[0].clone();
        assert!(
            exp.step(&s, "coffee", IoDir::Output).is_empty(),
            "guard x >= 2"
        );
        s = exp.tick(&s).unwrap();
        s = exp.tick(&s).unwrap();
        assert_eq!(exp.step(&s, "coffee", IoDir::Output).len(), 1);
        // Invariant stops time at 5.
        for _ in 0..3 {
            s = exp.tick(&s).unwrap();
        }
        assert!(exp.tick(&s).is_none());
    }

    #[test]
    fn enabled_actions() {
        let m = machine();
        let exp = TioaExplorer::new(&m);
        let s0 = exp.initial_state();
        assert_eq!(exp.enabled(&s0), vec![("coin".to_owned(), IoDir::Input)]);
    }

    #[test]
    #[should_panic(expected = "both input and output")]
    fn mixed_direction_rejected() {
        let mut b = TioaBuilder::new("Bad");
        let l = b.location("L");
        b.input(l, l, "a").done();
        b.output(l, l, "a").done();
        let _ = b.build();
    }
}
