//! `tempo-flow`: the fixpoint dataflow / abstract-interpretation
//! framework behind the static state-space reductions of the toolkit
//! (Bozga et al., DATE 2012 lineage — UPPAAL's LU extrapolation and
//! cone-of-influence slicing).
//!
//! The crate is deliberately model-agnostic: it knows [`tempo_expr`]
//! expressions and statements plus plain `usize` clock/location indices,
//! nothing about timed-automata networks or PTAs. The model crates
//! (`tempo-ta`, `tempo-modest`) adapt their structures into the three
//! analyses offered here:
//!
//! - [`interval`] — a saturating interval domain with abstract
//!   evaluation of [`tempo_expr::Expr`], transfer of
//!   [`tempo_expr::Stmt`], guard refinement, and a widening global
//!   range fixpoint ([`interval::RangeAnalysis`]).
//! - [`lu`] — the per-clock, per-location lower/upper bound solver
//!   (Behrmann–Bouyer–Larsen–Pelánek LU bounds) computed by backward
//!   propagation through guards, invariants and resets.
//! - [`coi`] — read/write collectors and the cone-of-influence closure
//!   used for query-directed slicing and the `dead_variable` lint.
//!
//! Every analysis result is a plain, deterministic value; the adapters
//! stamp them with [`tempo_obs::StableDigest`] fingerprints so they can
//! partition verdict-cache keys.

pub mod coi;
pub mod interval;
pub mod lu;

pub use coi::{expr_can_trap, expr_vars, relevant_vars, stmt_assignments, stmt_vars, Assign};
pub use interval::{
    eval, refine, truth, var_interval, Command, Env, Interval, RangeAnalysis, Truth,
};
pub use lu::{LuAutomaton, LuBounds, LuEdge, NO_BOUND};
