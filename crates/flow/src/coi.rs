//! Read/write collectors over [`Expr`]/[`Stmt`] and the
//! cone-of-influence closure used for query-directed slicing and the
//! `dead_variable` lint.

use std::collections::BTreeSet;
use tempo_expr::{BinOp, Expr, Stmt, VarId};

/// Collects every variable read by `e` into `out` (array reads count
/// both the element and the index expression's variables).
pub fn expr_vars(e: &Expr, out: &mut BTreeSet<VarId>) {
    match e {
        Expr::Const(_) | Expr::Select(_) => {}
        Expr::Var(id) => {
            out.insert(*id);
        }
        Expr::Index(id, index) => {
            out.insert(*id);
            expr_vars(index, out);
        }
        Expr::Unary(_, inner) => expr_vars(inner, out),
        Expr::Binary(_, l, r) => {
            expr_vars(l, out);
            expr_vars(r, out);
        }
    }
}

/// Whether evaluating `e` can raise a runtime error (division/remainder
/// by zero, out-of-bounds array index). Removing an assignment whose
/// right-hand side can trap would change observable behavior, so
/// slicing only freezes variables whose assignments are trap-free.
#[must_use]
pub fn expr_can_trap(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Select(_) => false,
        Expr::Index(_, _) => true,
        Expr::Unary(_, inner) => expr_can_trap(inner),
        Expr::Binary(op, l, r) => {
            matches!(op, BinOp::Div | BinOp::Rem) || expr_can_trap(l) || expr_can_trap(r)
        }
    }
}

/// One assignment occurrence inside a statement: the written variable
/// and everything its value depends on — the right-hand side, array
/// index expressions, and the conditions of every enclosing `if`/`while`
/// (control dependence).
#[derive(Clone, Debug)]
pub struct Assign {
    /// The written variable.
    pub target: VarId,
    /// Variables the assigned value (or whether it happens) depends on.
    pub deps: BTreeSet<VarId>,
    /// Whether executing this assignment (index + value evaluation) can
    /// raise a runtime error.
    pub can_trap: bool,
}

/// Collects every assignment of `s`, threading the enclosing control
/// conditions' variables into each one's dependency set.
pub fn stmt_assignments(s: &Stmt, out: &mut Vec<Assign>) {
    collect_assigns(s, &BTreeSet::new(), out);
}

fn collect_assigns(s: &Stmt, control: &BTreeSet<VarId>, out: &mut Vec<Assign>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(id, e) => {
            let mut deps = control.clone();
            expr_vars(e, &mut deps);
            out.push(Assign {
                target: *id,
                deps,
                can_trap: expr_can_trap(e),
            });
        }
        Stmt::AssignIndex(id, index, e) => {
            let mut deps = control.clone();
            expr_vars(index, &mut deps);
            expr_vars(e, &mut deps);
            out.push(Assign {
                target: *id,
                deps,
                // Indexed writes can always trap on a bad index.
                can_trap: true,
            });
        }
        Stmt::Seq(parts) => {
            for p in parts {
                collect_assigns(p, control, out);
            }
        }
        Stmt::If(cond, then, otherwise) => {
            let mut inner = control.clone();
            expr_vars(cond, &mut inner);
            collect_assigns(then, &inner, out);
            collect_assigns(otherwise, &inner, out);
        }
        Stmt::While(cond, body) => {
            let mut inner = control.clone();
            expr_vars(cond, &mut inner);
            collect_assigns(body, &inner, out);
        }
    }
}

/// Collects every variable mentioned anywhere in `s` — read or written.
pub fn stmt_vars(s: &Stmt, out: &mut BTreeSet<VarId>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(id, e) => {
            out.insert(*id);
            expr_vars(e, out);
        }
        Stmt::AssignIndex(id, index, e) => {
            out.insert(*id);
            expr_vars(index, out);
            expr_vars(e, out);
        }
        Stmt::Seq(parts) => {
            for p in parts {
                stmt_vars(p, out);
            }
        }
        Stmt::If(cond, a, b) => {
            expr_vars(cond, out);
            stmt_vars(a, out);
            stmt_vars(b, out);
        }
        Stmt::While(cond, body) => {
            expr_vars(cond, out);
            stmt_vars(body, out);
        }
    }
}

/// The cone-of-influence closure: starting from `seeds` (variables read
/// by observable expressions — guards, synchronization indices, clock
/// resets, query atoms), repeatedly adds the dependencies of every
/// assignment whose target is already relevant, until stable.
///
/// A variable *not* in the result is written but never read on any path
/// to an observable guard: freezing it cannot change any verdict.
#[must_use]
pub fn relevant_vars(seeds: BTreeSet<VarId>, assigns: &[Assign]) -> BTreeSet<VarId> {
    let mut relevant = seeds;
    let mut changed = true;
    while changed {
        changed = false;
        for a in assigns {
            if relevant.contains(&a.target) {
                for dep in &a.deps {
                    if relevant.insert(*dep) {
                        changed = true;
                    }
                }
            }
        }
    }
    relevant
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_expr::Decls;

    #[test]
    fn closure_follows_data_and_control_dependencies() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 9);
        let b = d.int("b", 0, 9);
        let c = d.int("c", 0, 9);
        let dead = d.int("dead", 0, 9);
        // a := b (data dep); if (c) { a := 1 } (control dep);
        // dead := a + c — written, never read.
        let s = Stmt::seq(vec![
            Stmt::assign(a, Expr::var(b)),
            Stmt::if_then(Expr::var(c), Stmt::assign(a, Expr::konst(1))),
            Stmt::assign(dead, Expr::var(a) + Expr::var(c)),
        ]);
        let mut assigns = Vec::new();
        stmt_assignments(&s, &mut assigns);
        let relevant = relevant_vars([a].into_iter().collect(), &assigns);
        assert!(relevant.contains(&a) && relevant.contains(&b) && relevant.contains(&c));
        assert!(!relevant.contains(&dead), "write-only variable stays out");
    }

    #[test]
    fn trap_detection_is_syntactic_and_conservative() {
        let mut d = Decls::new();
        let a = d.int("a", 1, 9);
        assert!(!expr_can_trap(&(Expr::var(a) + Expr::konst(1))));
        assert!(expr_can_trap(&Expr::konst(1).bin(BinOp::Div, Expr::var(a))));
        assert!(expr_can_trap(&Expr::index(a, Expr::konst(0))));
    }
}
