//! Per-clock, per-location lower/upper (LU) bound solver.
//!
//! Classic maximal-constant extrapolation (`Extra_M`) abstracts every
//! zone with one constant per clock — the largest constant the clock is
//! ever compared against anywhere in the model. Behrmann, Bouyer,
//! Larsen and Pelánek observed that *lower*-bound guards (`x ≥ c`,
//! `x > c`) and *upper*-bound constraints (`x ≤ c`, `x < c`,
//! invariants) play asymmetric roles, and that both only matter from
//! the locations that can still reach them without resetting the clock.
//!
//! This module computes, for each location `l` of one automaton and
//! each clock `x`, the largest lower-bound constant `L(l, x)` and
//! upper-bound constant `U(l, x)` observable on any path from `l`
//! before `x` is reset, by a backward worklist fixpoint:
//!
//! ```text
//! L(l, x) = max( own atoms at l  ∪  { L(l', x) | l →(no reset of x) l' } )
//! ```
//!
//! Both tables are monotonically non-increasing along reset-free paths
//! by construction — the property that makes per-location digital-clock
//! clamping and per-state `Extra_LU` zone extrapolation sound.

/// "No bound observable": the neutral element of the LU lattice.
/// Clocks are non-negative, so `-1` is strictly below every meaningful
/// constant and `Extra_LU` treats it as −∞.
pub const NO_BOUND: i64 = -1;

/// One edge of the location graph, as seen by the LU solver.
#[derive(Clone, Debug)]
pub struct LuEdge {
    /// Source location index.
    pub from: usize,
    /// Target location index.
    pub to: usize,
    /// Clocks reset by the edge (indices into the solver's clock
    /// space).
    pub resets: Vec<usize>,
    /// Lower-bound guard atoms `(clock, constant)` — from `x ≥ c` /
    /// `x > c`.
    pub lower: BoundAtoms,
    /// Upper-bound guard atoms `(clock, constant)` — from `x ≤ c` /
    /// `x < c`.
    pub upper: BoundAtoms,
}

/// A list of `(clock, constant)` bound atoms of one polarity.
pub type BoundAtoms = Vec<(usize, i64)>;

/// One automaton's location graph for the LU solver.
#[derive(Clone, Debug)]
pub struct LuAutomaton {
    /// Number of locations.
    pub locations: usize,
    /// Edges between them.
    pub edges: Vec<LuEdge>,
    /// Per-location invariant atoms, same encoding as guards:
    /// `(lower_atoms, upper_atoms)`.
    pub invariants: Vec<(BoundAtoms, BoundAtoms)>,
}

/// The solved LU tables of one automaton: `lower[l][x]` / `upper[l][x]`
/// are the largest constants of the respective polarity observable from
/// location `l` before clock `x` is reset ([`NO_BOUND`] when none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LuBounds {
    /// `lower[location][clock]`.
    pub lower: Vec<Vec<i64>>,
    /// `upper[location][clock]`.
    pub upper: Vec<Vec<i64>>,
}

impl LuBounds {
    /// Solves the backward fixpoint for one automaton over `clocks`
    /// clock indices.
    #[must_use]
    pub fn solve(a: &LuAutomaton, clocks: usize) -> LuBounds {
        let mut lower = vec![vec![NO_BOUND; clocks]; a.locations];
        let mut upper = vec![vec![NO_BOUND; clocks]; a.locations];
        // Seed with the location-local observations: invariants at the
        // location itself plus guards of outgoing edges (evaluated
        // while still at the source).
        for l in 0..a.locations {
            let (inv_lo, inv_up) = &a.invariants[l];
            for &(x, c) in inv_lo {
                lower[l][x] = lower[l][x].max(c);
            }
            for &(x, c) in inv_up {
                upper[l][x] = upper[l][x].max(c);
            }
        }
        for e in &a.edges {
            for &(x, c) in &e.lower {
                lower[e.from][x] = lower[e.from][x].max(c);
            }
            for &(x, c) in &e.upper {
                upper[e.from][x] = upper[e.from][x].max(c);
            }
        }
        // Backward propagation along reset-free edges until stable.
        // Termination: entries only grow and are bounded by the largest
        // seeded constant.
        let mut changed = true;
        while changed {
            changed = false;
            for e in &a.edges {
                for x in 0..clocks {
                    if e.resets.contains(&x) {
                        continue;
                    }
                    if lower[e.to][x] > lower[e.from][x] {
                        lower[e.from][x] = lower[e.to][x];
                        changed = true;
                    }
                    if upper[e.to][x] > upper[e.from][x] {
                        upper[e.from][x] = upper[e.to][x];
                        changed = true;
                    }
                }
            }
        }
        LuBounds { lower, upper }
    }

    /// Folds constant `c` into both tables of clock `x` at every
    /// location — used to protect query atoms, which are observable
    /// everywhere.
    pub fn protect(&mut self, x: usize, c: i64) {
        for row in &mut self.lower {
            row[x] = row[x].max(c);
        }
        for row in &mut self.upper {
            row[x] = row[x].max(c);
        }
    }

    /// The per-clock global maxima over all locations (what `Extra_M`
    /// would use if it split L from U).
    #[must_use]
    pub fn global(&self, clocks: usize) -> (Vec<i64>, Vec<i64>) {
        let mut lo = vec![NO_BOUND; clocks];
        let mut up = vec![NO_BOUND; clocks];
        for l in 0..self.lower.len() {
            for x in 0..clocks {
                lo[x] = lo[x].max(self.lower[l][x]);
                up[x] = up[x].max(self.upper[l][x]);
            }
        }
        (lo, up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// L0 --(x ≥ 5, reset x)--> L1 --(x ≤ 2)--> L2.
    fn chain() -> LuAutomaton {
        LuAutomaton {
            locations: 3,
            edges: vec![
                LuEdge {
                    from: 0,
                    to: 1,
                    resets: vec![0],
                    lower: vec![(0, 5)],
                    upper: vec![],
                },
                LuEdge {
                    from: 1,
                    to: 2,
                    resets: vec![],
                    lower: vec![],
                    upper: vec![(0, 2)],
                },
            ],
            invariants: vec![(vec![], vec![]); 3],
        }
    }

    #[test]
    fn bounds_stop_at_resets_and_split_polarity() {
        let b = LuBounds::solve(&chain(), 1);
        // At L0 the only lower bound is the local guard 5; the upper
        // bound 2 behind the reset must NOT leak backwards.
        assert_eq!(b.lower[0][0], 5);
        assert_eq!(b.upper[0][0], NO_BOUND);
        // At L1 the upper bound 2 of the outgoing guard is visible.
        assert_eq!(b.upper[1][0], 2);
        assert_eq!(b.lower[1][0], NO_BOUND);
        // L2 is terminal: nothing observable.
        assert_eq!(b.lower[2][0], NO_BOUND);
        assert_eq!(b.upper[2][0], NO_BOUND);
    }

    #[test]
    fn reset_free_edges_propagate_backwards() {
        let a = LuAutomaton {
            locations: 3,
            edges: vec![
                LuEdge {
                    from: 0,
                    to: 1,
                    resets: vec![],
                    lower: vec![],
                    upper: vec![],
                },
                LuEdge {
                    from: 1,
                    to: 2,
                    resets: vec![],
                    lower: vec![(0, 7)],
                    upper: vec![],
                },
            ],
            invariants: vec![(vec![], vec![]); 3],
        };
        let b = LuBounds::solve(&a, 1);
        assert_eq!(b.lower[0][0], 7, "guard at L1 is observable from L0");
    }

    #[test]
    fn bounds_are_monotone_along_reset_free_paths() {
        let b = LuBounds::solve(&chain(), 1);
        // Along every reset-free edge, the source bound dominates the
        // target bound — the soundness invariant of per-location
        // clamping.
        assert!(b.upper[1][0] >= b.upper[2][0]);
        assert!(b.lower[1][0] >= b.lower[2][0]);
    }

    #[test]
    fn protect_folds_into_every_location() {
        let mut b = LuBounds::solve(&chain(), 1);
        b.protect(0, 9);
        for l in 0..3 {
            assert_eq!(b.lower[l][0].max(b.upper[l][0]), 9);
        }
        let (lo, up) = b.global(1);
        assert_eq!((lo[0], up[0]), (9, 9));
    }
}
