//! A saturating interval abstract domain over `i64`, with abstract
//! evaluation of [`Expr`]s, transfer of [`Stmt`]s, and a widening
//! global range fixpoint.
//!
//! All arithmetic is carried out in `i128` and clamped back to `i64`,
//! so a bound that leaves the representable range *saturates* (and the
//! interval stays a sound over-approximation) instead of wrapping.

use std::collections::HashMap;
use tempo_expr::{BinOp, Decls, Expr, Stmt, UnOp, VarId};

/// An inclusive integer interval `[lo, hi]`; `lo > hi` encodes ⊥ (no
/// value). Bounds saturate at `i64::MIN`/`i64::MAX`, which double as
/// −∞/+∞.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// Three-valued verdict of an abstract boolean evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truth {
    /// The predicate holds for every concrete valuation in the domain.
    True,
    /// The predicate fails for every concrete valuation in the domain.
    False,
    /// The analysis cannot decide.
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

fn clamp(v: i128) -> i64 {
    if v > i128::from(i64::MAX) {
        i64::MAX
    } else if v < i128::from(i64::MIN) {
        i64::MIN
    } else {
        v as i64
    }
}

impl Interval {
    /// The interval containing exactly `v`.
    #[must_use]
    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    /// The full `i64` range (⊤).
    #[must_use]
    pub fn top() -> Interval {
        Interval {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// The empty interval (⊥).
    #[must_use]
    pub fn bottom() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    /// Whether no concrete value is represented.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether every `i64` is represented.
    #[must_use]
    pub fn is_top(self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX
    }

    /// Least upper bound (interval hull).
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound (intersection).
    #[must_use]
    pub fn meet(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Standard widening: a bound that grew jumps to ±∞ so ascending
    /// chains stabilize in one step per bound.
    #[must_use]
    pub fn widen(self, next: Interval) -> Interval {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return self;
        }
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn map2(self, other: Interval, op: impl Fn(i128, i128) -> i128) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::bottom();
        }
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for x in [self.lo, self.hi] {
            for y in [other.lo, other.hi] {
                let v = clamp(op(i128::from(x), i128::from(y)));
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        Interval { lo, hi }
    }

    fn boolean() -> Interval {
        Interval { lo: 0, hi: 1 }
    }
}

/// Abstract variable environment: one interval per declared variable
/// (arrays are summarized by a single interval over all elements).
pub type Env = HashMap<VarId, Interval>;

/// The interval of `id` under `env`, defaulting to the declared range.
#[must_use]
pub fn var_interval(decls: &Decls, env: &Env, id: VarId) -> Interval {
    env.get(&id).copied().unwrap_or_else(|| {
        let info = decls.info(id);
        Interval::new(info.lo, info.hi)
    })
}

/// Abstractly evaluates `e` under `env`; `selects[k]` is the interval of
/// the `k`-th `select` binding of the enclosing edge (out-of-range
/// select indices evaluate to ⊤).
#[must_use]
pub fn eval(e: &Expr, decls: &Decls, env: &Env, selects: &[Interval]) -> Interval {
    match e {
        Expr::Const(v) => Interval::exact(*v),
        Expr::Var(id) | Expr::Index(id, _) => var_interval(decls, env, *id),
        Expr::Select(k) => selects.get(*k).copied().unwrap_or_else(Interval::top),
        Expr::Unary(op, inner) => {
            let i = eval(inner, decls, env, selects);
            match op {
                UnOp::Not => match truth(inner, decls, env, selects) {
                    Truth::True => Interval::exact(0),
                    Truth::False => Interval::exact(1),
                    Truth::Unknown => Interval::boolean(),
                },
                UnOp::Neg => i.map2(Interval::exact(0), |x, _| -x),
            }
        }
        Expr::Binary(op, l, r) => {
            let a = eval(l, decls, env, selects);
            let b = eval(r, decls, env, selects);
            match op {
                BinOp::Add => a.map2(b, |x, y| x + y),
                BinOp::Sub => a.map2(b, |x, y| x - y),
                BinOp::Mul => a.map2(b, |x, y| x * y),
                BinOp::Min => a.map2(b, std::cmp::min),
                BinOp::Max => a.map2(b, std::cmp::max),
                BinOp::Div | BinOp::Rem => {
                    // A zero divisor is a runtime error, not a value;
                    // stay conservative without modelling the trap.
                    if a.is_empty() || b.is_empty() {
                        Interval::bottom()
                    } else {
                        let m = a.lo.saturating_abs().max(a.hi.saturating_abs());
                        Interval::new(-m, m)
                    }
                }
                _ => match truth(e, decls, env, selects) {
                    Truth::True => Interval::exact(1),
                    Truth::False => Interval::exact(0),
                    Truth::Unknown => Interval::boolean(),
                },
            }
        }
    }
}

/// Abstract truth of a boolean expression under `env`: [`Truth::False`]
/// is a *proof* that no concrete valuation in the domain satisfies `e`
/// (the fact behind `MOD003` and slicing's dead-edge rule).
#[must_use]
pub fn truth(e: &Expr, decls: &Decls, env: &Env, selects: &[Interval]) -> Truth {
    match e {
        Expr::Const(v) => {
            if *v == 0 {
                Truth::False
            } else {
                Truth::True
            }
        }
        Expr::Unary(UnOp::Not, inner) => truth(inner, decls, env, selects).not(),
        Expr::Binary(op, l, r) => {
            let cmp = |decide: fn(Interval, Interval) -> Truth| {
                let a = eval(l, decls, env, selects);
                let b = eval(r, decls, env, selects);
                if a.is_empty() || b.is_empty() {
                    Truth::Unknown
                } else {
                    decide(a, b)
                }
            };
            match op {
                BinOp::And => {
                    match (truth(l, decls, env, selects), truth(r, decls, env, selects)) {
                        (Truth::False, _) | (_, Truth::False) => Truth::False,
                        (Truth::True, Truth::True) => Truth::True,
                        _ => Truth::Unknown,
                    }
                }
                BinOp::Or => match (truth(l, decls, env, selects), truth(r, decls, env, selects)) {
                    (Truth::True, _) | (_, Truth::True) => Truth::True,
                    (Truth::False, Truth::False) => Truth::False,
                    _ => Truth::Unknown,
                },
                BinOp::Lt => cmp(decide_lt),
                BinOp::Le => cmp(|a, b| decide_lt(b, a).not()),
                BinOp::Gt => cmp(|a, b| decide_lt(b, a)),
                BinOp::Ge => cmp(|a, b| decide_lt(a, b).not()),
                BinOp::Eq => cmp(decide_eq),
                BinOp::Ne => cmp(|a, b| decide_eq(a, b).not()),
                _ => arithmetic_truth(e, decls, env, selects),
            }
        }
        _ => arithmetic_truth(e, decls, env, selects),
    }
}

fn decide_lt(a: Interval, b: Interval) -> Truth {
    if a.hi < b.lo {
        Truth::True
    } else if a.lo >= b.hi {
        Truth::False
    } else {
        Truth::Unknown
    }
}

fn decide_eq(a: Interval, b: Interval) -> Truth {
    if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
        Truth::True
    } else if a.hi < b.lo || b.hi < a.lo {
        Truth::False
    } else {
        Truth::Unknown
    }
}

/// Truth of an arithmetic expression used in boolean position (non-zero
/// is true).
fn arithmetic_truth(e: &Expr, decls: &Decls, env: &Env, selects: &[Interval]) -> Truth {
    let i = eval(e, decls, env, selects);
    if i.is_empty() {
        Truth::Unknown
    } else if i.lo == 0 && i.hi == 0 {
        Truth::False
    } else if i.lo > 0 || i.hi < 0 {
        Truth::True
    } else {
        Truth::Unknown
    }
}

/// Narrows `env` with the comparisons of `guard` (conjunctions and
/// `var ⋈ const` / `const ⋈ var` atoms; everything else is ignored —
/// refinement only ever shrinks intervals, so it is always sound to
/// skip).
pub fn refine(env: &mut Env, guard: &Expr, decls: &Decls) {
    let Expr::Binary(op, l, r) = guard else {
        return;
    };
    let narrow = |env: &mut Env, id: VarId, op: BinOp, c: i64| {
        let cur = var_interval(decls, env, id);
        let bound = match op {
            BinOp::Lt => Interval::new(i64::MIN, c.saturating_sub(1)),
            BinOp::Le => Interval::new(i64::MIN, c),
            BinOp::Gt => Interval::new(c.saturating_add(1), i64::MAX),
            BinOp::Ge => Interval::new(c, i64::MAX),
            BinOp::Eq => Interval::exact(c),
            _ => return,
        };
        env.insert(id, cur.meet(bound));
    };
    let flip = |op: BinOp| match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    };
    match (op, l.as_ref(), r.as_ref()) {
        (BinOp::And, _, _) => {
            refine(env, l, decls);
            refine(env, r, decls);
        }
        (_, Expr::Var(id), Expr::Const(c)) => narrow(env, *id, *op, *c),
        (_, Expr::Const(c), Expr::Var(id)) => narrow(env, *id, flip(*op), *c),
        _ => {}
    }
}

/// One guarded command of the global range fixpoint: `guard → update`,
/// with the intervals of the command's `select` bindings.
#[derive(Clone, Debug)]
pub struct Command {
    /// Data guard evaluated before the update runs.
    pub guard: Expr,
    /// The update statement.
    pub update: Stmt,
    /// Inclusive ranges of the command's `select` bindings.
    pub selects: Vec<(i64, i64)>,
}

/// A flow-insensitive global range analysis: one interval per variable
/// over-approximating every value the variable takes in any reachable
/// state, computed as the widening fixpoint of all guarded commands
/// from the initial store.
///
/// The result makes *semantic* facts available to clients: a guard
/// whose [`truth`] under these ranges is [`Truth::False`] can never
/// fire, and a variable whose interval is strictly inside its declared
/// range is over-declared.
#[derive(Clone, Debug)]
pub struct RangeAnalysis {
    /// The fixpoint interval of each variable, indexed like `Decls`.
    pub ranges: Vec<Interval>,
}

impl RangeAnalysis {
    /// Runs the fixpoint over `commands` starting from the initial
    /// store of `decls`.
    #[must_use]
    pub fn run(decls: &Decls, commands: &[Command]) -> RangeAnalysis {
        let init = decls.initial_store();
        let n = decls.len();
        let mut ranges: Vec<Interval> = (0..n)
            .map(|i| {
                let info = decls.info(decls.id_at(i));
                let mut iv = Interval::bottom();
                for k in 0..info.len {
                    iv = iv.join(Interval::exact(init.as_slice()[info.offset() + k]));
                }
                iv
            })
            .collect();
        // Chaotic iteration to an actual fixpoint: plain joins for the
        // first rounds (precision), then widening, which jumps every
        // still-growing bound to ±∞ — so at most two more changes per
        // variable and the loop terminates without a round cap. A cap
        // that could exit while `changed` is still true would return an
        // UNDER-approximation, and every client (slicing's dead-edge
        // rule, MOD003, mcpta domain narrowing) needs an
        // over-approximation to be sound.
        let mut round = 0;
        loop {
            let mut changed = false;
            for cmd in commands {
                let mut env: Env = (0..n).map(|i| (decls.id_at(i), ranges[i])).collect();
                refine(&mut env, &cmd.guard, decls);
                let selects: Vec<Interval> = cmd
                    .selects
                    .iter()
                    .map(|&(lo, hi)| Interval::new(lo, hi))
                    .collect();
                if truth(&cmd.guard, decls, &env, &selects) == Truth::False {
                    continue;
                }
                let mut out: Vec<(VarId, Interval)> = Vec::new();
                transfer(&cmd.update, decls, &mut env, &selects, &mut out);
                for (id, iv) in out {
                    let cur = ranges[id.index()];
                    let next = if round < 16 {
                        cur.join(iv)
                    } else {
                        cur.widen(cur.join(iv))
                    };
                    if next != cur {
                        ranges[id.index()] = next;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            round += 1;
        }
        RangeAnalysis { ranges }
    }

    /// The fixpoint interval of `id`.
    #[must_use]
    pub fn range(&self, id: VarId) -> Interval {
        self.ranges[id.index()]
    }

    /// The environment view of the fixpoint, for [`truth`]/[`eval`].
    #[must_use]
    pub fn env(&self, decls: &Decls) -> Env {
        self.ranges
            .iter()
            .enumerate()
            .map(|(i, &iv)| (decls.id_at(i), iv))
            .collect()
    }

    /// How many variables have a fixpoint interval strictly tighter
    /// than their declared `[lo, hi]` range (the `vars_narrowed`
    /// metric).
    #[must_use]
    pub fn narrowed(&self, decls: &Decls) -> usize {
        (0..decls.len())
            .filter(|&i| {
                let info = decls.info(decls.id_at(i));
                let iv = self.ranges[i];
                !iv.is_empty() && (iv.lo > info.lo || iv.hi < info.hi)
            })
            .count()
    }
}

/// Abstract transfer of a statement: appends `(target, interval)` facts
/// for every assignment that may execute, refining `env` along the way
/// (flow-sensitive within the statement, conservative across branches).
pub fn transfer(
    s: &Stmt,
    decls: &Decls,
    env: &mut Env,
    selects: &[Interval],
    out: &mut Vec<(VarId, Interval)>,
) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(id, e) => {
            let iv = eval(e, decls, env, selects);
            env.insert(*id, iv);
            out.push((*id, iv));
        }
        Stmt::AssignIndex(id, _, e) => {
            // Weak update: the other elements keep their old interval.
            let iv = eval(e, decls, env, selects).join(var_interval(decls, env, *id));
            env.insert(*id, iv);
            out.push((*id, iv));
        }
        Stmt::Seq(parts) => {
            for p in parts {
                transfer(p, decls, env, selects, out);
            }
        }
        Stmt::If(cond, then, otherwise) => {
            let mut t_env = env.clone();
            refine(&mut t_env, cond, decls);
            let mut f_env = env.clone();
            let t = truth(cond, decls, env, selects);
            if t != Truth::False {
                transfer(then, decls, &mut t_env, selects, out);
            }
            if t != Truth::True {
                transfer(otherwise, decls, &mut f_env, selects, out);
            }
            // Join the branch environments.
            for (id, iv) in t_env {
                let merged = if t == Truth::True {
                    iv
                } else {
                    iv.join(f_env.get(&id).copied().unwrap_or_else(|| {
                        let info = decls.info(id);
                        Interval::new(info.lo, info.hi)
                    }))
                };
                env.insert(id, merged);
            }
        }
        Stmt::While(cond, body) => {
            // Conservative loop summary: run the body abstractly until
            // its written set stabilizes — joins first, then widening,
            // which bounds the iteration count without a round cap (a
            // cap could exit before the fixpoint and under-approximate).
            let mut round = 0;
            loop {
                let mut body_env = env.clone();
                refine(&mut body_env, cond, decls);
                let mut body_out = Vec::new();
                transfer(body, decls, &mut body_env, selects, &mut body_out);
                let mut changed = false;
                for (id, iv) in body_out {
                    let cur = var_interval(decls, env, id);
                    let next = if round < 4 {
                        cur.join(iv)
                    } else {
                        cur.widen(cur.join(iv))
                    };
                    if next != cur {
                        env.insert(id, next);
                        out.push((id, next));
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
                round += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_arithmetic_never_wraps() {
        let d = Decls::new();
        let env = Env::new();
        // 5 - i64::MIN overflows upward; the interval must saturate at
        // i64::MAX, not wrap to a negative bound.
        let e = Expr::konst(5) - Expr::konst(i64::MIN);
        let iv = eval(&e, &d, &env, &[]);
        assert_eq!((iv.lo, iv.hi), (i64::MAX, i64::MAX));
    }

    #[test]
    fn guard_truth_decides_empty_guards() {
        let mut d = Decls::new();
        let x = d.int("x", 0, 5);
        let env = Env::new();
        let g = Expr::var(x).gt(Expr::konst(100));
        assert_eq!(truth(&g, &d, &env, &[]), Truth::False);
        let g = Expr::var(x).ge(Expr::konst(0));
        assert_eq!(truth(&g, &d, &env, &[]), Truth::True);
        let g = Expr::var(x).gt(Expr::konst(3));
        assert_eq!(truth(&g, &d, &env, &[]), Truth::Unknown);
    }

    #[test]
    fn range_fixpoint_narrows_a_bounded_counter() {
        let mut d = Decls::new();
        // Declared far wider than the guarded increment ever reaches.
        let x = d.int("x", 0, 1000);
        let cmds = [Command {
            guard: Expr::var(x).lt(Expr::konst(3)),
            update: Stmt::assign(x, Expr::var(x) + Expr::konst(1)),
            selects: vec![],
        }];
        let ra = RangeAnalysis::run(&d, &cmds);
        assert_eq!((ra.range(x).lo, ra.range(x).hi), (0, 3));
        assert_eq!(ra.narrowed(&d), 1);
    }

    #[test]
    fn unguarded_growth_widens_to_top_instead_of_looping() {
        let mut d = Decls::new();
        let x = d.int("x", 0, 10);
        let cmds = [Command {
            guard: Expr::truth(),
            update: Stmt::assign(x, Expr::var(x) + Expr::konst(1)),
            selects: vec![],
        }];
        let ra = RangeAnalysis::run(&d, &cmds);
        assert_eq!(ra.range(x).hi, i64::MAX);
        assert_eq!(ra.narrowed(&d), 0);
    }

    #[test]
    fn range_fixpoint_is_not_round_capped() {
        // A dependency chain whose commands are listed tail-first makes
        // exactly one new variable change per round: `x_k` can only
        // become 1 the round after `x_{k-1}` did, so 100 links need
        // ~100 rounds. A round-capped iteration (the old 64-round exit)
        // would stop while still changing and leave the tail variables
        // at their initial [0, 0] — an UNDER-approximation that turns
        // the concretely reachable guard `x_99 == 1` provably false.
        let mut d = Decls::new();
        let vars: Vec<VarId> = (0..100).map(|i| d.int(&format!("x{i}"), 0, 1)).collect();
        let mut cmds: Vec<Command> = (1..vars.len())
            .rev()
            .map(|k| Command {
                guard: Expr::var(vars[k - 1]).eq(Expr::konst(1)),
                update: Stmt::assign(vars[k], Expr::konst(1)),
                selects: vec![],
            })
            .collect();
        cmds.push(Command {
            guard: Expr::truth(),
            update: Stmt::assign(vars[0], Expr::konst(1)),
            selects: vec![],
        });
        let ra = RangeAnalysis::run(&d, &cmds);
        let last = *vars.last().unwrap();
        assert!(
            ra.range(last).lo <= 1 && 1 <= ra.range(last).hi,
            "reachable value 1 missing from {:?}",
            ra.range(last)
        );
        let g = Expr::var(last).eq(Expr::konst(1));
        assert_ne!(truth(&g, &d, &ra.env(&d), &[]), Truth::False);
    }

    #[test]
    fn refinement_meets_with_declared_ranges() {
        let mut d = Decls::new();
        let x = d.int("x", 0, 100);
        let mut env = Env::new();
        refine(
            &mut env,
            &(Expr::var(x).lt(Expr::konst(10)) & Expr::var(x).ge(Expr::konst(2))),
            &d,
        );
        assert_eq!(env[&x], Interval::new(2, 9));
    }
}
