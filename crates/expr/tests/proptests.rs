//! Property-based tests for the data language: evaluation determinism,
//! algebraic laws, range enforcement, and statement semantics.

use proptest::prelude::*;
use tempo_expr::{BinOp, Decls, Expr, Stmt, VarId};

fn setup() -> (Decls, VarId, VarId, VarId) {
    let mut d = Decls::new();
    let a = d.int("a", -50, 50);
    let b = d.int("b", -50, 50);
    let arr = d.array("arr", 4, -50, 50);
    (d, a, b, arr)
}

/// A small expression over `a`, `b` and constants.
fn arb_expr(a: VarId, b: VarId) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20_i64..20).prop_map(Expr::konst),
        Just(Expr::var(a)),
        Just(Expr::var(b)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Min),
                Just(BinOp::Max),
                Just(BinOp::Lt),
                Just(BinOp::Le),
                Just(BinOp::Eq),
                Just(BinOp::And),
                Just(BinOp::Or),
            ],
        )
            .prop_map(|(l, r, op)| l.bin(op, r))
    })
}

proptest! {
    #[test]
    fn evaluation_is_deterministic(
        av in -50_i64..50,
        bv in -50_i64..50,
        e in setup_expr(),
    ) {
        let (d, a, b, _) = setup();
        let mut s = d.initial_store();
        s.set_index(&d, a, 0, av).unwrap();
        s.set_index(&d, b, 0, bv).unwrap();
        let r1 = e.eval(&d, &s, &[]);
        let r2 = e.eval(&d, &s, &[]);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn commutative_ops(av in -50_i64..50, bv in -50_i64..50) {
        let (d, a, b, _) = setup();
        let mut s = d.initial_store();
        s.set_index(&d, a, 0, av).unwrap();
        s.set_index(&d, b, 0, bv).unwrap();
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max, BinOp::And, BinOp::Or, BinOp::Eq] {
            let lr = Expr::var(a).bin(op, Expr::var(b)).eval(&d, &s, &[]).unwrap();
            let rl = Expr::var(b).bin(op, Expr::var(a)).eval(&d, &s, &[]).unwrap();
            prop_assert_eq!(lr, rl, "op {:?}", op);
        }
    }

    #[test]
    fn comparisons_are_boolean(av in -50_i64..50, bv in -50_i64..50) {
        let (d, a, b, _) = setup();
        let mut s = d.initial_store();
        s.set_index(&d, a, 0, av).unwrap();
        s.set_index(&d, b, 0, bv).unwrap();
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne] {
            let v = Expr::var(a).bin(op, Expr::var(b)).eval(&d, &s, &[]).unwrap();
            prop_assert!(v == 0 || v == 1);
        }
        // Trichotomy: exactly one of <, ==, > holds.
        let lt = Expr::var(a).lt(Expr::var(b)).eval(&d, &s, &[]).unwrap();
        let eq = Expr::var(a).eq(Expr::var(b)).eval(&d, &s, &[]).unwrap();
        let gt = Expr::var(a).gt(Expr::var(b)).eval(&d, &s, &[]).unwrap();
        prop_assert_eq!(lt + eq + gt, 1);
    }

    #[test]
    fn double_negation(av in -50_i64..50) {
        let (d, a, _, _) = setup();
        let mut s = d.initial_store();
        s.set_index(&d, a, 0, av).unwrap();
        let e = Expr::var(a).gt(Expr::konst(0));
        let v = e.clone().eval(&d, &s, &[]).unwrap();
        let nn = (!!e).eval(&d, &s, &[]).unwrap();
        prop_assert_eq!(v, nn);
    }

    #[test]
    fn assignments_respect_ranges(v in -100_i64..100) {
        let (d, a, _, _) = setup();
        let mut s = d.initial_store();
        let stmt = Stmt::assign(a, Expr::konst(v));
        let result = stmt.execute(&d, &mut s, &[]);
        if (-50..=50).contains(&v) {
            prop_assert!(result.is_ok());
            prop_assert_eq!(s.get(a), v);
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn array_writes_round_trip(idx in 0_i64..4, v in -50_i64..50) {
        let (d, _, _, arr) = setup();
        let mut s = d.initial_store();
        Stmt::assign_index(arr, Expr::konst(idx), Expr::konst(v))
            .execute(&d, &mut s, &[])
            .unwrap();
        prop_assert_eq!(s.get_index(&d, arr, idx).unwrap(), v);
        // Other slots untouched.
        for other in 0..4 {
            if other != idx {
                prop_assert_eq!(s.get_index(&d, arr, other).unwrap(), 0);
            }
        }
    }

    #[test]
    fn sequencing_composes(av in -40_i64..40, delta1 in -5_i64..5, delta2 in -5_i64..5) {
        let (d, a, _, _) = setup();
        // (a += d1); (a += d2)  ==  a += (d1 + d2)
        let mut s1 = d.initial_store();
        s1.set_index(&d, a, 0, av).unwrap();
        let mut s2 = s1.clone();
        Stmt::seq(vec![
            Stmt::assign(a, Expr::var(a) + Expr::konst(delta1)),
            Stmt::assign(a, Expr::var(a) + Expr::konst(delta2)),
        ])
        .execute(&d, &mut s1, &[])
        .unwrap();
        Stmt::assign(a, Expr::var(a) + Expr::konst(delta1 + delta2))
            .execute(&d, &mut s2, &[])
            .unwrap();
        prop_assert_eq!(s1.get(a), s2.get(a));
    }

    #[test]
    fn while_loop_counts(n in 0_i64..40) {
        let (d, a, b, _) = setup();
        let mut s = d.initial_store();
        // b = 0; while (b < n) { b += 1; a = b; }
        Stmt::seq(vec![
            Stmt::while_loop(
                Expr::var(b).lt(Expr::konst(n)),
                Stmt::seq(vec![
                    Stmt::assign(b, Expr::var(b) + Expr::konst(1)),
                    Stmt::assign(a, Expr::var(b)),
                ]),
            ),
        ])
        .execute(&d, &mut s, &[])
        .unwrap();
        prop_assert_eq!(s.get(b), n);
        prop_assert_eq!(s.get(a), if n == 0 { 0 } else { n });
    }
}

/// proptest strategies cannot borrow, so rebuild ids deterministically.
fn setup_expr() -> impl Strategy<Value = Expr> {
    let (_, a, b, _) = setup();
    arb_expr(a, b)
}
