//! Side-effect-free integer expressions.

use crate::{Decls, EvalError, Store, VarId};
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, Mul, Neg, Not, Sub};

/// Binary operators of the data language. Comparison and boolean operators
/// evaluate to `0` (false) or `1` (true).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncated integer division.
    Div,
    /// Remainder.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Logical conjunction (non-zero is true); both sides are evaluated.
    And,
    /// Logical disjunction (non-zero is true); both sides are evaluated.
    Or,
}

/// Unary operators of the data language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation (`0` ↦ `1`, non-zero ↦ `0`).
    Not,
}

/// A side-effect-free expression over declared variables, `select`
/// placeholders (UPPAAL's `e : id_t` edge selectors) and constants.
///
/// Expressions support Rust operator syntax for convenience:
///
/// ```
/// use tempo_expr::{Decls, Expr};
/// let mut d = Decls::new();
/// let a = d.int("a", 0, 9);
/// let e = Expr::var(a) + Expr::konst(1);
/// let s = d.initial_store();
/// assert_eq!(e.eval(&d, &s, &[])?, 1);
/// # Ok::<(), tempo_expr::EvalError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer constant.
    Const(i64),
    /// A scalar variable (or element `0` of an array).
    Var(VarId),
    /// An array element `var[index]`.
    Index(VarId, Box<Expr>),
    /// The `k`-th `select` binding of the enclosing edge.
    Select(usize),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// An integer constant. (Named `konst` because `const` is reserved.)
    #[must_use]
    pub fn konst(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// The boolean constant `true` (`1`).
    #[must_use]
    pub fn truth() -> Expr {
        Expr::Const(1)
    }

    /// A scalar variable reference.
    #[must_use]
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// An array element reference `id[index]`.
    #[must_use]
    pub fn index(id: VarId, index: Expr) -> Expr {
        Expr::Index(id, Box::new(index))
    }

    /// The `k`-th `select` binding of the enclosing edge (UPPAAL's
    /// `e : id_t` selectors).
    #[must_use]
    pub fn select(k: usize) -> Expr {
        Expr::Select(k)
    }

    /// Builds `self op rhs`.
    #[must_use]
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    #[must_use]
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// `self <= rhs`.
    #[must_use]
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    /// `self > rhs`.
    #[must_use]
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    /// `self >= rhs`.
    #[must_use]
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// `self == rhs`.
    #[must_use]
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// `self != rhs`.
    #[must_use]
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    /// Evaluates the expression.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on division by zero, out-of-bounds array
    /// access, unbound `select` placeholder, or arithmetic overflow.
    pub fn eval(&self, decls: &Decls, store: &Store, selects: &[i64]) -> Result<i64, EvalError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Var(id) => Ok(store.get(*id)),
            Expr::Index(id, idx) => {
                let i = idx.eval(decls, store, selects)?;
                store.get_index(decls, *id, i)
            }
            Expr::Select(k) => selects
                .get(*k)
                .copied()
                .ok_or(EvalError::UnboundSelect { position: *k }),
            Expr::Unary(op, e) => {
                let v = e.eval(decls, store, selects)?;
                Ok(match op {
                    UnOp::Neg => v.checked_neg().ok_or(EvalError::Overflow)?,
                    UnOp::Not => i64::from(v == 0),
                })
            }
            Expr::Binary(op, l, r) => {
                let a = l.eval(decls, store, selects)?;
                let b = r.eval(decls, store, selects)?;
                let bool_to_i = i64::from;
                Ok(match op {
                    BinOp::Add => a.checked_add(b).ok_or(EvalError::Overflow)?,
                    BinOp::Sub => a.checked_sub(b).ok_or(EvalError::Overflow)?,
                    BinOp::Mul => a.checked_mul(b).ok_or(EvalError::Overflow)?,
                    BinOp::Div => {
                        if b == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        a.checked_div(b).ok_or(EvalError::Overflow)?
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        a.checked_rem(b).ok_or(EvalError::Overflow)?
                    }
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Lt => bool_to_i(a < b),
                    BinOp::Le => bool_to_i(a <= b),
                    BinOp::Gt => bool_to_i(a > b),
                    BinOp::Ge => bool_to_i(a >= b),
                    BinOp::Eq => bool_to_i(a == b),
                    BinOp::Ne => bool_to_i(a != b),
                    BinOp::And => bool_to_i(a != 0 && b != 0),
                    BinOp::Or => bool_to_i(a != 0 || b != 0),
                })
            }
        }
    }

    /// Evaluates the expression as a boolean (non-zero is true).
    ///
    /// # Errors
    ///
    /// Same as [`Expr::eval`].
    pub fn eval_bool(
        &self,
        decls: &Decls,
        store: &Store,
        selects: &[i64],
    ) -> Result<bool, EvalError> {
        Ok(self.eval(decls, store, selects)? != 0)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Const(v)
    }
}

impl From<VarId> for Expr {
    fn from(id: VarId) -> Expr {
        Expr::Var(id)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

impl Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }
}

impl BitAnd for Expr {
    type Output = Expr;
    /// Logical conjunction (`&` used as `&&`; both sides evaluated).
    fn bitand(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
}

impl BitOr for Expr {
    type Output = Expr;
    /// Logical disjunction (`|` used as `||`; both sides evaluated).
    fn bitor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(id) => write!(f, "v{}", id.index()),
            Expr::Index(id, i) => write!(f, "v{}[{}]", id.index(), i),
            Expr::Select(k) => write!(f, "sel{k}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Binary(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Min => "min",
                    BinOp::Max => "max",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                write!(f, "({l} {sym} {r})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Decls, Store, VarId, VarId) {
        let mut d = Decls::new();
        let a = d.int_init("a", -10, 10, 3);
        let arr = d.array("arr", 3, 0, 9);
        let s = d.initial_store();
        (d, s, a, arr)
    }

    #[test]
    fn arithmetic() {
        let (d, s, a, _) = setup();
        let e = (Expr::var(a) + Expr::konst(4)) * Expr::konst(2);
        assert_eq!(e.eval(&d, &s, &[]).unwrap(), 14);
        let e = Expr::var(a) - Expr::konst(10);
        assert_eq!(e.eval(&d, &s, &[]).unwrap(), -7);
        let e = -Expr::var(a);
        assert_eq!(e.eval(&d, &s, &[]).unwrap(), -3);
    }

    #[test]
    fn comparisons_and_logic() {
        let (d, s, a, _) = setup();
        assert_eq!(
            Expr::var(a).lt(Expr::konst(4)).eval(&d, &s, &[]).unwrap(),
            1
        );
        assert_eq!(
            Expr::var(a).ge(Expr::konst(4)).eval(&d, &s, &[]).unwrap(),
            0
        );
        let both = Expr::var(a).gt(Expr::konst(0)) & Expr::var(a).le(Expr::konst(3));
        assert_eq!(both.eval(&d, &s, &[]).unwrap(), 1);
        let either = Expr::var(a).eq(Expr::konst(9)) | Expr::truth();
        assert_eq!(either.eval(&d, &s, &[]).unwrap(), 1);
        assert_eq!((!Expr::konst(0)).eval(&d, &s, &[]).unwrap(), 1);
    }

    #[test]
    fn division_errors() {
        let (d, s, _, _) = setup();
        let e = Expr::konst(1).bin(BinOp::Div, Expr::konst(0));
        assert_eq!(e.eval(&d, &s, &[]), Err(EvalError::DivisionByZero));
        let e = Expr::konst(1).bin(BinOp::Rem, Expr::konst(0));
        assert_eq!(e.eval(&d, &s, &[]), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn array_indexing() {
        let (d, mut s, a, arr) = setup();
        s.set_index(&d, arr, 1, 7).unwrap();
        let e = Expr::index(arr, Expr::konst(1));
        assert_eq!(e.eval(&d, &s, &[]).unwrap(), 7);
        let bad = Expr::index(arr, Expr::var(a)); // a == 3, out of bounds
        assert!(matches!(
            bad.eval(&d, &s, &[]),
            Err(EvalError::IndexOutOfBounds { index: 3, .. })
        ));
    }

    #[test]
    fn selects() {
        let (d, s, _, _) = setup();
        let e = Expr::select(0) + Expr::select(1);
        assert_eq!(e.eval(&d, &s, &[4, 5]).unwrap(), 9);
        assert!(matches!(
            e.eval(&d, &s, &[4]),
            Err(EvalError::UnboundSelect { position: 1 })
        ));
    }

    #[test]
    fn overflow_detected() {
        let (d, s, _, _) = setup();
        let e = Expr::konst(i64::MAX) + Expr::konst(1);
        assert_eq!(e.eval(&d, &s, &[]), Err(EvalError::Overflow));
    }

    #[test]
    fn min_max() {
        let (d, s, a, _) = setup();
        assert_eq!(
            Expr::var(a)
                .bin(BinOp::Min, Expr::konst(1))
                .eval(&d, &s, &[])
                .unwrap(),
            1
        );
        assert_eq!(
            Expr::var(a)
                .bin(BinOp::Max, Expr::konst(1))
                .eval(&d, &s, &[])
                .unwrap(),
            3
        );
    }
}
