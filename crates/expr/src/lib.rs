//! # tempo-expr — bounded-integer data language for model annotations
//!
//! UPPAAL models extend timed automata with "a C-like imperative language
//! with user-defined types and functions" (Bozga et al., DATE 2012, §II).
//! This crate provides that data layer for the whole `tempo` workspace:
//!
//! * [`Decls`] — declarations of bounded integer variables and arrays
//!   (e.g. `id_t list[N+1]; int[0,N] len;` from Fig. 1(c) of the paper);
//! * [`Store`] — a hashable snapshot of variable values, the discrete part
//!   of a model state;
//! * [`Expr`] — side-effect-free integer/boolean expressions;
//! * [`Stmt`] — imperative updates (assignment, `if`, `while`, blocks),
//!   sufficient to express the FIFO-queue functions `enqueue`, `dequeue`,
//!   `front` and `tail` used by the paper's train-gate controller.
//!
//! ## Example: the paper's `enqueue`
//!
//! ```
//! use tempo_expr::{Decls, Expr, Stmt};
//!
//! let mut decls = Decls::new();
//! let list = decls.array("list", 7, 0, 6);
//! let len = decls.int("len", 0, 6);
//!
//! // list[len] = element; len += 1;   (element = 3 here)
//! let enqueue = Stmt::seq(vec![
//!     Stmt::assign_index(list, Expr::var(len), Expr::konst(3)),
//!     Stmt::assign(len, Expr::var(len) + Expr::konst(1)),
//! ]);
//!
//! let mut store = decls.initial_store();
//! enqueue.execute(&decls, &mut store, &[])?;
//! assert_eq!(store.get_index(&decls, list, 0)?, 3);
//! assert_eq!(store.get(len), 1);
//! # Ok::<(), tempo_expr::EvalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decls;
mod digest;
mod error;
mod expr;
mod stmt;

pub use decls::{Decls, Store, VarId, VarInfo};
pub use error::EvalError;
pub use expr::{BinOp, Expr, UnOp};
pub use stmt::Stmt;

/// Maximum number of statement steps a single update may execute before
/// being aborted with [`EvalError::FuelExhausted`]; guards against
/// non-terminating `while` loops in model annotations.
pub const DEFAULT_FUEL: u64 = 1_000_000;
