//! Evaluation errors for the data language.

use crate::VarId;
use std::fmt;

/// An error raised while evaluating an expression or executing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Division or modulo by zero.
    DivisionByZero,
    /// An array access with an index outside the array bounds.
    IndexOutOfBounds {
        /// The array variable.
        var: VarId,
        /// The offending index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// An assignment that would violate the declared range of a variable.
    RangeViolation {
        /// The assigned variable.
        var: VarId,
        /// The offending value.
        value: i64,
        /// Declared inclusive lower bound.
        lo: i64,
        /// Declared inclusive upper bound.
        hi: i64,
    },
    /// A scalar operation applied to an array variable or vice versa.
    KindMismatch {
        /// The offending variable.
        var: VarId,
    },
    /// A `select` placeholder used without a binding.
    UnboundSelect {
        /// The placeholder position.
        position: usize,
    },
    /// The statement step budget was exhausted (runaway `while` loop).
    FuelExhausted,
    /// Arithmetic overflow during evaluation.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::IndexOutOfBounds { var, index, len } => {
                write!(f, "index {index} out of bounds for {var:?} of length {len}")
            }
            EvalError::RangeViolation { var, value, lo, hi } => {
                write!(
                    f,
                    "value {value} outside declared range [{lo}, {hi}] of {var:?}"
                )
            }
            EvalError::KindMismatch { var } => {
                write!(f, "scalar/array kind mismatch on {var:?}")
            }
            EvalError::UnboundSelect { position } => {
                write!(
                    f,
                    "select placeholder {position} evaluated without a binding"
                )
            }
            EvalError::FuelExhausted => write!(f, "statement step budget exhausted"),
            EvalError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for EvalError {}
