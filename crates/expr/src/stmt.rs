//! Imperative update statements.

use crate::{Decls, EvalError, Expr, Store, VarId, DEFAULT_FUEL};

/// An imperative update statement, as attached to timed-automaton edges
/// (UPPAAL's update expressions and user-defined functions).
///
/// The `dequeue` function from Fig. 1(c) of the paper is expressible as a
/// `while` loop shifting array elements; see the crate-level example and
/// the train-gate model in `tempo-models`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// No-op.
    Skip,
    /// `var := expr` for a scalar variable.
    Assign(VarId, Expr),
    /// `var[index] := expr` for an array element.
    AssignIndex(VarId, Expr, Expr),
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `if cond { then } else { otherwise }`.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// `while cond { body }`.
    While(Expr, Box<Stmt>),
}

impl Stmt {
    /// The empty statement.
    #[must_use]
    pub fn skip() -> Stmt {
        Stmt::Skip
    }

    /// `var := expr`.
    #[must_use]
    pub fn assign(var: VarId, e: Expr) -> Stmt {
        Stmt::Assign(var, e)
    }

    /// `var[index] := expr`.
    #[must_use]
    pub fn assign_index(var: VarId, index: Expr, e: Expr) -> Stmt {
        Stmt::AssignIndex(var, index, e)
    }

    /// Sequential composition of statements.
    #[must_use]
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        Stmt::Seq(stmts)
    }

    /// `if cond { then }` with an empty else-branch.
    #[must_use]
    pub fn if_then(cond: Expr, then: Stmt) -> Stmt {
        Stmt::If(cond, Box::new(then), Box::new(Stmt::Skip))
    }

    /// `if cond { then } else { otherwise }`.
    #[must_use]
    pub fn if_else(cond: Expr, then: Stmt, otherwise: Stmt) -> Stmt {
        Stmt::If(cond, Box::new(then), Box::new(otherwise))
    }

    /// `while cond { body }`.
    #[must_use]
    pub fn while_loop(cond: Expr, body: Stmt) -> Stmt {
        Stmt::While(cond, Box::new(body))
    }

    /// Executes the statement against a store, using the default step
    /// budget ([`DEFAULT_FUEL`]).
    ///
    /// # Errors
    ///
    /// Propagates any [`EvalError`] from expression evaluation or
    /// assignment checking, and returns [`EvalError::FuelExhausted`] for
    /// runaway loops. On error the store may be partially updated; callers
    /// (the symbolic engines) treat any error as "edge disabled" and work
    /// on a copy.
    pub fn execute(
        &self,
        decls: &Decls,
        store: &mut Store,
        selects: &[i64],
    ) -> Result<(), EvalError> {
        let mut fuel = DEFAULT_FUEL;
        self.execute_fueled(decls, store, selects, &mut fuel)
    }

    fn execute_fueled(
        &self,
        decls: &Decls,
        store: &mut Store,
        selects: &[i64],
        fuel: &mut u64,
    ) -> Result<(), EvalError> {
        if *fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        *fuel -= 1;
        match self {
            Stmt::Skip => Ok(()),
            Stmt::Assign(var, e) => {
                let v = e.eval(decls, store, selects)?;
                store.set_index(decls, *var, 0, v)
            }
            Stmt::AssignIndex(var, idx, e) => {
                let i = idx.eval(decls, store, selects)?;
                let v = e.eval(decls, store, selects)?;
                store.set_index(decls, *var, i, v)
            }
            Stmt::Seq(stmts) => {
                for s in stmts {
                    s.execute_fueled(decls, store, selects, fuel)?;
                }
                Ok(())
            }
            Stmt::If(cond, then, otherwise) => {
                if cond.eval_bool(decls, store, selects)? {
                    then.execute_fueled(decls, store, selects, fuel)
                } else {
                    otherwise.execute_fueled(decls, store, selects, fuel)
                }
            }
            Stmt::While(cond, body) => {
                while cond.eval_bool(decls, store, selects)? {
                    if *fuel == 0 {
                        return Err(EvalError::FuelExhausted);
                    }
                    body.execute_fueled(decls, store, selects, fuel)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's FIFO queue (Fig. 1(c)) and returns
    /// `(decls, list, len)`.
    fn fifo(n: usize) -> (Decls, VarId, VarId) {
        let mut d = Decls::new();
        let list = d.array("list", n + 1, 0, n as i64);
        let len = d.int("len", 0, n as i64 + 1);
        (d, list, len)
    }

    fn enqueue(list: VarId, len: VarId, element: Expr) -> Stmt {
        Stmt::seq(vec![
            Stmt::assign_index(list, Expr::var(len), element),
            Stmt::assign(len, Expr::var(len) + Expr::konst(1)),
        ])
    }

    /// The paper's `dequeue`: shift left with a while loop.
    fn dequeue(list: VarId, len: VarId, i: VarId) -> Stmt {
        Stmt::seq(vec![
            Stmt::assign(i, Expr::konst(0)),
            Stmt::assign(len, Expr::var(len) - Expr::konst(1)),
            Stmt::while_loop(
                Expr::var(i).lt(Expr::var(len)),
                Stmt::seq(vec![
                    Stmt::assign_index(
                        list,
                        Expr::var(i),
                        Expr::index(list, Expr::var(i) + Expr::konst(1)),
                    ),
                    Stmt::assign(i, Expr::var(i) + Expr::konst(1)),
                ]),
            ),
            Stmt::assign_index(list, Expr::var(i), Expr::konst(0)),
        ])
    }

    #[test]
    fn fifo_queue_roundtrip() {
        let (mut d, list, len) = {
            let (d, list, len) = fifo(5);
            (d, list, len)
        };
        let i = d.int("i", 0, 6);
        let mut s = d.initial_store();
        for e in [3, 1, 4] {
            enqueue(list, len, Expr::konst(e))
                .execute(&d, &mut s, &[])
                .unwrap();
        }
        assert_eq!(s.get(len), 3);
        // front == 3, tail == 4 (paper's front()/tail()).
        assert_eq!(s.get_index(&d, list, 0).unwrap(), 3);
        assert_eq!(s.get_index(&d, list, s.get(len) - 1).unwrap(), 4);
        dequeue(list, len, i).execute(&d, &mut s, &[]).unwrap();
        assert_eq!(s.get(len), 2);
        assert_eq!(s.get_index(&d, list, 0).unwrap(), 1);
        assert_eq!(s.get_index(&d, list, 1).unwrap(), 4);
        assert_eq!(s.get_index(&d, list, 2).unwrap(), 0);
    }

    #[test]
    fn if_else_branches() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 9);
        let mut s = d.initial_store();
        let stmt = Stmt::if_else(
            Expr::var(a).eq(Expr::konst(0)),
            Stmt::assign(a, Expr::konst(5)),
            Stmt::assign(a, Expr::konst(9)),
        );
        stmt.execute(&d, &mut s, &[]).unwrap();
        assert_eq!(s.get(a), 5);
        stmt.execute(&d, &mut s, &[]).unwrap();
        assert_eq!(s.get(a), 9);
    }

    #[test]
    fn runaway_loop_exhausts_fuel() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 9);
        let mut s = d.initial_store();
        let stmt = Stmt::while_loop(Expr::truth(), Stmt::assign(a, Expr::var(a)));
        assert_eq!(stmt.execute(&d, &mut s, &[]), Err(EvalError::FuelExhausted));
    }

    #[test]
    fn range_violation_aborts() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 3);
        let mut s = d.initial_store();
        let stmt = Stmt::assign(a, Expr::konst(4));
        assert!(matches!(
            stmt.execute(&d, &mut s, &[]),
            Err(EvalError::RangeViolation { .. })
        ));
    }

    #[test]
    fn selects_flow_into_updates() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 99);
        let mut s = d.initial_store();
        let stmt = Stmt::assign(a, Expr::select(0) * Expr::konst(2));
        stmt.execute(&d, &mut s, &[21]).unwrap();
        assert_eq!(s.get(a), 42);
    }
}
