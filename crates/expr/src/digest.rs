//! [`StableDigest`] implementations for the data language, so models
//! embedding expressions and updates can be fingerprinted for the
//! verdict cache.
//!
//! Digests follow structure, not names: variables hash by index,
//! bounds, length and initial values, because two models that differ
//! only in variable *names* have identical semantics and should share
//! cache entries. Operator and constructor tags separate domains so
//! `a + b` and `a - b` (or `Assign` and `AssignIndex`) cannot collide.

use crate::{BinOp, Decls, Expr, Stmt, UnOp, VarId};
use tempo_obs::{StableDigest, StableHasher};

impl StableDigest for VarId {
    fn digest(&self, h: &mut StableHasher) {
        h.write_usize(self.index());
    }
}

impl StableDigest for BinOp {
    fn digest(&self, h: &mut StableHasher) {
        let tag = match self {
            BinOp::Add => 0u8,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Rem => 4,
            BinOp::Min => 5,
            BinOp::Max => 6,
            BinOp::Lt => 7,
            BinOp::Le => 8,
            BinOp::Gt => 9,
            BinOp::Ge => 10,
            BinOp::Eq => 11,
            BinOp::Ne => 12,
            BinOp::And => 13,
            BinOp::Or => 14,
        };
        h.write_u8(tag);
    }
}

impl StableDigest for UnOp {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            UnOp::Neg => 0,
            UnOp::Not => 1,
        });
    }
}

impl StableDigest for Expr {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            Expr::Const(v) => {
                h.write_u8(0);
                h.write_i64(*v);
            }
            Expr::Var(id) => {
                h.write_u8(1);
                id.digest(h);
            }
            Expr::Index(id, idx) => {
                h.write_u8(2);
                id.digest(h);
                idx.digest(h);
            }
            Expr::Select(k) => {
                h.write_u8(3);
                h.write_usize(*k);
            }
            Expr::Unary(op, e) => {
                h.write_u8(4);
                op.digest(h);
                e.digest(h);
            }
            Expr::Binary(op, l, r) => {
                h.write_u8(5);
                op.digest(h);
                l.digest(h);
                r.digest(h);
            }
        }
    }
}

impl StableDigest for Stmt {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            Stmt::Skip => h.write_u8(0),
            Stmt::Assign(var, e) => {
                h.write_u8(1);
                var.digest(h);
                e.digest(h);
            }
            Stmt::AssignIndex(var, idx, e) => {
                h.write_u8(2);
                var.digest(h);
                idx.digest(h);
                e.digest(h);
            }
            Stmt::Seq(stmts) => {
                h.write_u8(3);
                stmts.digest(h);
            }
            Stmt::If(cond, then, otherwise) => {
                h.write_u8(4);
                cond.digest(h);
                then.digest(h);
                otherwise.digest(h);
            }
            Stmt::While(cond, body) => {
                h.write_u8(5);
                cond.digest(h);
                body.digest(h);
            }
        }
    }
}

impl StableDigest for Decls {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("decls");
        h.write_usize(self.len());
        let init = self.initial_store();
        for info in self.vars() {
            // Names are diagnostics only — hash shape and initial
            // values, not identifiers.
            h.write_i64(info.lo);
            h.write_i64(info.hi);
            h.write_usize(info.len);
            h.write_bool(info.is_array);
            for k in 0..info.len {
                h.write_i64(init.as_slice()[info.offset() + k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_obs::Fingerprint;

    #[test]
    fn renaming_variables_preserves_fingerprint() {
        let mut a = Decls::new();
        a.int("x", 0, 5);
        let mut b = Decls::new();
        b.int("renamed", 0, 5);
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));

        let mut c = Decls::new();
        c.int("x", 0, 6);
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&c));
    }

    #[test]
    fn expression_structure_is_distinguished() {
        let mut d = Decls::new();
        let x = d.int("x", 0, 5);
        let add = Expr::var(x) + Expr::konst(1);
        let sub = Expr::var(x) - Expr::konst(1);
        assert_ne!(Fingerprint::of(&add), Fingerprint::of(&sub));
        assert_eq!(
            Fingerprint::of(&(Expr::var(x) + Expr::konst(1))),
            Fingerprint::of(&add)
        );
    }

    #[test]
    fn statements_are_distinguished_by_shape() {
        let mut d = Decls::new();
        let x = d.int("x", 0, 5);
        let s1 = Stmt::assign(x, Expr::konst(1));
        let s2 = Stmt::seq(vec![Stmt::assign(x, Expr::konst(1))]);
        assert_ne!(Fingerprint::of(&s1), Fingerprint::of(&s2));
    }
}
