//! Variable declarations and value stores.

use crate::EvalError;
use std::fmt;

/// Identifier of a declared variable (scalar or array) in a [`Decls`]
/// table. Carries the variable's offset into the flattened [`Store`] so
/// that scalar reads need no table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId {
    pub(crate) idx: u32,
    pub(crate) offset: u32,
}

impl VarId {
    /// The position of this variable in its declaration table.
    #[must_use]
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// Metadata for one declared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (for diagnostics and traces).
    pub name: String,
    /// Inclusive lower bound of every element.
    pub lo: i64,
    /// Inclusive upper bound of every element.
    pub hi: i64,
    /// Number of elements: `1` for scalars, the array length otherwise.
    pub len: usize,
    /// Whether the variable was declared as an array.
    pub is_array: bool,
    /// Offset of the first element in the flattened [`Store`].
    offset: usize,
}

impl VarInfo {
    /// Offset of the first element in the flattened store.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }
}

/// A declaration table: the static part of a model's data state.
///
/// Variables are bounded integers (`int[lo, hi]` in UPPAAL notation) or
/// fixed-length arrays of bounded integers. All variables start at their
/// lower bound clamped to `0` if `0` is in range, matching UPPAAL's
/// default initialization to `0`; use [`Decls::int_init`] for other
/// initial values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Decls {
    vars: Vec<VarInfo>,
    inits: Vec<i64>,
}

impl Decls {
    /// Creates an empty declaration table.
    #[must_use]
    pub fn new() -> Self {
        Decls::default()
    }

    /// Declares a scalar bounded integer `name : int[lo, hi]`, initialized
    /// to `0` if in range, otherwise to `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int(&mut self, name: &str, lo: i64, hi: i64) -> VarId {
        let init = if lo <= 0 && 0 <= hi { 0 } else { lo };
        self.int_init(name, lo, hi, init)
    }

    /// Declares a scalar bounded integer with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `init` is out of range.
    pub fn int_init(&mut self, name: &str, lo: i64, hi: i64, init: i64) -> VarId {
        assert!(lo <= hi, "empty range for {name}");
        assert!(
            lo <= init && init <= hi,
            "initial value of {name} out of range"
        );
        let offset = self.inits.len();
        self.vars.push(VarInfo {
            name: name.to_owned(),
            lo,
            hi,
            len: 1,
            is_array: false,
            offset,
        });
        self.inits.push(init);
        VarId {
            idx: (self.vars.len() - 1) as u32,
            offset: offset as u32,
        }
    }

    /// Declares an array `name : int[lo, hi][len]` with all elements
    /// initialized to `0` if in range, otherwise to `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `len == 0`.
    pub fn array(&mut self, name: &str, len: usize, lo: i64, hi: i64) -> VarId {
        assert!(lo <= hi, "empty range for {name}");
        assert!(len > 0, "zero-length array {name}");
        let init = if lo <= 0 && 0 <= hi { 0 } else { lo };
        let offset = self.inits.len();
        self.vars.push(VarInfo {
            name: name.to_owned(),
            lo,
            hi,
            len,
            is_array: true,
            offset,
        });
        self.inits.extend(std::iter::repeat_n(init, len));
        VarId {
            idx: (self.vars.len() - 1) as u32,
            offset: offset as u32,
        }
    }

    /// Metadata for a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    #[must_use]
    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.vars[id.idx as usize]
    }

    /// All declared variables, in declaration order.
    #[must_use]
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Number of declared variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// The [`VarId`] of the `i`-th declared variable (declaration
    /// order, as in [`Decls::vars`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn id_at(&self, i: usize) -> VarId {
        VarId {
            idx: u32::try_from(i).expect("variable index fits u32"),
            offset: u32::try_from(self.vars[i].offset).expect("store offset fits u32"),
        }
    }

    /// Iterates the ids of all declared variables in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(|i| self.id_at(i))
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The store holding every variable's initial value.
    #[must_use]
    pub fn initial_store(&self) -> Store {
        Store {
            values: self.inits.clone(),
        }
    }

    /// Looks up a variable by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId {
                idx: i as u32,
                offset: self.vars[i].offset as u32,
            })
    }
}

/// A snapshot of all variable values: the discrete data part of a model
/// state. Cheap to clone and hashable, so it can key passed/waiting lists.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Store {
    values: Vec<i64>,
}

impl Store {
    /// Reads a scalar variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the declaration table this store
    /// was created from. Reading an array variable returns its first
    /// element.
    #[must_use]
    pub fn get(&self, id: VarId) -> i64 {
        self.values[id.offset as usize]
    }

    /// Reads element `index` of an array variable (also works for scalars
    /// with `index == 0`).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::IndexOutOfBounds`] if the index is outside the
    /// array.
    pub fn get_index(&self, decls: &Decls, id: VarId, index: i64) -> Result<i64, EvalError> {
        let info = decls.info(id);
        if index < 0 || index as usize >= info.len {
            return Err(EvalError::IndexOutOfBounds {
                var: id,
                index,
                len: info.len,
            });
        }
        Ok(self.values[info.offset + index as usize])
    }

    /// Writes element `index` of a variable, checking both the index and
    /// the declared value range.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::IndexOutOfBounds`] or
    /// [`EvalError::RangeViolation`].
    pub fn set_index(
        &mut self,
        decls: &Decls,
        id: VarId,
        index: i64,
        value: i64,
    ) -> Result<(), EvalError> {
        let info = decls.info(id);
        if index < 0 || index as usize >= info.len {
            return Err(EvalError::IndexOutOfBounds {
                var: id,
                index,
                len: info.len,
            });
        }
        if value < info.lo || value > info.hi {
            return Err(EvalError::RangeViolation {
                var: id,
                value,
                lo: info.lo,
                hi: info.hi,
            });
        }
        self.values[info.offset + index as usize] = value;
        Ok(())
    }

    /// Raw flattened values (ordering follows declaration order).
    #[must_use]
    pub fn as_slice(&self) -> &[i64] {
        &self.values
    }

    /// Reconstructs a store from flattened values, the inverse of
    /// [`Store::as_slice`] — for deserializing spilled states. The
    /// caller is responsible for the values matching the declaration
    /// table they will be read against.
    #[must_use]
    pub fn from_values(values: Vec<i64>) -> Self {
        Store { values }
    }
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Store{:?}", self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_and_initials() {
        let mut d = Decls::new();
        let a = d.int("a", -5, 5);
        let b = d.int_init("b", 1, 10, 7);
        let arr = d.array("arr", 3, 0, 100);
        let s = d.initial_store();
        assert_eq!(s.get(a), 0);
        assert_eq!(s.get_index(&d, b, 0).unwrap(), 7);
        assert_eq!(s.get_index(&d, arr, 2).unwrap(), 0);
        assert_eq!(d.lookup("arr"), Some(arr));
        assert_eq!(d.lookup("nope"), None);
    }

    #[test]
    fn range_checks() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 3);
        let mut s = d.initial_store();
        assert!(s.set_index(&d, a, 0, 3).is_ok());
        let err = s.set_index(&d, a, 0, 4).unwrap_err();
        assert!(matches!(err, EvalError::RangeViolation { value: 4, .. }));
    }

    #[test]
    fn index_checks() {
        let mut d = Decls::new();
        let arr = d.array("arr", 2, 0, 9);
        let mut s = d.initial_store();
        assert!(s.set_index(&d, arr, 1, 9).is_ok());
        assert!(matches!(
            s.set_index(&d, arr, 2, 0),
            Err(EvalError::IndexOutOfBounds { index: 2, .. })
        ));
        assert!(matches!(
            s.get_index(&d, arr, -1),
            Err(EvalError::IndexOutOfBounds { index: -1, .. })
        ));
    }

    #[test]
    fn stores_hashable_and_comparable() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 9);
        let s1 = d.initial_store();
        let mut s2 = d.initial_store();
        assert_eq!(s1, s2);
        s2.set_index(&d, a, 0, 1).unwrap();
        assert_ne!(s1, s2);
    }
}
