//! Corpus harness: every graded problem under `corpus/` must produce
//! its expected verdict, its documented exit code, and a schema-valid
//! `tempo-result v1` document — byte-identically across worker counts.
//!
//! The harness spawns the real `tempo` binary (`CARGO_BIN_EXE_tempo`),
//! so it exercises the full pipeline: argument parsing, file IO, the
//! frontend, svc admission, engines, and the JSON writer.

use std::path::{Path, PathBuf};
use std::process::Command;

use tempo_lang::{parse_header, Expectation, Json};

/// The repository's corpus directory, resolved from this crate.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// All `.tempo` problems, sorted so failures are reported in tier order.
fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tempo"))
        .collect();
    files.sort();
    assert!(files.len() >= 20, "corpus should hold the graded problem set");
    files
}

struct RunResult {
    code: i32,
    doc: Json,
}

/// Runs `tempo check` on one corpus file and parses the emitted
/// result document.
fn run_tempo(file: &Path, engine: Option<&str>, threads: u32) -> RunResult {
    let json_path = std::env::temp_dir().join(format!(
        "tempo-corpus-{}-{}-t{threads}.json",
        std::process::id(),
        file.file_stem().unwrap().to_string_lossy(),
    ));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tempo"));
    cmd.arg("check")
        .arg(file)
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--json")
        .arg(&json_path);
    if let Some(engine) = engine {
        cmd.arg("--engine").arg(engine);
    }
    let output = cmd.output().expect("spawn tempo binary");
    let code = output.status.code().expect("tempo exited with a code");
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| panic!("{}: result document missing: {e}", file.display()));
    let _ = std::fs::remove_file(&json_path);
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| panic!("{}: result document is not valid JSON: {e}", file.display()));
    RunResult { code, doc }
}

/// Drops the two documented nondeterministic fields — `duration_ms`
/// and each assert's cache `source` tag — so documents from different
/// runs can be compared byte-for-byte.
fn normalize(doc: &Json) -> Json {
    match doc {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "duration_ms" && k != "source")
                .map(|(k, v)| (k.clone(), normalize(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(normalize).collect()),
        other => other.clone(),
    }
}

/// Checks the fixed scaffolding of a `tempo-result v1` document.
fn assert_schema(file: &Path, r: &RunResult) {
    let name = file.display();
    let doc = &r.doc;
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("tempo-result v1"),
        "{name}: schema tag"
    );
    assert!(doc.get("file").and_then(Json::as_str).is_some(), "{name}: file field");
    let sha = doc
        .get("input_sha256")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{name}: input_sha256 missing"));
    assert_eq!(sha.len(), 64, "{name}: sha256 is 64 hex chars");
    assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "{name}: sha256 is hex");
    assert!(doc.get("seed").and_then(Json::as_num).is_some(), "{name}: seed field");
    assert!(doc.get("engine").and_then(Json::as_str).is_some(), "{name}: engine field");
    let status = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{name}: status missing"));
    let exit_code = doc
        .get("exit_code")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{name}: exit_code missing"));
    #[allow(clippy::cast_possible_truncation)]
    let exit_code = exit_code as i32;
    assert_eq!(exit_code, r.code, "{name}: exit_code field matches process exit");
    assert!(
        doc.get("duration_ms").and_then(Json::as_num).is_some(),
        "{name}: duration_ms field"
    );
    let asserts = doc
        .get("asserts")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{name}: asserts array missing"));
    for (i, a) in asserts.iter().enumerate() {
        assert!(
            a.get("index").and_then(Json::as_num).is_some(),
            "{name}: assert {i} index"
        );
        assert!(a.get("query").and_then(Json::as_str).is_some(), "{name}: assert {i} query");
        assert!(
            a.get("engine").and_then(Json::as_str).is_some(),
            "{name}: assert {i} engine"
        );
        assert!(
            a.get("status").and_then(Json::as_str).is_some(),
            "{name}: assert {i} status"
        );
    }
    if status == "pass" || status == "fail" {
        assert!(
            doc.get("model_fingerprint").and_then(Json::as_str).is_some(),
            "{name}: model_fingerprint on a checked model"
        );
    }
    if status == "parse-error" || status == "lint-error" {
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("{name}: error object missing"));
        assert!(error.get("code").and_then(Json::as_str).is_some(), "{name}: error code");
        assert!(
            error.get("message").and_then(Json::as_str).is_some(),
            "{name}: error message"
        );
    }
}

/// The 0-based indices of failing asserts in a result document.
fn failing_indices(doc: &Json) -> Vec<usize> {
    doc.get("asserts")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter(|a| a.get("status").and_then(Json::as_str) == Some("fail"))
        .map(|a| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = a.get("index").and_then(Json::as_num).expect("assert index") as usize;
            idx
        })
        .collect()
}

/// Every corpus problem produces its expected verdict, exit code and a
/// schema-valid result document.
#[test]
fn corpus_expected_verdicts() {
    for file in corpus_files() {
        let source = std::fs::read_to_string(&file).expect("readable corpus file");
        let header = parse_header(&source)
            .unwrap_or_else(|e| panic!("{}: bad corpus header: {e}", file.display()));
        let r = run_tempo(&file, header.engine.as_deref(), 2);
        assert_schema(&file, &r);
        let name = file.display();
        let status = r.doc.get("status").and_then(Json::as_str).unwrap();
        match &header.expect {
            Expectation::Pass => {
                assert_eq!(r.code, 0, "{name}: expected pass");
                assert_eq!(status, "pass", "{name}: status");
                assert!(failing_indices(&r.doc).is_empty(), "{name}: no failing asserts");
            }
            Expectation::Fail(indices) => {
                assert_eq!(r.code, 1, "{name}: expected fail");
                assert_eq!(status, "fail", "{name}: status");
                assert_eq!(
                    &failing_indices(&r.doc),
                    indices,
                    "{name}: exactly the graded asserts fail"
                );
            }
            Expectation::ParseError => {
                assert_eq!(r.code, 2, "{name}: expected parse-error");
                assert_eq!(status, "parse-error", "{name}: status");
            }
            Expectation::LintError => {
                assert_eq!(r.code, 3, "{name}: expected lint-error");
                assert_eq!(status, "lint-error", "{name}: status");
            }
        }
    }
}

/// Verdicts are byte-identical across worker counts: a 1-worker and a
/// 4-worker run emit the same document modulo `duration_ms` and cache
/// `source` tags.
#[test]
fn corpus_deterministic_across_worker_counts() {
    for file in corpus_files() {
        let source = std::fs::read_to_string(&file).expect("readable corpus file");
        let header = parse_header(&source).expect("graded header");
        let one = run_tempo(&file, header.engine.as_deref(), 1);
        let four = run_tempo(&file, header.engine.as_deref(), 4);
        assert_eq!(one.code, four.code, "{}: exit code is worker-count independent", file.display());
        assert_eq!(
            normalize(&one.doc).render(),
            normalize(&four.doc).render(),
            "{}: result document is worker-count independent",
            file.display()
        );
    }
}

/// Malformed command lines exit with the documented usage code.
#[test]
fn usage_errors_exit_6() {
    let bad: &[&[&str]] = &[
        &["frobnicate"],
        &["check"],
        &["check", "a.tempo", "--engine", "quantum"],
        &["check", "a.tempo", "--threads", "0"],
        &["check", "a.tempo", "--budget", "states=many"],
    ];
    for argv in bad {
        let out = Command::new(env!("CARGO_BIN_EXE_tempo"))
            .args(*argv)
            .output()
            .expect("spawn tempo binary");
        assert_eq!(out.status.code(), Some(6), "argv {argv:?} should be a usage error");
    }
}

/// An out-of-range `--assert` index is a usage error, reported through
/// the result document as well as the exit code.
#[test]
fn out_of_range_assert_index_exits_6() {
    let file = corpus_dir().join("P100_handshake.tempo");
    let out = Command::new(env!("CARGO_BIN_EXE_tempo"))
        .args(["check", file.to_str().unwrap(), "--assert", "99", "--json", "-"])
        .output()
        .expect("spawn tempo binary");
    assert_eq!(out.status.code(), Some(6), "out-of-range assert index");
    let text = String::from_utf8(out.stdout).expect("utf8 stdout");
    let json_start = text.find('{').expect("result document on stdout");
    let doc = Json::parse(&text[json_start..]).expect("valid result document");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("usage"));
}

/// A missing input file is an IO error (exit 7), not a crash.
#[test]
fn missing_file_exits_7() {
    let out = Command::new(env!("CARGO_BIN_EXE_tempo"))
        .args(["check", "/nonexistent/no-such-model.tempo"])
        .output()
        .expect("spawn tempo binary");
    assert_eq!(out.status.code(), Some(7), "missing input file");
}

/// `--help` and `--version` succeed and print something sensible.
#[test]
fn help_and_version() {
    let help = Command::new(env!("CARGO_BIN_EXE_tempo"))
        .arg("--help")
        .output()
        .expect("spawn tempo binary");
    assert_eq!(help.status.code(), Some(0));
    let text = String::from_utf8(help.stdout).expect("utf8 help");
    assert!(text.contains("tempo check"), "usage mentions the check subcommand");
    assert!(text.contains("--json"), "usage documents --json");

    let version = Command::new(env!("CARGO_BIN_EXE_tempo"))
        .arg("--version")
        .output()
        .expect("spawn tempo binary");
    assert_eq!(version.status.code(), Some(0));
    let text = String::from_utf8(version.stdout).expect("utf8 version");
    assert!(text.starts_with("tempo "), "version line starts with the tool name");
}

/// Inside one service, resubmitting a corpus query hits the warm
/// verdict cache — and the cached verdict renders identically to the
/// computed one.
#[test]
fn warm_svc_cache_hit_renders_identically() {
    use std::sync::Arc;

    let file = corpus_dir().join("P100_handshake.tempo");
    let source = std::fs::read_to_string(&file).expect("readable corpus file");
    let model = tempo_lang::parse(&source).expect("corpus model parses");
    let set = tempo_lang::build(&model).expect("corpus model elaborates");
    let net = Arc::new(tempo_lang::to_network(&set).expect("network substrate"));

    let svc = tempo_svc::AnalysisService::new(tempo_svc::ServiceConfig::default());
    let submit = || {
        svc.submit(tempo_svc::JobRequest {
            tenant: "corpus".to_owned(),
            priority: 0,
            budget: tempo_obs::Budget::unlimited(),
            kind: tempo_svc::JobKind::DeadlockFree {
                net: Arc::clone(&net),
                explore: tempo_ta::ExploreConfig::default(),
            },
        })
        .expect("admitted")
        .wait()
        .expect("job succeeds")
    };
    let cold = submit();
    let warm = submit();
    assert_eq!(warm.source, tempo_svc::VerdictSource::MemoryHit, "second run is a cache hit");
    assert_eq!(
        cold.verdict.render(),
        warm.verdict.render(),
        "cached verdict renders bit-exactly"
    );
    svc.shutdown();
}

/// Re-checking the same file in one process yields the same document:
/// the second invocation is served from the warm svc verdict cache but
/// must render identically.
#[test]
fn warm_cache_rerun_is_byte_identical() {
    let file = corpus_dir().join("P200_train_gate.tempo");
    let cold = run_tempo(&file, None, 2);
    let warm = run_tempo(&file, None, 2);
    assert_eq!(cold.code, warm.code);
    assert_eq!(
        normalize(&cold.doc).render(),
        normalize(&warm.doc).render(),
        "re-run emits a byte-identical document"
    );
}
