//! The `tempo check` pipeline: read → parse → elaborate → route each
//! assert through the analysis service → aggregate → render.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use tempo_lang::ast::{AssertKind, CmpOp, Formula};
use tempo_lang::machine::MachineSet;
use tempo_lang::{Json, ParseError};
use tempo_mdp::Opt;
use tempo_obs::{ExploreConfig, Fingerprint, RunReport};
use tempo_smc::RatePolicy;
use tempo_svc::{
    AnalysisService, JobError, JobKind, JobRequest, JobVerdict, Rejected, ServiceConfig,
    VerdictSource,
};
use tempo_ta::{Network, StateFormula};

use crate::args::{CheckArgs, Engine};
use crate::Status;

/// Resident-state budget used when `--spill` is given: small enough to
/// actually exercise the out-of-core path on mid-sized models, large
/// enough that toy models never touch the disk.
const SPILL_RESIDENT: usize = 4096;

/// SMC defaults mirrored from the assert grammar's documentation.
const DEFAULT_RUNS: usize = 2000;
const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Value-iteration tolerance for `Pmax`/`Pmin` certificate validation.
const MCPTA_EPSILON: f64 = 1e-9;

/// The outcome of one assert line.
struct AssertOutcome {
    index: usize,
    query: String,
    engine: String,
    status: Status,
    verdict: Option<String>,
    value: Option<f64>,
    source: Option<&'static str>,
    report: Option<RunReport>,
    message: Option<String>,
}

/// Everything `tempo check` produced: the process exit status, the
/// versioned result document, and the human-readable summary.
pub struct CheckOutcome {
    /// Worst status across the run; its code is the process exit code.
    pub status: Status,
    /// The `tempo-result v1` document.
    pub doc: Json,
    /// Human-readable per-assert summary for the terminal.
    pub human: String,
}

/// One elaborated model, lowered lazily onto each substrate so a
/// parse-only invocation never pays for compilation and every assert
/// sharing a substrate shares one lowering.
struct Substrates<'a> {
    set: &'a MachineSet,
    net: Option<Result<Arc<Network>, ParseError>>,
    pta: Option<Result<Arc<tempo_modest::Pta>, ParseError>>,
    mctau_net: Option<Result<Arc<Network>, ParseError>>,
    bip: Option<Result<Arc<tempo_bip::BipSystem>, ParseError>>,
}

impl<'a> Substrates<'a> {
    fn new(set: &'a MachineSet) -> Self {
        Substrates {
            set,
            net: None,
            pta: None,
            mctau_net: None,
            bip: None,
        }
    }

    fn net(&mut self) -> Result<Arc<Network>, ParseError> {
        self.net
            .get_or_insert_with(|| tempo_lang::to_network(self.set).map(Arc::new))
            .clone()
    }

    fn pta(&mut self) -> Result<Arc<tempo_modest::Pta>, ParseError> {
        self.pta
            .get_or_insert_with(|| {
                tempo_lang::to_modest(self.set).map(|m| Arc::new(tempo_modest::compile(&m)))
            })
            .clone()
    }

    fn mctau_net(&mut self) -> Result<Arc<Network>, ParseError> {
        let pta = self.pta()?;
        self.mctau_net
            .get_or_insert_with(|| Ok(Arc::new(tempo_modest::Mctau::new(&pta).network().clone())))
            .clone()
    }

    fn bip(&mut self) -> Result<Arc<tempo_bip::BipSystem>, ParseError> {
        self.bip
            .get_or_insert_with(|| tempo_lang::to_bip(self.set).map(Arc::new))
            .clone()
    }
}

/// How a verdict decides the assert: which boolean it must carry, or
/// how a numeric value compares against the assert's threshold.
enum Decide {
    /// Assert holds iff the verdict's boolean equals this.
    Bool(bool),
    /// Assert holds iff `cmp(value, threshold)` on the verdict's number.
    Value(CmpOp, f64),
}

fn cmp_holds(v: f64, op: CmpOp, p: f64) -> bool {
    match op {
        CmpOp::Le => v <= p,
        CmpOp::Lt => v < p,
        CmpOp::Ge => v >= p,
        CmpOp::Gt => v > p,
        CmpOp::Eq => (v - p).abs() < f64::EPSILON,
        CmpOp::Ne => (v - p).abs() >= f64::EPSILON,
    }
}

/// Extracts (holds, numeric value) from a verdict under a decision
/// rule; `None` when the verdict kind does not match the rule (an
/// engine bug, surfaced as an engine error).
fn decide(verdict: &JobVerdict, rule: &Decide) -> Option<(bool, Option<f64>)> {
    match (rule, verdict) {
        (Decide::Bool(want), JobVerdict::DeadlockFree(b))
        | (Decide::Bool(want), JobVerdict::Reachable(b))
        | (Decide::Bool(want), JobVerdict::LeadsTo(b))
        | (Decide::Bool(want), JobVerdict::Refines(b))
        | (Decide::Bool(want), JobVerdict::Ioco(b))
        | (Decide::Bool(want), JobVerdict::BipDeadlock(b)) => Some((b == want, None)),
        (Decide::Value(op, p), JobVerdict::McptaValue(v)) => {
            Some((cmp_holds(*v, *op, *p), Some(*v)))
        }
        (Decide::Value(op, p), JobVerdict::Probability(e)) => {
            Some((cmp_holds(e.mean, *op, *p), Some(e.mean)))
        }
        _ => None,
    }
}

/// A job ready for submission, paired with its decision rule.
struct Plan {
    kind: JobKind,
    rule: Decide,
}

/// Why an assert could not be planned.
enum PlanError {
    /// The assert kind and the forced engine are incompatible.
    Usage(String),
    /// Elaboration onto the required substrate failed (`TLxxx`).
    Parse(ParseError),
}

impl From<ParseError> for PlanError {
    fn from(e: ParseError) -> Self {
        PlanError::Parse(e)
    }
}

fn goal_on_net(
    set: &MachineSet,
    net: &Network,
    f: &Formula,
) -> Result<StateFormula, ParseError> {
    tempo_lang::lower_formula_network(set, net, f)
}

/// Routes one assert to a job. `Auto` picks the natural engine; a
/// forced engine either matches or is refused as a usage error.
fn plan(
    idx: usize,
    kind: &AssertKind,
    sub: &mut Substrates<'_>,
    args: &CheckArgs,
    explore: &ExploreConfig,
) -> Result<Plan, PlanError> {
    let set = sub.set;
    let misroute = |want: &str| {
        PlanError::Usage(format!(
            "assert {idx} needs engine {want} but --engine {} was forced",
            args.engine
        ))
    };
    match (kind, args.engine) {
        (AssertKind::DeadlockFree, Engine::Auto | Engine::Ta) => Ok(Plan {
            kind: JobKind::DeadlockFree {
                net: sub.net()?,
                explore: explore.clone(),
            },
            rule: Decide::Bool(true),
        }),
        (AssertKind::DeadlockFree, Engine::Bip) => Ok(Plan {
            kind: JobKind::BipDeadlock { sys: sub.bip()? },
            // BIP reports deadlock *existence*; the assert wants absence.
            rule: Decide::Bool(false),
        }),
        (AssertKind::Reach(f) | AssertKind::Always(f), Engine::Auto | Engine::Ta) => {
            let net = sub.net()?;
            let goal = goal_on_net(set, &net, f)?;
            let (goal, want) = match kind {
                AssertKind::Reach(_) => (goal, true),
                _ => (StateFormula::Not(Box::new(goal)), false),
            };
            Ok(Plan {
                kind: JobKind::Reach {
                    net,
                    goal,
                    explore: explore.clone(),
                },
                rule: Decide::Bool(want),
            })
        }
        (AssertKind::Reach(f) | AssertKind::Always(f), Engine::Mctau) => {
            let pta = sub.pta()?;
            let net = sub.mctau_net()?;
            let goal = tempo_lang::lower_formula_pta(set, &pta, f)?;
            let (goal, want) = match kind {
                AssertKind::Reach(_) => (goal, true),
                _ => (StateFormula::Not(Box::new(goal)), false),
            };
            Ok(Plan {
                kind: JobKind::Reach {
                    net,
                    goal,
                    explore: explore.clone(),
                },
                rule: Decide::Bool(want),
            })
        }
        (AssertKind::LeadsTo(phi, psi), Engine::Auto | Engine::Ta) => {
            let net = sub.net()?;
            let phi = goal_on_net(set, &net, phi)?;
            let psi = goal_on_net(set, &net, psi)?;
            Ok(Plan {
                kind: JobKind::LeadsTo { net, phi, psi },
                rule: Decide::Bool(true),
            })
        }
        (AssertKind::Pmax(f, cmp, p) | AssertKind::Pmin(f, cmp, p), Engine::Auto | Engine::Mcpta) => {
            let pta = sub.pta()?;
            let goal = tempo_lang::lower_formula_pta(set, &pta, f)?;
            let opt = match kind {
                AssertKind::Pmax(..) => Opt::Max,
                _ => Opt::Min,
            };
            Ok(Plan {
                kind: JobKind::McptaReach {
                    pta,
                    opt,
                    goal,
                    epsilon: MCPTA_EPSILON,
                },
                rule: Decide::Value(*cmp, *p),
            })
        }
        (
            AssertKind::Pr {
                bound,
                goal,
                cmp,
                prob,
                opts,
            },
            Engine::Auto | Engine::Smc,
        ) => {
            let net = sub.net()?;
            let goal = goal_on_net(set, &net, goal)?;
            #[allow(clippy::cast_precision_loss)]
            let bound = set.eval_const(bound)? as f64;
            #[allow(clippy::cast_possible_truncation)]
            let runs = opts.runs.map_or(DEFAULT_RUNS, |r| r as usize);
            Ok(Plan {
                kind: JobKind::Probability {
                    net,
                    rates: RatePolicy::new(),
                    seed: args.seed,
                    goal,
                    bound,
                    runs,
                    confidence: opts.confidence.unwrap_or(DEFAULT_CONFIDENCE),
                },
                rule: Decide::Value(*cmp, *prob),
            })
        }
        (AssertKind::Refines(imp, spec), Engine::Auto | Engine::Ecdar) => Ok(Plan {
            kind: JobKind::Refines {
                imp: Arc::new(tempo_lang::to_tioa(set, &imp.name)?),
                spec: Arc::new(tempo_lang::to_tioa(set, &spec.name)?),
            },
            rule: Decide::Bool(true),
        }),
        (AssertKind::Ioco(imp, spec), Engine::Auto | Engine::Ioco) => Ok(Plan {
            kind: JobKind::Ioco {
                imp: Arc::new(tempo_lang::to_lts(set, &imp.name)?),
                spec: Arc::new(tempo_lang::to_lts(set, &spec.name)?),
            },
            rule: Decide::Bool(true),
        }),
        (AssertKind::DeadlockFree | AssertKind::LeadsTo(..), _) => Err(misroute("ta or bip")),
        (AssertKind::Reach(_) | AssertKind::Always(_), _) => Err(misroute("ta or mctau")),
        (AssertKind::Pmax(..) | AssertKind::Pmin(..), _) => Err(misroute("mcpta")),
        (AssertKind::Pr { .. }, _) => Err(misroute("smc")),
        (AssertKind::Refines(..), _) => Err(misroute("ecdar")),
        (AssertKind::Ioco(..), _) => Err(misroute("ioco")),
    }
}

fn source_tag(s: VerdictSource) -> &'static str {
    match s {
        VerdictSource::Computed => "computed",
        VerdictSource::MemoryHit => "memory-hit",
        VerdictSource::DiskHit => "disk-hit",
        VerdictSource::Coalesced => "coalesced",
    }
}

/// The source line of an assert, trimmed — the `query` field of the
/// result document (faithful to what the user wrote, no re-rendering).
fn query_text(source: &str, line: u32) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_owned()
}

fn error_json(code: &str, message: &str, span: Option<tempo_lang::Span>) -> Json {
    let mut fields = vec![
        ("code".to_owned(), Json::str(code)),
        ("message".to_owned(), Json::str(message)),
    ];
    if let Some(s) = span {
        fields.push(("line".to_owned(), Json::int(i64::from(s.line))));
        fields.push(("col".to_owned(), Json::int(i64::from(s.col))));
    }
    Json::Obj(fields)
}

fn report_json(r: &RunReport) -> Json {
    let n = |v: u64| Json::int(i64::try_from(v).unwrap_or(i64::MAX));
    Json::Obj(vec![
        ("states_explored".to_owned(), n(r.states_explored)),
        ("states_stored".to_owned(), n(r.states_stored)),
        ("sweeps".to_owned(), n(r.sweeps)),
        ("runs_simulated".to_owned(), n(r.runs_simulated)),
        ("dbm_dim".to_owned(), n(r.dbm_dim)),
        ("spilled_states".to_owned(), n(r.spilled_states)),
    ])
}

fn assert_json(a: &AssertOutcome) -> Json {
    let opt_str = |v: &Option<String>| v.as_deref().map_or(Json::Null, Json::str);
    Json::Obj(vec![
        (
            "index".to_owned(),
            Json::int(i64::try_from(a.index).unwrap_or(i64::MAX)),
        ),
        ("query".to_owned(), Json::str(&a.query)),
        ("engine".to_owned(), Json::str(&a.engine)),
        ("status".to_owned(), Json::str(a.status.label())),
        ("verdict".to_owned(), opt_str(&a.verdict)),
        (
            "value".to_owned(),
            // Bit-exact: the numeric value travels as its hex64 bit
            // pattern, like the verdict line's floats.
            a.value
                .map_or(Json::Null, |v| Json::str(&Fingerprint::hex64(v))),
        ),
        (
            "source".to_owned(),
            a.source.map_or(Json::Null, Json::str),
        ),
        (
            "report".to_owned(),
            a.report.as_ref().map_or(Json::Null, report_json),
        ),
        ("message".to_owned(), opt_str(&a.message)),
    ])
}

/// Assembles the full `tempo-result v1` document.
#[allow(clippy::too_many_arguments)]
fn result_doc(
    file: &str,
    sha: Option<&str>,
    fingerprint: Option<&str>,
    seed: u64,
    engine: Engine,
    status: Status,
    asserts: &[AssertOutcome],
    error: Json,
    duration_ms: u128,
) -> Json {
    Json::Obj(vec![
        ("schema".to_owned(), Json::str("tempo-result v1")),
        ("file".to_owned(), Json::str(file)),
        (
            "input_sha256".to_owned(),
            sha.map_or(Json::Null, Json::str),
        ),
        (
            "model_fingerprint".to_owned(),
            fingerprint.map_or(Json::Null, Json::str),
        ),
        (
            "seed".to_owned(),
            Json::int(i64::try_from(seed).unwrap_or(i64::MAX)),
        ),
        ("engine".to_owned(), Json::str(&engine.to_string())),
        ("status".to_owned(), Json::str(status.label())),
        (
            "exit_code".to_owned(),
            Json::int(i64::from(status.code())),
        ),
        (
            "asserts".to_owned(),
            Json::Arr(asserts.iter().map(assert_json).collect()),
        ),
        ("error".to_owned(), error),
        (
            "duration_ms".to_owned(),
            Json::int(i64::try_from(duration_ms).unwrap_or(i64::MAX)),
        ),
    ])
}

/// Runs `tempo check` end to end (everything except process exit and
/// the `--json` file write, which belong to `main`).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_check(args: &CheckArgs) -> CheckOutcome {
    let started = Instant::now();
    let file = args.file.display().to_string();
    let finish = |status: Status,
                  sha: Option<&str>,
                  fp: Option<&str>,
                  asserts: Vec<AssertOutcome>,
                  error: Json,
                  human: String| {
        let doc = result_doc(
            &file,
            sha,
            fp,
            args.seed,
            args.engine,
            status,
            &asserts,
            error,
            started.elapsed().as_millis(),
        );
        CheckOutcome { status, doc, human }
    };

    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            let msg = format!("cannot read {file}: {e}");
            return finish(
                Status::Io,
                None,
                None,
                Vec::new(),
                error_json("IO", &msg, None),
                format!("{file}: io-error: {e}\n"),
            );
        }
    };
    let sha = tempo_lang::sha256_hex(source.as_bytes());

    let parse_failure = |status: Status, e: &ParseError| {
        let human = format!("{file}:{}: {} {}\n", e.span, e.code, e.message);
        finish(
            status,
            Some(&sha),
            None,
            Vec::new(),
            error_json(e.code, &e.message, Some(e.span)),
            human,
        )
    };

    let model = match tempo_lang::parse(&source) {
        Ok(m) => m,
        Err(e) => return parse_failure(Status::ParseError, &e),
    };
    let set = match tempo_lang::build(&model) {
        Ok(s) => s,
        Err(e) => return parse_failure(Status::ParseError, &e),
    };

    let mut sub = Substrates::new(&set);
    let fingerprint = sub
        .net()
        .ok()
        .map(|net| Fingerprint::of(net.as_ref()).to_hex());

    // A model without asserts still passes the engines' static-analysis
    // gate, so `tempo check` on the lint tier of the corpus reports
    // lint errors without needing an assert to hang them on.
    if model.system.is_some() {
        if let Ok(net) = sub.net() {
            if let Err(e) =
                tempo_lint::check_network_first(&net, &tempo_lint::LintConfig::default())
            {
                let text = e.to_string();
                return finish(
                    Status::LintError,
                    Some(&sha),
                    fingerprint.as_deref(),
                    Vec::new(),
                    error_json("LINT", &text, None),
                    format!("{file}: lint-error: {text}\n"),
                );
            }
        }
    }

    let selected: Vec<usize> = match args.assert_index {
        Some(i) if i >= model.asserts.len() => {
            let msg = format!(
                "--assert {i} is out of range: the model has {} asserts",
                model.asserts.len()
            );
            return finish(
                Status::Usage,
                Some(&sha),
                fingerprint.as_deref(),
                Vec::new(),
                error_json("USAGE", &msg, None),
                format!("{file}: usage: {msg}\n"),
            );
        }
        Some(i) => vec![i],
        None => (0..model.asserts.len()).collect(),
    };

    let mut explore = ExploreConfig::default();
    if let Some(dir) = &args.spill {
        explore = explore.with_spill(dir.clone(), SPILL_RESIDENT);
    }

    // Plan every selected assert before spinning up workers: planning
    // errors (elaboration, misrouting) never waste engine time.
    let mut plans = Vec::new();
    for &idx in &selected {
        let a = &model.asserts[idx];
        let query = query_text(&source, a.span.line);
        match plan(idx, &a.kind, &mut sub, args, &explore) {
            Ok(p) => plans.push((idx, query, p)),
            Err(PlanError::Parse(e)) => return parse_failure(Status::ParseError, &e),
            Err(PlanError::Usage(msg)) => {
                return finish(
                    Status::Usage,
                    Some(&sha),
                    fingerprint.as_deref(),
                    Vec::new(),
                    error_json("USAGE", &msg, None),
                    format!("{file}: usage: {msg}\n"),
                );
            }
        }
    }

    let service = AnalysisService::new(ServiceConfig {
        workers: args.threads,
        ..ServiceConfig::default()
    });
    let mut outcomes: Vec<AssertOutcome> = Vec::new();
    let mut handles = Vec::new();
    for (idx, query, p) in plans {
        let engine = p.kind.engine_tag().to_owned();
        let submitted = service.submit(JobRequest {
            tenant: "cli".to_owned(),
            priority: 0,
            budget: args.budget.clone(),
            kind: p.kind,
        });
        handles.push((idx, query, engine, p.rule, submitted));
    }
    for (index, query, engine, rule, submitted) in handles {
        let mut outcome = AssertOutcome {
            index,
            query,
            engine,
            status: Status::EngineError,
            verdict: None,
            value: None,
            source: None,
            report: None,
            message: None,
        };
        match submitted {
            Err(Rejected::Lint(e)) => {
                outcome.status = Status::LintError;
                outcome.message = Some(e.to_string());
            }
            Err(r) => {
                outcome.status = Status::Rejected;
                outcome.message = Some(r.to_string());
            }
            Ok(handle) => match handle.wait() {
                Err(JobError::Exhausted(reason)) => {
                    outcome.status = Status::Exhausted;
                    outcome.message = Some(format!("budget exhausted: {reason}"));
                }
                Err(e) => {
                    outcome.status = Status::EngineError;
                    outcome.message = Some(e.to_string());
                }
                Ok(result) => {
                    outcome.verdict = Some(result.verdict.render());
                    outcome.source = Some(source_tag(result.source));
                    outcome.report = Some(result.report);
                    match decide(&result.verdict, &rule) {
                        Some((holds, value)) => {
                            outcome.status = if holds { Status::Pass } else { Status::Fail };
                            outcome.value = value;
                        }
                        None => {
                            outcome.status = Status::EngineError;
                            outcome.message =
                                Some("verdict kind does not match the assert".to_owned());
                        }
                    }
                }
            },
        }
        outcomes.push(outcome);
    }
    service.shutdown();

    // Error statuses dominate fail, fail dominates pass; among errors
    // the first failing assert (in assert order) picks the exit code,
    // which keeps the aggregate deterministic.
    let status = outcomes
        .iter()
        .map(|o| o.status)
        .find(|s| !matches!(s, Status::Pass | Status::Fail))
        .or_else(|| {
            outcomes
                .iter()
                .map(|o| o.status)
                .find(|s| matches!(s, Status::Fail))
        })
        .unwrap_or(Status::Pass);

    let mut human = String::new();
    for o in &outcomes {
        let detail = o
            .verdict
            .as_deref()
            .or(o.message.as_deref())
            .unwrap_or("");
        let _ = writeln!(
            human,
            "  assert {}: {}  {}  [{}{}]",
            o.index,
            o.status.label(),
            o.query,
            o.engine,
            o.source.map(|s| format!(", {s}")).unwrap_or_default(),
        );
        if !detail.is_empty() {
            let _ = writeln!(human, "    {detail}");
        }
    }
    let _ = writeln!(human, "{file}: {} (exit {})", status.label(), status.code());

    finish(
        status,
        Some(&sha),
        fingerprint.as_deref(),
        outcomes,
        Json::Null,
        human,
    )
}
