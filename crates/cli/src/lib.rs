//! `tempo-cli`: the `tempo` command-line frontend.
//!
//! `tempo check <file.tempo>` parses a `tempo-lang` model, elaborates
//! it onto the engine each `assert` line needs, routes every query
//! through the analysis service (`tempo-svc` — admission control, lint
//! gating, verdict cache), and reports one documented exit code plus an
//! optional versioned result document (`--json`).
//!
//! ## Exit codes and the `status` field
//!
//! | code | status         | meaning                                        |
//! |------|----------------|------------------------------------------------|
//! | 0    | `pass`         | every checked assert holds                     |
//! | 1    | `fail`         | at least one assert is violated                |
//! | 2    | `parse-error`  | lexing, parsing or elaboration failed (`TLxxx`)|
//! | 3    | `lint-error`   | the engine's static-analysis gate refused it   |
//! | 4    | `exhausted`    | a budget dimension ran out mid-analysis        |
//! | 5    | `rejected`     | service admission refused the job              |
//! | 6    | `usage`        | malformed command line or engine misrouting    |
//! | 7    | `io-error`     | input unreadable or output unwritable          |
//! | 8    | `engine-error` | the engine failed (or was cancelled)           |
//!
//! The result document is versioned (`"schema": "tempo-result v1"`) and
//! deterministic apart from `duration_ms` and each assert's cache
//! `source` tag: verdict strings (floats as `hex64` bit patterns), the
//! input's SHA-256, and the model's structural fingerprint are
//! byte-identical across worker counts and warm-cache reruns.

pub mod args;
pub mod check;

pub use args::{parse_args, CheckArgs, Command, Engine, USAGE};
pub use check::{run_check, CheckOutcome};

/// Process-level outcome classes, in severity order. The numeric value
/// is the documented exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Every checked assert holds.
    Pass,
    /// At least one assert is violated.
    Fail,
    /// Lexing, parsing or elaboration failed (`TLxxx`).
    ParseError,
    /// The engine's static-analysis gate refused the model.
    LintError,
    /// A budget dimension ran out before the engine finished.
    Exhausted,
    /// Service admission refused the job (queue, quota, shutdown).
    Rejected,
    /// Malformed command line, bad assert index, engine misrouting.
    Usage,
    /// Input unreadable or output unwritable.
    Io,
    /// The engine failed or was cancelled.
    EngineError,
}

impl Status {
    /// The documented process exit code.
    #[must_use]
    pub fn code(self) -> i32 {
        match self {
            Status::Pass => 0,
            Status::Fail => 1,
            Status::ParseError => 2,
            Status::LintError => 3,
            Status::Exhausted => 4,
            Status::Rejected => 5,
            Status::Usage => 6,
            Status::Io => 7,
            Status::EngineError => 8,
        }
    }

    /// The `status` string of the result document.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Fail => "fail",
            Status::ParseError => "parse-error",
            Status::LintError => "lint-error",
            Status::Exhausted => "exhausted",
            Status::Rejected => "rejected",
            Status::Usage => "usage",
            Status::Io => "io-error",
            Status::EngineError => "engine-error",
        }
    }
}

/// Full CLI entry point: parse `argv`, run, print, return the exit
/// code. `main` stays a one-liner so integration tests can drive the
/// same path in-process.
#[must_use]
pub fn run(argv: &[String]) -> i32 {
    let cmd = match parse_args(argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("tempo: {msg}");
            eprintln!("{USAGE}");
            return Status::Usage.code();
        }
    };
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Status::Pass.code()
        }
        Command::Version => {
            println!("tempo {}", env!("CARGO_PKG_VERSION"));
            Status::Pass.code()
        }
        Command::Check(args) => {
            let outcome = run_check(&args);
            print!("{}", outcome.human);
            if let Some(path) = &args.json {
                let text = outcome.doc.render();
                if path.as_os_str() == "-" {
                    print!("{text}");
                } else if let Err(e) = std::fs::write(path, text) {
                    eprintln!("tempo: cannot write {}: {e}", path.display());
                    return Status::Io.code();
                }
            }
            outcome.status.code()
        }
    }
}
