//! The `tempo` binary: see [`tempo_cli`] for the library behind it.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(tempo_cli::run(&argv));
}
