//! Argument parsing for the `tempo` binary.
//!
//! Hand-rolled (the workspace vendors no CLI framework): a tiny
//! subcommand dispatcher over `tempo check <file> [flags]`, with every
//! malformed invocation mapped to [`Status::Usage`](crate::Status) by
//! the caller.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use tempo_obs::Budget;

/// Which engine substrate an assert is routed to.
///
/// `Auto` picks the natural engine per assert kind; the explicit values
/// force one (and invocations whose asserts the engine cannot express
/// are usage errors, not silent approximations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Pick per assert kind (the default).
    Auto,
    /// Zone-graph exploration on the timed-automata network.
    Ta,
    /// The digital-clocks network of the compiled MODEST model.
    Mctau,
    /// Untimed BIP interaction model (deadlock search).
    Bip,
    /// Digital-clocks MDP value iteration (`Pmax`/`Pmin`).
    Mcpta,
    /// Statistical model checking (`Pr[..]`).
    Smc,
    /// TIOA refinement (ECDAR).
    Ecdar,
    /// LTS conformance (ioco).
    Ioco,
}

impl Engine {
    fn parse(s: &str) -> Option<Engine> {
        Some(match s {
            "auto" => Engine::Auto,
            "ta" => Engine::Ta,
            "mctau" => Engine::Mctau,
            "bip" => Engine::Bip,
            "mcpta" => Engine::Mcpta,
            "smc" => Engine::Smc,
            "ecdar" => Engine::Ecdar,
            "ioco" => Engine::Ioco,
            _ => return None,
        })
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Auto => "auto",
            Engine::Ta => "ta",
            Engine::Mctau => "mctau",
            Engine::Bip => "bip",
            Engine::Mcpta => "mcpta",
            Engine::Smc => "smc",
            Engine::Ecdar => "ecdar",
            Engine::Ioco => "ioco",
        })
    }
}

/// A parsed `tempo check` invocation.
#[derive(Clone, Debug)]
pub struct CheckArgs {
    /// The `.tempo` source file.
    pub file: PathBuf,
    /// Check only this assert index (default: all).
    pub assert_index: Option<usize>,
    /// Engine routing.
    pub engine: Engine,
    /// Worker threads of the analysis service.
    pub threads: usize,
    /// Resource limits per assert.
    pub budget: Budget,
    /// Out-of-core scratch directory for the zone-graph engines.
    pub spill: Option<PathBuf>,
    /// Where to write the versioned result JSON (`-` for stdout).
    pub json: Option<PathBuf>,
    /// Simulation seed for statistical asserts.
    pub seed: u64,
}

/// What the command line asked for.
#[derive(Clone, Debug)]
pub enum Command {
    /// `tempo check ...`.
    Check(CheckArgs),
    /// `tempo help` / `--help`.
    Help,
    /// `tempo version` / `--version`.
    Version,
}

/// One-line usage synopsis plus the flag table, printed on `help` and
/// on usage errors.
pub const USAGE: &str = "\
usage: tempo check <file.tempo> [options]

options:
  --assert N         check only assert index N (0-based; default: all)
  --engine E         auto|ta|mctau|bip|mcpta|smc|ecdar|ioco (default: auto)
  --threads K        analysis-service worker threads (default: 2)
  --budget SPEC      comma list of states=N, iters=N, runs=N, time=Ns|Nms
  --spill DIR        spill zone-graph states past memory to DIR
  --json PATH        write the versioned result JSON to PATH (- = stdout)
  --seed N           simulation seed for Pr[..] asserts (default: 42)

exit codes:
  0 pass   1 fail   2 parse-error   3 lint-error   4 exhausted
  5 rejected   6 usage   7 io-error   8 engine-error
";

fn parse_budget(spec: &str) -> Result<Budget, String> {
    let mut b = Budget::unlimited();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("budget item `{part}` is not key=value"))?;
        let num = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("budget item `{part}` needs an integer value"))
        };
        match key {
            "states" => b.max_states = Some(num(value)?),
            "iters" => b.max_iterations = Some(num(value)?),
            "runs" => b.max_runs = Some(num(value)?),
            "time" => {
                let (digits, unit) = value.split_at(value.find(|c: char| !c.is_ascii_digit()).ok_or_else(|| format!("budget time `{value}` needs a unit (s or ms)"))?);
                let n = num(digits)?;
                b.wall = Some(match unit {
                    "s" => Duration::from_secs(n),
                    "ms" => Duration::from_millis(n),
                    _ => return Err(format!("budget time unit `{unit}` is not s or ms")),
                });
            }
            _ => return Err(format!("unknown budget dimension `{key}`")),
        }
    }
    Ok(b)
}

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// A human-readable description of the first malformed argument; the
/// caller prints it with [`USAGE`] and exits with the usage code.
pub fn parse_args(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = match it.next().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => return Ok(Command::Help),
        Some("version" | "--version" | "-V") => return Ok(Command::Version),
        Some("check") => "check",
        Some(other) => return Err(format!("unknown command `{other}`")),
    };
    debug_assert_eq!(sub, "check");

    let mut file = None;
    let mut args = CheckArgs {
        file: PathBuf::new(),
        assert_index: None,
        engine: Engine::Auto,
        threads: 2,
        budget: Budget::unlimited(),
        spill: None,
        json: None,
        seed: 42,
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--assert" => {
                let v = value("--assert")?;
                args.assert_index = Some(
                    v.parse()
                        .map_err(|_| format!("--assert index `{v}` is not a number"))?,
                );
            }
            "--engine" => {
                let v = value("--engine")?;
                args.engine =
                    Engine::parse(&v).ok_or_else(|| format!("unknown engine `{v}`"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                args.threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&k| (1..=64).contains(&k))
                    .ok_or_else(|| format!("--threads `{v}` must be 1..=64"))?;
            }
            "--budget" => args.budget = parse_budget(&value("--budget")?)?,
            "--spill" => args.spill = Some(PathBuf::from(value("--spill")?)),
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v
                    .parse()
                    .map_err(|_| format!("--seed `{v}` is not a number"))?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            positional => {
                if file.replace(PathBuf::from(positional)).is_some() {
                    return Err("check takes exactly one input file".to_owned());
                }
            }
        }
    }
    args.file = file.ok_or_else(|| "check needs an input file".to_owned())?;
    Ok(Command::Check(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_a_full_check_invocation() {
        let Command::Check(a) = parse_args(&strings(&[
            "check",
            "model.tempo",
            "--assert",
            "1",
            "--engine",
            "mcpta",
            "--threads",
            "4",
            "--budget",
            "states=1000,time=2s",
            "--seed",
            "7",
        ]))
        .expect("parse") else {
            panic!("expected check command");
        };
        assert_eq!(a.file, PathBuf::from("model.tempo"));
        assert_eq!(a.assert_index, Some(1));
        assert_eq!(a.engine, Engine::Mcpta);
        assert_eq!(a.threads, 4);
        assert_eq!(a.budget.max_states, Some(1000));
        assert_eq!(a.budget.wall, Some(Duration::from_secs(2)));
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse_args(&strings(&["check"])).is_err());
        assert!(parse_args(&strings(&["check", "a.tempo", "b.tempo"])).is_err());
        assert!(parse_args(&strings(&["check", "a.tempo", "--engine", "warp"])).is_err());
        assert!(parse_args(&strings(&["check", "a.tempo", "--threads", "0"])).is_err());
        assert!(parse_args(&strings(&["check", "a.tempo", "--budget", "fuel=3"])).is_err());
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
    }
}
