//! Stable structural fingerprints for verdict caching.
//!
//! A [`Fingerprint`] is a 128-bit content address of a model or query:
//! two structurally identical inputs always produce the same
//! fingerprint, regardless of when or where they were built. The
//! analysis service keys its verdict cache on fingerprints, so the hash
//! must be *stable* — it depends only on the bytes fed to it, never on
//! pointer values, `HashMap` iteration order, or the standard library's
//! randomized `DefaultHasher` state.
//!
//! Producers implement [`StableDigest`] and feed a [`StableHasher`]:
//!
//! * `write_tag` provides domain separation, so a location list and an
//!   edge list with the same numeric content hash differently;
//! * every variable-length sequence must be preceded by its length
//!   (the `write_*` helpers for slices do this), so concatenations
//!   cannot collide;
//! * [`StableHasher::write_unordered`] folds a set of element
//!   fingerprints commutatively, for positions where the model's
//!   semantics are order-independent (conjunctions of guard atoms,
//!   invariant atoms, rate maps) — reordering such elements must not
//!   change the fingerprint, because it does not change any verdict.
//!
//! Fingerprints are *identifiers, not proofs*: the on-disk cache tier
//! additionally replays each entry's certificate against the live model
//! before serving it, so even an (astronomically unlikely) collision or
//! a corrupted entry degrades to a recompute, never to a wrong answer.

use std::fmt;

/// A 128-bit stable content hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// Fingerprints a value through its [`StableDigest`] implementation.
    #[must_use]
    pub fn of<T: StableDigest + ?Sized>(value: &T) -> Self {
        let mut h = StableHasher::new();
        value.digest(&mut h);
        h.finish()
    }

    /// Combines fingerprints in order (for composite cache keys where
    /// each position has a fixed meaning).
    #[must_use]
    pub fn combine(parts: &[Fingerprint]) -> Self {
        let mut h = StableHasher::new();
        h.write_tag("combine");
        h.write_usize(parts.len());
        for p in parts {
            h.write_u64(p.hi);
            h.write_u64(p.lo);
        }
        h.finish()
    }

    /// The 32-character lower-case hex rendering (filename-safe).
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the rendering of [`Fingerprint::to_hex`].
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint { hi, lo })
    }

    /// Bit-exact 16-character hex encoding of an `f64`: the canonical
    /// form for floats inside cache entries and result JSON, where
    /// `parse(render(v))` must reproduce `v` bit-for-bit (decimal
    /// renderings round).
    #[must_use]
    pub fn hex64(v: f64) -> String {
        format!("{:016x}", v.to_bits())
    }

    /// Decodes the rendering of [`Fingerprint::hex64`].
    #[must_use]
    pub fn parse_hex64(tok: &str) -> Option<f64> {
        if tok.len() != 16 || !tok.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// SplitMix64 finalizer: the avalanche function both hasher lanes use.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic 128-bit streaming hasher (two independently keyed
/// SplitMix64 lanes). Unlike `std::collections::hash_map::DefaultHasher`
/// it is seed-free and its output is part of the cache format: the same
/// byte stream always produces the same [`Fingerprint`].
#[derive(Clone, Debug)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher with the fixed initial state.
    #[must_use]
    pub fn new() -> Self {
        StableHasher {
            a: 0x9e37_79b9_7f4a_7c15,
            b: 0x6a09_e667_f3bc_c909,
        }
    }

    /// Feeds one 64-bit word.
    pub fn write_u64(&mut self, v: u64) {
        self.a = mix(self.a ^ v);
        self.b = mix(self.b.wrapping_add(v).wrapping_add(0x2545_f491_4f6c_dd1d));
    }

    /// Feeds a signed word (two's-complement bits).
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Feeds a `usize` (widened, so 32- and 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Feeds a float by its exact bit pattern (`-0.0` and `0.0` differ;
    /// every NaN payload is its own value — fingerprints identify
    /// structure, they do not do numeric reasoning).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        // Pack bytes into words; the length prefix disambiguates the
        // zero-padded tail.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Feeds a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Domain separation: feed a static tag before each structural
    /// section so differently-shaped content cannot collide.
    pub fn write_tag(&mut self, tag: &str) {
        self.write_str(tag);
    }

    /// Folds a *set* of element fingerprints commutatively: the result
    /// is independent of iteration order. Use exactly where the model's
    /// semantics are order-independent (e.g. the atoms of a guard
    /// conjunction); everywhere else, element order is significant and
    /// must go through the ordered `write_*` calls.
    pub fn write_unordered<I: IntoIterator<Item = Fingerprint>>(&mut self, parts: I) {
        let mut sum_hi = 0u64;
        let mut sum_lo = 0u64;
        let mut xor_hi = 0u64;
        let mut count = 0usize;
        for p in parts {
            // Re-mix each element so that sums of related fingerprints
            // do not cancel structurally.
            let h = mix(p.hi ^ 0x5851_f42d_4c95_7f2d);
            let l = mix(p.lo ^ 0x1405_7b7e_f767_814f);
            sum_hi = sum_hi.wrapping_add(h);
            sum_lo = sum_lo.wrapping_add(l);
            xor_hi ^= mix(h.wrapping_add(l));
            count += 1;
        }
        self.write_tag("unordered");
        self.write_usize(count);
        self.write_u64(sum_hi);
        self.write_u64(sum_lo);
        self.write_u64(xor_hi);
    }

    /// The accumulated 128-bit fingerprint.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint {
            hi: mix(self.a ^ self.b.rotate_left(32)),
            lo: mix(self.b ^ self.a.rotate_left(17)),
        }
    }
}

/// Structural digest into a [`StableHasher`]. Implementations must be
/// deterministic functions of the value's *semantics-relevant*
/// structure: no addresses, no hash-map iteration order, and
/// order-independent folding exactly where reordering preserves every
/// verdict.
pub trait StableDigest {
    /// Feeds this value's structure into `h`.
    fn digest(&self, h: &mut StableHasher);
}

impl StableDigest for Fingerprint {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(self.hi);
        h.write_u64(self.lo);
    }
}

impl StableDigest for u64 {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableDigest for i64 {
    fn digest(&self, h: &mut StableHasher) {
        h.write_i64(*self);
    }
}

impl StableDigest for usize {
    fn digest(&self, h: &mut StableHasher) {
        h.write_usize(*self);
    }
}

impl StableDigest for bool {
    fn digest(&self, h: &mut StableHasher) {
        h.write_bool(*self);
    }
}

impl StableDigest for f64 {
    fn digest(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableDigest for str {
    fn digest(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableDigest for String {
    fn digest(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableDigest> StableDigest for Option<T> {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.digest(h);
            }
        }
    }
}

impl<T: StableDigest> StableDigest for [T] {
    fn digest(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for v in self {
            v.digest(h);
        }
    }
}

impl<T: StableDigest> StableDigest for Vec<T> {
    fn digest(&self, h: &mut StableHasher) {
        self.as_slice().digest(h);
    }
}

impl<T: StableDigest + ?Sized> StableDigest for &T {
    fn digest(&self, h: &mut StableHasher) {
        (**self).digest(h);
    }
}

impl<A: StableDigest, B: StableDigest> StableDigest for (A, B) {
    fn digest(&self, h: &mut StableHasher) {
        self.0.digest(h);
        self.1.digest(h);
    }
}

impl<A: StableDigest, B: StableDigest, C: StableDigest> StableDigest for (A, B, C) {
    fn digest(&self, h: &mut StableHasher) {
        self.0.digest(h);
        self.1.digest(h);
        self.2.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic() {
        let a = Fingerprint::of("the same input");
        let b = Fingerprint::of("the same input");
        assert_eq!(a, b);
        assert_ne!(a, Fingerprint::of("a different input"));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let f = Fingerprint::of(&42u64);
        let hex = f.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(f));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..31]), None);
        assert_eq!(Fingerprint::from_hex(&format!("{hex}0")), None);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let ab: Vec<String> = vec!["ab".into(), "c".into()];
        let a_bc: Vec<String> = vec!["a".into(), "bc".into()];
        assert_ne!(Fingerprint::of(&ab), Fingerprint::of(&a_bc));
    }

    #[test]
    fn unordered_fold_is_commutative_but_content_sensitive() {
        let parts = [
            Fingerprint::of("x"),
            Fingerprint::of("y"),
            Fingerprint::of("z"),
        ];
        let mut fwd = StableHasher::new();
        fwd.write_unordered(parts.iter().copied());
        let mut rev = StableHasher::new();
        rev.write_unordered(parts.iter().rev().copied());
        assert_eq!(fwd.finish(), rev.finish());

        let mut other = StableHasher::new();
        other.write_unordered([Fingerprint::of("x"), Fingerprint::of("w")]);
        assert_ne!(fwd.finish(), other.finish());

        // Multiplicity matters: {x, x} != {x}.
        let mut single = StableHasher::new();
        single.write_unordered([Fingerprint::of("x")]);
        let mut double = StableHasher::new();
        double.write_unordered([Fingerprint::of("x"), Fingerprint::of("x")]);
        assert_ne!(single.finish(), double.finish());
    }

    #[test]
    fn tags_separate_domains() {
        let mut a = StableHasher::new();
        a.write_tag("locations");
        a.write_u64(3);
        let mut b = StableHasher::new();
        b.write_tag("edges");
        b.write_u64(3);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_sign_of_zero() {
        assert_ne!(Fingerprint::of(&0.0_f64), Fingerprint::of(&-0.0_f64));
        assert_eq!(Fingerprint::of(&1.5_f64), Fingerprint::of(&1.5_f64));
    }

    #[test]
    fn combine_is_positional() {
        let x = Fingerprint::of("x");
        let y = Fingerprint::of("y");
        assert_ne!(Fingerprint::combine(&[x, y]), Fingerprint::combine(&[y, x]));
        assert_eq!(Fingerprint::combine(&[x, y]), Fingerprint::combine(&[x, y]));
    }

    #[test]
    fn hex64_round_trips_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let tok = Fingerprint::hex64(v);
            assert_eq!(tok.len(), 16);
            let back = Fingerprint::parse_hex64(&tok).expect("round-trip");
            assert_eq!(back.to_bits(), v.to_bits(), "{tok}");
        }
        // NaN keeps its payload bits too.
        let tok = Fingerprint::hex64(f64::NAN);
        let back = Fingerprint::parse_hex64(&tok).expect("nan");
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
        assert_eq!(Fingerprint::parse_hex64("zz"), None);
        assert_eq!(Fingerprint::parse_hex64("0123"), None);
    }
}
