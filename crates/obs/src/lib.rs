//! Resource governance for the tempo analysis engines.
//!
//! Every engine in the workspace explores a state space, iterates a
//! fixpoint, or simulates runs — and on an adversarial model each of
//! those loops is unbounded. This crate provides the shared vocabulary
//! that keeps them honest:
//!
//! * [`Budget`] — declarative resource limits (wall-clock deadline,
//!   stored states, fixpoint iterations, simulation runs),
//! * [`Governor`] — the cheap runtime meter an engine charges work
//!   against while it runs,
//! * [`RunReport`] — how much work an analysis actually performed,
//! * [`Outcome`] — a result that is either `Complete` or `Exhausted`
//!   with a *sound partial* answer (e.g. "no violation found within the
//!   states explored so far").
//!
//! The contract every engine upholds: with [`Budget::unlimited`] the
//! governed entry point behaves byte-identically to the ungoverned one;
//! with any finite budget it terminates promptly, never panics, and the
//! `Exhausted` wrapper marks the partial answer as non-definitive.
//!
//! ```
//! use tempo_obs::{Budget, Outcome};
//! use std::time::Duration;
//!
//! let budget = Budget::unlimited()
//!     .with_wall_time(Duration::from_secs(30))
//!     .with_max_states(1_000_000);
//! let gov = budget.governor();
//! let mut sum = 0u64;
//! for i in 0..10 {
//!     if !gov.charge_state() {
//!         break;
//!     }
//!     sum += i;
//! }
//! let report = gov.report();
//! let outcome = gov.finish(sum, report);
//! assert!(matches!(outcome, Outcome::Complete { value: 45, .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

pub use tempo_conc::CancelToken;

mod fingerprint;
mod store;

pub use fingerprint::{Fingerprint, StableDigest, StableHasher};
pub use store::{
    create_state_log, payload_digest, ResidentStore, SpillMetrics, SpillStore, Spillable,
    StateStore,
};
pub use tempo_conc::{RecordRef, SpillError, StateLog};

/// Declarative resource limits for one analysis invocation.
///
/// A budget is a plain value: construct it once, hand a reference to a
/// governed engine entry point, and reuse it across calls. Every limit
/// defaults to "unlimited"; builders narrow one dimension at a time.
///
/// The builders are `#[must_use]`: they return a *new* budget rather
/// than mutating in place, so dropping the return value silently
/// discards the configured limit.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock allowance for the whole call.
    pub wall: Option<Duration>,
    /// Maximum states stored/explored (zone-graph nodes, product pairs,
    /// BIP global states, digital-clocks MDP states).
    pub max_states: Option<u64>,
    /// Maximum fixpoint iterations / value-iteration sweeps.
    pub max_iterations: Option<u64>,
    /// Maximum simulation runs (SMC, modes).
    pub max_runs: Option<u64>,
    /// Optional cooperative cancellation token: the governor polls it at
    /// the same cadence as the wall-clock deadline, so an analysis can
    /// be stopped externally (job cancellation, service shutdown).
    pub cancel: Option<CancelToken>,
}

/// Two budgets are equal when their limits agree and they share the
/// same cancellation token (both `None`, or clones of one token).
impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        self.wall == other.wall
            && self.max_states == other.max_states
            && self.max_iterations == other.max_iterations
            && self.max_runs == other.max_runs
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same_as(b),
                _ => false,
            }
    }
}

impl Eq for Budget {}

impl Budget {
    /// A budget with no limits: governed entry points behave exactly
    /// like their ungoverned counterparts.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limits total wall-clock time for the call.
    #[must_use = "the builder returns a new budget; dropping it discards the limit"]
    pub fn with_wall_time(mut self, wall: Duration) -> Self {
        self.wall = Some(wall);
        self
    }

    /// Limits the number of stored/explored states.
    #[must_use = "the builder returns a new budget; dropping it discards the limit"]
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = Some(max_states);
        self
    }

    /// Limits the number of fixpoint iterations or sweeps.
    #[must_use = "the builder returns a new budget; dropping it discards the limit"]
    pub fn with_max_iterations(mut self, max_iterations: u64) -> Self {
        self.max_iterations = Some(max_iterations);
        self
    }

    /// Limits the number of simulation runs.
    #[must_use = "the builder returns a new budget; dropping it discards the limit"]
    pub fn with_max_runs(mut self, max_runs: u64) -> Self {
        self.max_runs = Some(max_runs);
        self
    }

    /// Attaches a cooperative cancellation token. Cancelling the token
    /// makes the governor report [`ExhaustionReason::Cancelled`] at its
    /// next deadline poll, so the engine unwinds with a sound partial
    /// answer exactly as on any other budget exhaustion.
    #[must_use = "the builder returns a new budget; dropping it discards the token"]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True when no limit is set on any dimension. A cancellation token
    /// does not count as a limit: until cancelled it never trips.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none()
            && self.max_states.is_none()
            && self.max_iterations.is_none()
            && self.max_runs.is_none()
    }

    /// Starts the clock: returns a [`Governor`] that meters work against
    /// this budget from now on.
    pub fn governor(&self) -> Governor {
        Governor::start(self)
    }
}

/// Which resource dimension ran out first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The wall-clock deadline passed.
    WallClock,
    /// The stored-state limit was reached.
    States,
    /// The iteration/sweep limit was reached.
    Iterations,
    /// The simulation-run limit was reached.
    Runs,
    /// The budget's [`CancelToken`] was cancelled: the caller (job
    /// owner, service shutdown) asked the analysis to stop.
    Cancelled,
}

impl fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExhaustionReason::WallClock => "wall-clock deadline exceeded",
            ExhaustionReason::States => "state budget exhausted",
            ExhaustionReason::Iterations => "iteration budget exhausted",
            ExhaustionReason::Runs => "simulation-run budget exhausted",
            ExhaustionReason::Cancelled => "cancelled by caller",
        };
        f.write_str(s)
    }
}

/// Severity of a [`Diagnostic`].
///
/// `Error`-level diagnostics make `check_first` engine entry points
/// refuse to run; warnings are reported but do not block analysis
/// (unless the caller opts into strict mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but analysable: the model runs, the result may not be
    /// what the modeller intended.
    Warning,
    /// Definitely wrong: the model (or query) cannot be analysed
    /// meaningfully.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of a static analysis pass — the shared diagnostic
/// currency of the lint rules, the digital-clocks closedness check and
/// the parser error bridge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable rule code (`"TA002"`, `"BIP001"`, `"DIGITAL"`, `"PARSE"`).
    pub code: String,
    /// Where it is: an automaton/component/process name, optionally with
    /// a location (`"Train.Cross"`), or `None` for model-wide findings.
    pub component: Option<String>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Creates a warning-level diagnostic.
    pub fn warning(code: &str, component: Option<&str>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code: code.to_owned(),
            component: component.map(str::to_owned),
            message: message.into(),
        }
    }

    /// Creates an error-level diagnostic.
    pub fn error(code: &str, component: Option<&str>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: code.to_owned(),
            component: component.map(str::to_owned),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(c) = &self.component {
            write!(f, " {c}:")?;
        }
        write!(f, " {}", self.message)
    }
}

/// The typed refusal of a `check_first` entry point: the diagnostics
/// that made the engine decline to analyse the model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintError {
    /// The blocking findings (at least one, usually all at
    /// [`Severity::Error`]).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintError {
    /// Wraps blocking diagnostics into an error.
    #[must_use]
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintError { diagnostics }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model rejected by static analysis:")?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LintError {}

/// How much work an analysis performed, regardless of how it ended.
///
/// Engines fill in the fields that make sense for them and leave the
/// rest at zero (an SMC run has no waiting list; a fixpoint solver
/// simulates no runs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// States popped/expanded during exploration.
    pub states_explored: u64,
    /// States retained in the passed list / graph / value vector.
    pub states_stored: u64,
    /// Peak length of the waiting list (sequential or shared queue).
    pub peak_waiting: u64,
    /// Fixpoint sweeps / value-iteration rounds performed.
    pub sweeps: u64,
    /// Simulation runs completed.
    pub runs_simulated: u64,
    /// DBM dimension actually used by the analysis, after active-clock
    /// reduction (`0` for engines that track no clocks).
    pub dbm_dim: u64,
    /// DBM dimension of the model as written, before reduction. Equal to
    /// [`RunReport::dbm_dim`] when no clock was removed.
    pub dbm_dim_model: u64,
    /// Wall-clock time spent inside the call.
    pub wall_time: Duration,
    /// Size of the certificate produced for this verdict, in bytes of
    /// its serialized text form (`0` when no certificate was produced).
    pub certificate_bytes: u64,
    /// Time spent producing and validating the certificate (zero when no
    /// certificate was produced).
    pub certify_time: Duration,
    /// States expanded with a reduced (ample) successor set by
    /// partial-order reduction.
    pub por_ample_states: u64,
    /// States where an ample candidate existed but the cycle proviso
    /// forced a fall-back to full expansion.
    pub por_fallback_states: u64,
    /// Symmetry orbits of structurally identical components detected
    /// (`0` when symmetry reduction was off or found nothing).
    pub sym_orbits: u64,
    /// Successor states folded onto an already-known orbit
    /// representative by symmetry canonicalization.
    pub sym_states_avoided: u64,
    /// States whose full representation was written to the spill log
    /// instead of staying resident (`0` when spilling was off).
    pub spilled_states: u64,
    /// Bytes appended to the spill log, record headers included.
    pub spill_bytes: u64,
    /// Full records faulted back in from the spill log (each fault is a
    /// disk read that the resident zone summary could not rule out).
    pub spill_faults: u64,
    /// `(location, clock)` pairs whose LU extrapolation bound is
    /// strictly tighter than the clock's global maximal constant (`0`
    /// when LU extrapolation was off or found nothing to tighten).
    pub lu_tightened: u64,
    /// Variables whose range-analysis fixpoint interval is strictly
    /// tighter than their declared range.
    pub vars_narrowed: u64,
    /// Clocks removed by query-directed slicing beyond what plain
    /// active-clock reduction removes.
    pub sliced_clocks: u64,
    /// Variables frozen (write-only, outside the query's cone of
    /// influence) by slicing.
    pub sliced_vars: u64,
    /// Edges disabled by slicing (synchronization-dead or with a guard
    /// proven empty by range analysis).
    pub sliced_edges: u64,
    /// Importance-splitting levels between the initial state and the
    /// goal (`0` for engines that do not split).
    pub splitting_levels: u64,
    /// Split trajectories spawned from stored level-entry states
    /// (fixed-effort restarts beyond the first stage, RESTART clones).
    pub splits_spawned: u64,
    /// Total trajectory segments simulated across all splitting stages,
    /// including the naive-MC case where it equals `runs_simulated`.
    pub runs_total: u64,
}

impl RunReport {
    /// Folds `other` into `self`, so the analysis service can aggregate
    /// per-job reports into a tenant- or service-level rollup.
    ///
    /// Additive work counters (`states_explored`, `states_stored`,
    /// `sweeps`, `runs_simulated`, `wall_time`, `certificate_bytes`,
    /// `certify_time`) are summed — the merged report answers "how much
    /// work did these jobs perform in total". High-water marks
    /// (`peak_waiting`) and model dimensions (`dbm_dim`,
    /// `dbm_dim_model`) are maxed: a rollup's peak is the worst
    /// individual peak, not their sum.
    pub fn merge(&mut self, other: &RunReport) {
        self.states_explored += other.states_explored;
        self.states_stored += other.states_stored;
        self.peak_waiting = self.peak_waiting.max(other.peak_waiting);
        self.sweeps += other.sweeps;
        self.runs_simulated += other.runs_simulated;
        self.dbm_dim = self.dbm_dim.max(other.dbm_dim);
        self.dbm_dim_model = self.dbm_dim_model.max(other.dbm_dim_model);
        self.wall_time += other.wall_time;
        self.certificate_bytes += other.certificate_bytes;
        self.certify_time += other.certify_time;
        self.por_ample_states += other.por_ample_states;
        self.por_fallback_states += other.por_fallback_states;
        self.sym_orbits = self.sym_orbits.max(other.sym_orbits);
        self.sym_states_avoided += other.sym_states_avoided;
        self.spilled_states += other.spilled_states;
        self.spill_bytes += other.spill_bytes;
        self.spill_faults += other.spill_faults;
        self.lu_tightened = self.lu_tightened.max(other.lu_tightened);
        self.vars_narrowed = self.vars_narrowed.max(other.vars_narrowed);
        self.sliced_clocks = self.sliced_clocks.max(other.sliced_clocks);
        self.sliced_vars = self.sliced_vars.max(other.sliced_vars);
        self.sliced_edges = self.sliced_edges.max(other.sliced_edges);
        self.splitting_levels = self.splitting_levels.max(other.splitting_levels);
        self.splits_spawned += other.splits_spawned;
        self.runs_total += other.runs_total;
    }

    /// Renders the report as one machine-readable line for persistence
    /// (the disk cache stores it next to the verdict so a disk hit can
    /// restore the producing run's work counters). Durations are
    /// serialized as integer nanoseconds; the leading version tag lets
    /// [`RunReport::parse_line`] reject lines from a future layout.
    #[must_use]
    pub fn render_line(&self) -> String {
        format!(
            "v3 {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.states_explored,
            self.states_stored,
            self.peak_waiting,
            self.sweeps,
            self.runs_simulated,
            self.dbm_dim,
            self.dbm_dim_model,
            self.wall_time.as_nanos(),
            self.certificate_bytes,
            self.certify_time.as_nanos(),
            self.por_ample_states,
            self.por_fallback_states,
            self.sym_orbits,
            self.sym_states_avoided,
            self.spilled_states,
            self.spill_bytes,
            self.spill_faults,
            self.lu_tightened,
            self.vars_narrowed,
            self.sliced_clocks,
            self.sliced_vars,
            self.sliced_edges,
            self.splitting_levels,
            self.splits_spawned,
            self.runs_total,
        )
    }

    /// Parses a line produced by [`RunReport::render_line`]. `None` on
    /// any defect (wrong version, missing or non-numeric field) — the
    /// caller treats the line as absent, never as a partial report.
    /// Accepts the legacy `v1` layout (written before the dataflow-pass
    /// counters existed) with the five flow fields read as zero, and the
    /// legacy `v2` layout (before the splitting counters) with the three
    /// splitting fields read as zero, so old disk-cache entries keep
    /// validating.
    #[must_use]
    pub fn parse_line(line: &str) -> Option<RunReport> {
        let mut parts = line.split_ascii_whitespace();
        let version = parts.next()?;
        let (has_flow, has_splitting) = match version {
            "v1" => (false, false),
            "v2" => (true, false),
            "v3" => (true, true),
            _ => return None,
        };
        let mut next_u64 = || parts.next()?.parse::<u64>().ok();
        let mut report = RunReport {
            states_explored: next_u64()?,
            states_stored: next_u64()?,
            peak_waiting: next_u64()?,
            sweeps: next_u64()?,
            runs_simulated: next_u64()?,
            dbm_dim: next_u64()?,
            dbm_dim_model: next_u64()?,
            wall_time: Duration::from_nanos(next_u64()?),
            certificate_bytes: next_u64()?,
            certify_time: Duration::from_nanos(next_u64()?),
            por_ample_states: next_u64()?,
            por_fallback_states: next_u64()?,
            sym_orbits: next_u64()?,
            sym_states_avoided: next_u64()?,
            spilled_states: next_u64()?,
            spill_bytes: next_u64()?,
            spill_faults: next_u64()?,
            ..RunReport::default()
        };
        if has_flow {
            report.lu_tightened = next_u64()?;
            report.vars_narrowed = next_u64()?;
            report.sliced_clocks = next_u64()?;
            report.sliced_vars = next_u64()?;
            report.sliced_edges = next_u64()?;
        }
        if has_splitting {
            report.splitting_levels = next_u64()?;
            report.splits_spawned = next_u64()?;
            report.runs_total = next_u64()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(report)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "explored {} states (stored {}, peak waiting {}), {} sweeps, {} runs, {:.3}s",
            self.states_explored,
            self.states_stored,
            self.peak_waiting,
            self.sweeps,
            self.runs_simulated,
            self.wall_time.as_secs_f64()
        )?;
        if self.dbm_dim_model > 0 {
            write!(f, ", dbm dim {}/{}", self.dbm_dim, self.dbm_dim_model)?;
        }
        if self.certificate_bytes > 0 {
            write!(
                f,
                ", certificate {} bytes ({:.3}s)",
                self.certificate_bytes,
                self.certify_time.as_secs_f64()
            )?;
        }
        if self.por_ample_states > 0 || self.por_fallback_states > 0 {
            write!(
                f,
                ", por {} ample / {} fallback",
                self.por_ample_states, self.por_fallback_states
            )?;
        }
        if self.sym_orbits > 0 {
            write!(
                f,
                ", symmetry {} orbit(s), {} states avoided",
                self.sym_orbits, self.sym_states_avoided
            )?;
        }
        if self.spilled_states > 0 || self.spill_faults > 0 {
            write!(
                f,
                ", spilled {} states ({} bytes, {} faults)",
                self.spilled_states, self.spill_bytes, self.spill_faults
            )?;
        }
        if self.lu_tightened > 0 || self.vars_narrowed > 0 {
            write!(
                f,
                ", flow {} lu bound(s) tightened, {} var(s) narrowed",
                self.lu_tightened, self.vars_narrowed
            )?;
        }
        if self.sliced_clocks > 0 || self.sliced_vars > 0 || self.sliced_edges > 0 {
            write!(
                f,
                ", sliced {} clock(s) / {} var(s) / {} edge(s)",
                self.sliced_clocks, self.sliced_vars, self.sliced_edges
            )?;
        }
        if self.splitting_levels > 0 || self.splits_spawned > 0 {
            write!(
                f,
                ", splitting {} level(s), {} split(s), {} segment(s)",
                self.splitting_levels, self.splits_spawned, self.runs_total
            )?;
        }
        Ok(())
    }
}

/// Where and how much an exploration engine may spill to disk.
///
/// `path` is a directory: the engine creates its append-only spill log
/// inside it (scratch space, removed when the run ends).
/// `resident_budget` is the number of symbolic states kept fully in
/// memory; states beyond it are written to the log, with only a compact
/// zone summary staying resident for inclusion prefiltering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory for the spill log.
    pub path: PathBuf,
    /// Number of states kept fully resident before spilling begins.
    pub resident_budget: usize,
}

/// Knobs for the explicit-state exploration engines: which
/// semantics-preserving state-space reductions to attempt.
///
/// Both reductions are *conservative*: they only apply where the engine
/// can prove them sound for the model and query at hand, and silently
/// fall back to full exploration otherwise. Verdicts (status, witness
/// existence, tags) are identical with any combination of knobs; only
/// the amount of work recorded in [`RunReport`] changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Ample-set partial-order reduction: expand only one independent,
    /// invisible component where the ample conditions hold.
    pub por: bool,
    /// Template-symmetry reduction: fold states of structurally
    /// identical components onto a canonical orbit representative.
    pub symmetry: bool,
    /// LU (lower/upper) clock-bound extrapolation: per-location,
    /// per-polarity maximal constants from a backward dataflow fixpoint
    /// replace the single global maximal constant where sound
    /// (reachability only — liveness and deadlock search keep the
    /// classic extrapolation regardless of this knob).
    pub lu: bool,
    /// Query-directed slicing: disable edges that can provably never
    /// fire (guard empty under range analysis, or synchronizing on a
    /// channel with no possible partner) before exploration, letting
    /// active-clock reduction remove the clocks they held live.
    pub slice: bool,
    /// Out-of-core exploration: spill passed/waiting states past a
    /// resident budget to an on-disk log. `None` (the default) keeps
    /// everything in memory. Spilling never changes verdicts or
    /// exploration statistics, only where states physically live.
    pub spill: Option<SpillConfig>,
}

impl Default for ExploreConfig {
    /// All reductions on — they are sound by construction and each
    /// engine disables them itself where soundness cannot be
    /// established (e.g. liveness search). Spilling off.
    fn default() -> Self {
        ExploreConfig {
            por: true,
            symmetry: true,
            lu: true,
            slice: true,
            spill: None,
        }
    }
}

impl ExploreConfig {
    /// Everything off: the unreduced reference semantics.
    #[must_use]
    pub fn unreduced() -> Self {
        ExploreConfig {
            por: false,
            symmetry: false,
            lu: false,
            slice: false,
            spill: None,
        }
    }

    /// Sets the partial-order-reduction knob.
    #[must_use]
    pub fn with_por(mut self, on: bool) -> Self {
        self.por = on;
        self
    }

    /// Sets the symmetry-reduction knob.
    #[must_use]
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Sets the LU-extrapolation knob.
    #[must_use]
    pub fn with_lu(mut self, on: bool) -> Self {
        self.lu = on;
        self
    }

    /// Sets the query-directed-slicing knob.
    #[must_use]
    pub fn with_slice(mut self, on: bool) -> Self {
        self.slice = on;
        self
    }

    /// Enables disk spilling: states beyond `resident_budget` are
    /// written to an append-only log inside the directory `path`, and
    /// inclusion checks fault them back only on a possible-subsumption
    /// hit. Use the fallible `try_*` engine entry points with this knob
    /// set; spill I/O failures surface as typed errors there.
    #[must_use]
    pub fn with_spill(mut self, path: impl Into<PathBuf>, resident_budget: usize) -> Self {
        self.spill = Some(SpillConfig {
            path: path.into(),
            resident_budget,
        });
        self
    }
}

impl StableDigest for ExploreConfig {
    /// The knobs participate in content-addressed cache keys: a reduced
    /// and an unreduced run report different work, so their verdicts
    /// must not share a byte-identical cache slot. Spilling digests its
    /// presence and resident budget but *not* the scratch path: the
    /// work performed depends on the budget, never on where the scratch
    /// file happens to live.
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("explore-config");
        h.write_u8(u8::from(self.por));
        h.write_u8(u8::from(self.symmetry));
        h.write_u8(u8::from(self.lu));
        h.write_u8(u8::from(self.slice));
        match &self.spill {
            None => h.write_u8(0),
            Some(s) => {
                h.write_u8(1);
                h.write_u64(s.resident_budget as u64);
            }
        }
    }
}

/// Result of a governed analysis: complete, or exhausted with a sound
/// partial answer.
///
/// `Exhausted.partial` always carries the weakest sound reading: "within
/// the work reported, nothing stronger was established". Callers that
/// only care about definitive verdicts should match on `Complete`.
#[derive(Clone, Debug, PartialEq)]
#[must_use = "an Outcome distinguishes definitive from partial answers; check it"]
pub enum Outcome<T> {
    /// The analysis ran to completion; `value` is definitive.
    Complete {
        /// The definitive result.
        value: T,
        /// Work performed.
        report: RunReport,
    },
    /// A budget dimension ran out before the analysis finished.
    Exhausted {
        /// Which limit tripped first.
        reason: ExhaustionReason,
        /// The sound-but-partial answer (e.g. "not found so far", the
        /// estimate over the runs completed).
        partial: T,
        /// Work performed before the limit tripped.
        report: RunReport,
    },
}

impl<T> Outcome<T> {
    /// The result value, whether definitive or partial.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Complete { value, .. } => value,
            Outcome::Exhausted { partial, .. } => partial,
        }
    }

    /// Consumes the outcome, returning the (definitive or partial) value.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Complete { value, .. } => value,
            Outcome::Exhausted { partial, .. } => partial,
        }
    }

    /// The run report, however the analysis ended.
    pub fn report(&self) -> &RunReport {
        match self {
            Outcome::Complete { report, .. } | Outcome::Exhausted { report, .. } => report,
        }
    }

    /// True when a budget dimension ran out.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Outcome::Exhausted { .. })
    }

    /// The exhaustion reason, if any.
    pub fn exhaustion(&self) -> Option<ExhaustionReason> {
        match self {
            Outcome::Complete { .. } => None,
            Outcome::Exhausted { reason, .. } => Some(*reason),
        }
    }

    /// Borrows the outcome's value: `Outcome<T>` → `Outcome<&T>` with
    /// the report cloned, preserving completeness. Useful to inspect or
    /// `map` over a result without consuming it.
    pub fn as_ref(&self) -> Outcome<&T> {
        match self {
            Outcome::Complete { value, report } => Outcome::Complete {
                value,
                report: report.clone(),
            },
            Outcome::Exhausted {
                reason,
                partial,
                report,
            } => Outcome::Exhausted {
                reason: *reason,
                partial,
                report: report.clone(),
            },
        }
    }

    /// Maps the value/partial, preserving completeness and the report.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Complete { value, report } => Outcome::Complete {
                value: f(value),
                report,
            },
            Outcome::Exhausted {
                reason,
                partial,
                report,
            } => Outcome::Exhausted {
                reason,
                partial: f(partial),
                report,
            },
        }
    }
}

// Latch encoding: 0 = not exhausted, 1..=5 = ExhaustionReason.
const LATCH_NONE: u8 = 0;
const LATCH_WALL: u8 = 1;
const LATCH_STATES: u8 = 2;
const LATCH_ITERS: u8 = 3;
const LATCH_RUNS: u8 = 4;
const LATCH_CANCEL: u8 = 5;

fn reason_of(code: u8) -> Option<ExhaustionReason> {
    match code {
        LATCH_WALL => Some(ExhaustionReason::WallClock),
        LATCH_STATES => Some(ExhaustionReason::States),
        LATCH_ITERS => Some(ExhaustionReason::Iterations),
        LATCH_RUNS => Some(ExhaustionReason::Runs),
        LATCH_CANCEL => Some(ExhaustionReason::Cancelled),
        _ => None,
    }
}

/// Runtime meter for one analysis call.
///
/// The governor is shared by reference across worker threads: all
/// counters are atomic and the exhaustion latch is first-trip-wins, so
/// every worker observes the same reason. Charging is wait-free; the
/// wall clock is only consulted by [`Governor::check_time`] (engines
/// call it once per popped state / sweep / run, not per instruction).
#[derive(Debug)]
pub struct Governor {
    start: Instant,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_states: u64,
    max_iterations: u64,
    max_runs: u64,
    states: AtomicU64,
    iterations: AtomicU64,
    runs: AtomicU64,
    latch: AtomicU8,
}

impl Governor {
    /// Starts metering against `budget` from this instant.
    pub fn start(budget: &Budget) -> Self {
        let start = Instant::now();
        Governor {
            start,
            deadline: budget.wall.map(|w| start + w),
            cancel: budget.cancel.clone(),
            max_states: budget.max_states.unwrap_or(u64::MAX),
            max_iterations: budget.max_iterations.unwrap_or(u64::MAX),
            max_runs: budget.max_runs.unwrap_or(u64::MAX),
            states: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            latch: AtomicU8::new(LATCH_NONE),
        }
    }

    fn trip(&self, code: u8) {
        let _ = self
            .latch
            .compare_exchange(LATCH_NONE, code, Ordering::AcqRel, Ordering::Acquire);
    }

    fn charge(&self, counter: &AtomicU64, limit: u64, code: u8) -> bool {
        let prev = counter.fetch_add(1, Ordering::Relaxed);
        if prev >= limit {
            // Past the limit: undo so counters report true work done.
            counter.fetch_sub(1, Ordering::Relaxed);
            self.trip(code);
            return false;
        }
        true
    }

    /// Charges one stored state. Returns `false` (and latches
    /// [`ExhaustionReason::States`]) once the limit is reached.
    pub fn charge_state(&self) -> bool {
        self.charge(&self.states, self.max_states, LATCH_STATES)
    }

    /// Charges one fixpoint iteration / sweep.
    pub fn charge_iteration(&self) -> bool {
        self.charge(&self.iterations, self.max_iterations, LATCH_ITERS)
    }

    /// Charges one simulation run.
    pub fn charge_run(&self) -> bool {
        self.charge(&self.runs, self.max_runs, LATCH_RUNS)
    }

    /// Checks the wall-clock deadline *and* the cancellation token (both
    /// are polled at the same cadence: once per popped state / sweep /
    /// run). Returns `false` and latches [`ExhaustionReason::Cancelled`]
    /// on cancellation, or [`ExhaustionReason::WallClock`] once the
    /// deadline has passed.
    pub fn check_time(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.trip(LATCH_CANCEL);
                return false;
            }
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.trip(LATCH_WALL);
                false
            }
            _ => true,
        }
    }

    /// How many runs may still be charged before the run limit trips.
    /// `u64::MAX` when unlimited.
    pub fn runs_remaining(&self) -> u64 {
        self.max_runs
            .saturating_sub(self.runs.load(Ordering::Relaxed))
    }

    /// The reason the budget tripped, if it has.
    pub fn exhausted(&self) -> Option<ExhaustionReason> {
        reason_of(self.latch.load(Ordering::Acquire))
    }

    /// True once any dimension has tripped.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted().is_some()
    }

    /// Time elapsed since the governor started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// A report seeded with this governor's counters and elapsed time.
    /// Engines overwrite/extend the fields they track themselves.
    pub fn report(&self) -> RunReport {
        RunReport {
            states_explored: self.states.load(Ordering::Relaxed),
            states_stored: 0,
            peak_waiting: 0,
            sweeps: self.iterations.load(Ordering::Relaxed),
            runs_simulated: self.runs.load(Ordering::Relaxed),
            dbm_dim: 0,
            dbm_dim_model: 0,
            wall_time: self.elapsed(),
            certificate_bytes: 0,
            certify_time: Duration::ZERO,
            por_ample_states: 0,
            por_fallback_states: 0,
            sym_orbits: 0,
            sym_states_avoided: 0,
            spilled_states: 0,
            spill_bytes: 0,
            spill_faults: 0,
            ..RunReport::default()
        }
    }

    /// Wraps a finished analysis: `Complete` if no limit tripped,
    /// `Exhausted` (with `value` as the sound partial) otherwise.
    pub fn finish<T>(&self, value: T, mut report: RunReport) -> Outcome<T> {
        report.wall_time = self.elapsed();
        match self.exhausted() {
            None => Outcome::Complete { value, report },
            Some(reason) => Outcome::Exhausted {
                reason,
                partial: value,
                report,
            },
        }
    }

    /// Like [`Governor::finish`], but forces `Complete` even if a limit
    /// tripped — for engines that found a definitive answer (e.g. a
    /// reachability witness) in the same step the budget ran out.
    pub fn finish_complete<T>(&self, value: T, mut report: RunReport) -> Outcome<T> {
        report.wall_time = self.elapsed();
        Outcome::Complete { value, report }
    }
}

/// Service-level counters for a long-running analysis frontend: cache
/// effectiveness, admission-control decisions, and queue pressure.
///
/// All counters are atomic, so one `ServiceStats` can be shared by
/// reference across scheduler, workers and cache. Read a consistent-ish
/// view with [`ServiceStats::snapshot`] (each counter is read once; the
/// snapshot is not a cross-counter transaction).
#[derive(Debug, Default)]
pub struct ServiceStats {
    hits: AtomicU64,
    disk_hits: AtomicU64,
    disk_rejected: AtomicU64,
    disk_evicted: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    queue_peak: AtomicU64,
}

impl ServiceStats {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a verdict served from the in-memory cache tier.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a verdict served from the on-disk tier after its
    /// certificate replayed successfully.
    pub fn record_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an on-disk entry rejected by certificate replay (corrupted
    /// or stale) and transparently recomputed.
    pub fn record_disk_rejected(&self) {
        self.disk_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a rejected on-disk entry that was also deleted, so future
    /// cold starts do not repay the parse-and-replay failure.
    pub fn record_disk_evicted(&self) {
        self.disk_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job that had to run an engine (no cache tier hit).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job coalesced onto an identical in-flight computation.
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a submission refused by admission control (queue full,
    /// tenant saturated, shutdown).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job cancelled before or during execution.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the queue-depth high-water mark to `depth` if larger.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    #[must_use]
    pub fn snapshot(&self) -> ServiceCounters {
        ServiceCounters {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_rejected: self.disk_rejected.load(Ordering::Relaxed),
            disk_evicted: self.disk_evicted.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of [`ServiceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Verdicts served from the in-memory cache.
    pub hits: u64,
    /// Verdicts served from the on-disk tier (certificate replayed).
    pub disk_hits: u64,
    /// On-disk entries rejected by certificate replay and recomputed.
    pub disk_rejected: u64,
    /// Rejected on-disk entries deleted from the disk tier.
    pub disk_evicted: u64,
    /// Jobs that ran an engine.
    pub misses: u64,
    /// Jobs coalesced onto an identical in-flight computation.
    pub coalesced: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Queue-depth high-water mark.
    pub queue_peak: u64,
}

impl fmt::Display for ServiceCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} (disk {}, rejected {}, evicted {}), misses {}, coalesced {}, rejected {}, cancelled {}, queue peak {}",
            self.hits,
            self.disk_hits,
            self.disk_rejected,
            self.disk_evicted,
            self.misses,
            self.coalesced,
            self.rejected,
            self.cancelled,
            self.queue_peak
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let gov = Budget::unlimited().governor();
        for _ in 0..10_000 {
            assert!(gov.charge_state());
            assert!(gov.charge_iteration());
            assert!(gov.charge_run());
        }
        assert!(gov.check_time());
        assert!(gov.exhausted().is_none());
        let r = gov.report();
        assert_eq!(r.states_explored, 10_000);
        assert_eq!(r.sweeps, 10_000);
        assert_eq!(r.runs_simulated, 10_000);
    }

    #[test]
    fn state_limit_trips_and_latches() {
        let gov = Budget::unlimited().with_max_states(3).governor();
        assert!(gov.charge_state());
        assert!(gov.charge_state());
        assert!(gov.charge_state());
        assert!(!gov.charge_state());
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::States));
        // Counter reports true work done, not the failed charge.
        assert_eq!(gov.report().states_explored, 3);
        // Latch is first-trip-wins.
        assert!(!gov.charge_run() || gov.runs_remaining() > 0);
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::States));
    }

    #[test]
    fn zero_run_budget_trips_immediately() {
        let gov = Budget::unlimited().with_max_runs(0).governor();
        assert!(!gov.charge_run());
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::Runs));
        assert_eq!(gov.runs_remaining(), 0);
    }

    #[test]
    fn elapsed_deadline_trips_wall_clock() {
        let gov = Budget::unlimited()
            .with_wall_time(Duration::from_millis(0))
            .governor();
        assert!(!gov.check_time());
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::WallClock));
    }

    #[test]
    fn finish_wraps_by_latch_state() {
        let gov = Budget::unlimited().with_max_states(1).governor();
        assert!(gov.charge_state());
        let done = gov.finish(42u32, gov.report());
        assert!(matches!(done, Outcome::Complete { value: 42, .. }));

        assert!(!gov.charge_state());
        let partial = gov.finish(7u32, gov.report());
        assert!(partial.is_exhausted());
        assert_eq!(*partial.value(), 7);
        assert_eq!(partial.exhaustion(), Some(ExhaustionReason::States));
        // A definitive hit in the final step stays Complete.
        let hit = gov.finish_complete(9u32, gov.report());
        assert!(!hit.is_exhausted());
    }

    #[test]
    fn outcome_map_preserves_shape() {
        let c: Outcome<u32> = Outcome::Complete {
            value: 2,
            report: RunReport::default(),
        };
        assert_eq!(*c.map(|v| v * 2).value(), 4);
        let e: Outcome<u32> = Outcome::Exhausted {
            reason: ExhaustionReason::Runs,
            partial: 3,
            report: RunReport::default(),
        };
        let m = e.map(|v| v + 1);
        assert!(m.is_exhausted());
        assert_eq!(m.into_value(), 4);
    }

    #[test]
    fn governor_is_shareable_across_threads() {
        let gov = Budget::unlimited().with_max_states(1000).governor();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| while gov.charge_state() {});
            }
        });
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::States));
        assert_eq!(gov.report().states_explored, 1000);
    }

    #[test]
    fn cancellation_trips_via_check_time() {
        let token = CancelToken::new();
        let gov = Budget::unlimited().with_cancel(token.clone()).governor();
        assert!(gov.check_time());
        assert!(gov.exhausted().is_none());
        token.cancel();
        assert!(!gov.check_time());
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::Cancelled));
        // First trip wins: a later deadline check keeps the cancel reason.
        assert!(!gov.check_time());
        assert_eq!(gov.exhausted(), Some(ExhaustionReason::Cancelled));
        let out = gov.finish(3u32, gov.report());
        assert_eq!(out.exhaustion(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn budget_equality_respects_cancel_token_identity() {
        let token = CancelToken::new();
        let a = Budget::unlimited().with_max_states(5);
        let b = Budget::unlimited().with_max_states(5);
        assert_eq!(a, b);
        let c = b.clone().with_cancel(token.clone());
        assert_ne!(a, c);
        assert_eq!(c, Budget::unlimited().with_max_states(5).with_cancel(token));
        assert_ne!(
            c,
            Budget::unlimited()
                .with_max_states(5)
                .with_cancel(CancelToken::new())
        );
        // A cancel token is not a resource limit.
        assert!(Budget::unlimited()
            .with_cancel(CancelToken::new())
            .is_unlimited());
    }

    #[test]
    fn run_report_merge_sums_counters_and_maxes_peaks() {
        let a = RunReport {
            states_explored: 10,
            states_stored: 7,
            peak_waiting: 4,
            sweeps: 2,
            runs_simulated: 100,
            dbm_dim: 5,
            dbm_dim_model: 6,
            wall_time: Duration::from_millis(30),
            certificate_bytes: 128,
            certify_time: Duration::from_millis(3),
            por_ample_states: 6,
            por_fallback_states: 4,
            sym_orbits: 2,
            sym_states_avoided: 11,
            spilled_states: 40,
            spill_bytes: 4096,
            spill_faults: 9,
            lu_tightened: 3,
            vars_narrowed: 2,
            sliced_clocks: 1,
            sliced_vars: 4,
            sliced_edges: 6,
            splitting_levels: 12,
            splits_spawned: 300,
            runs_total: 450,
        };
        let b = RunReport {
            states_explored: 1,
            states_stored: 2,
            peak_waiting: 9,
            sweeps: 3,
            runs_simulated: 50,
            dbm_dim: 3,
            dbm_dim_model: 4,
            wall_time: Duration::from_millis(20),
            certificate_bytes: 64,
            certify_time: Duration::from_millis(1),
            por_ample_states: 1,
            por_fallback_states: 2,
            sym_orbits: 5,
            sym_states_avoided: 3,
            spilled_states: 2,
            spill_bytes: 256,
            spill_faults: 1,
            lu_tightened: 8,
            vars_narrowed: 1,
            sliced_clocks: 2,
            sliced_vars: 3,
            sliced_edges: 5,
            splitting_levels: 7,
            splits_spawned: 40,
            runs_total: 90,
        };
        let mut merged = a.clone();
        merged.merge(&b);
        // Additive counters equal the sum of the parts.
        assert_eq!(
            merged.states_explored,
            a.states_explored + b.states_explored
        );
        assert_eq!(merged.states_stored, a.states_stored + b.states_stored);
        assert_eq!(merged.sweeps, a.sweeps + b.sweeps);
        assert_eq!(merged.runs_simulated, a.runs_simulated + b.runs_simulated);
        assert_eq!(merged.wall_time, a.wall_time + b.wall_time);
        assert_eq!(
            merged.certificate_bytes,
            a.certificate_bytes + b.certificate_bytes
        );
        assert_eq!(merged.certify_time, a.certify_time + b.certify_time);
        assert_eq!(
            merged.por_ample_states,
            a.por_ample_states + b.por_ample_states
        );
        assert_eq!(
            merged.por_fallback_states,
            a.por_fallback_states + b.por_fallback_states
        );
        assert_eq!(
            merged.sym_states_avoided,
            a.sym_states_avoided + b.sym_states_avoided
        );
        assert_eq!(merged.spilled_states, a.spilled_states + b.spilled_states);
        assert_eq!(merged.spill_bytes, a.spill_bytes + b.spill_bytes);
        assert_eq!(merged.spill_faults, a.spill_faults + b.spill_faults);
        // High-water marks take the max.
        assert_eq!(merged.peak_waiting, 9);
        assert_eq!(merged.sym_orbits, 5);
        assert_eq!(merged.dbm_dim, 5);
        assert_eq!(merged.dbm_dim_model, 6);
        // Flow artifacts are per-model analysis facts, also maxed.
        assert_eq!(merged.lu_tightened, 8);
        assert_eq!(merged.vars_narrowed, 2);
        assert_eq!(merged.sliced_clocks, 2);
        assert_eq!(merged.sliced_vars, 4);
        assert_eq!(merged.sliced_edges, 6);
        // Splitting: the level count is a per-query analysis fact
        // (maxed); spawned splits and simulated segments are work
        // performed (summed).
        assert_eq!(merged.splitting_levels, 12);
        assert_eq!(merged.splits_spawned, a.splits_spawned + b.splits_spawned);
        assert_eq!(merged.runs_total, a.runs_total + b.runs_total);
        // Merging zero is the identity.
        let mut same = a.clone();
        same.merge(&RunReport::default());
        assert_eq!(same, a);
    }

    #[test]
    fn run_report_line_round_trips_and_accepts_legacy_versions() {
        let report = RunReport {
            states_explored: 11,
            states_stored: 7,
            wall_time: Duration::from_nanos(12_345),
            lu_tightened: 4,
            vars_narrowed: 3,
            sliced_clocks: 2,
            sliced_vars: 1,
            sliced_edges: 9,
            splitting_levels: 6,
            splits_spawned: 120,
            runs_total: 240,
            ..RunReport::default()
        };
        let line = report.render_line();
        assert!(line.starts_with("v3 "));
        assert_eq!(RunReport::parse_line(&line), Some(report));
        // Legacy v1 lines (17 fields, no flow counters) still parse,
        // with the flow counters read as zero.
        let legacy = "v1 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17";
        let parsed = RunReport::parse_line(legacy).expect("v1 parses");
        assert_eq!(parsed.states_explored, 1);
        assert_eq!(parsed.spill_faults, 17);
        assert_eq!(parsed.lu_tightened, 0);
        assert_eq!(parsed.sliced_edges, 0);
        // Legacy v2 lines (22 fields, no splitting counters) parse with
        // the splitting counters read as zero.
        let legacy = "v2 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22";
        let parsed = RunReport::parse_line(legacy).expect("v2 parses");
        assert_eq!(parsed.sliced_edges, 22);
        assert_eq!(parsed.splitting_levels, 0);
        assert_eq!(parsed.runs_total, 0);
        // Defects: unknown version, truncated v3, trailing garbage.
        assert_eq!(RunReport::parse_line("v4 1 2"), None);
        let truncated = line.rsplit_once(' ').expect("fields").0;
        assert_eq!(RunReport::parse_line(truncated), None);
        assert_eq!(RunReport::parse_line(&format!("{line} 99")), None);
    }

    #[test]
    fn outcome_as_ref_preserves_shape() {
        let c: Outcome<String> = Outcome::Complete {
            value: "yes".to_owned(),
            report: RunReport::default(),
        };
        let r = c.as_ref();
        assert!(!r.is_exhausted());
        assert_eq!(*r.value(), "yes");
        let e: Outcome<String> = Outcome::Exhausted {
            reason: ExhaustionReason::Runs,
            partial: "so far".to_owned(),
            report: RunReport::default(),
        };
        let r = e.as_ref();
        assert_eq!(r.exhaustion(), Some(ExhaustionReason::Runs));
        assert_eq!(*r.into_value(), "so far");
        // The original is still usable after as_ref.
        assert_eq!(e.into_value(), "so far");
    }

    #[test]
    fn service_stats_counts_and_snapshots() {
        let stats = ServiceStats::new();
        stats.record_hit();
        stats.record_hit();
        stats.record_disk_hit();
        stats.record_disk_rejected();
        stats.record_miss();
        stats.record_coalesced();
        stats.record_rejected();
        stats.record_cancelled();
        stats.observe_queue_depth(7);
        stats.observe_queue_depth(3); // does not lower the peak
        let snap = stats.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.disk_hits, 1);
        assert_eq!(snap.disk_rejected, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.coalesced, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.queue_peak, 7);
        assert!(format!("{snap}").contains("queue peak 7"));
    }

    #[test]
    fn display_formats() {
        let r = RunReport {
            states_explored: 5,
            ..RunReport::default()
        };
        assert!(format!("{r}").contains("explored 5 states"));
        assert!(format!("{}", ExhaustionReason::WallClock).contains("deadline"));
    }
}
