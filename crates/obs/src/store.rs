//! The `StateStore` abstraction: where an exploration engine's
//! passed/waiting lists physically live.
//!
//! Explicit-state engines keep two collections: an arena of discovered
//! states (for trace reconstruction) and an inclusion-reduced passed
//! list partitioned by a discrete key. [`StateStore`] cuts both behind
//! one trait with two implementations:
//!
//! * [`ResidentStore`] — everything in memory, byte-for-byte the
//!   behaviour the engines had before the abstraction existed;
//! * [`SpillStore`] — out-of-core: the first `resident_budget` states
//!   stay fully in memory, every later state is serialized into an
//!   append-only [`StateLog`] and only a compact summary (plus its
//!   content fingerprint) stays resident. Inclusion checks probe the
//!   summary first and fault the full record from disk only on a
//!   possible-subsumption hit.
//!
//! The trait is engine-agnostic on purpose: any state type implementing
//! [`Spillable`] (timed-automata symbolic states today; MDP and BIP
//! discrete states are the planned next tenants) can live in either
//! store, and engines carry arbitrary resident per-node metadata `M`
//! (parent edges, permutation indices) alongside.
//!
//! Correctness contract: spilling must never change verdicts *or*
//! exploration statistics. The summary prefilter is a sound necessary
//! condition — it may only skip disk faults, never flip the outcome of
//! a cover check — and every faulted record is verified against its
//! length, checksum, and content [`Fingerprint`] before it is trusted.
//! A torn or bit-flipped record surfaces as a typed
//! [`SpillError`], never as a wrong answer.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use tempo_conc::{RecordRef, SpillError, StateLog};

use crate::{Fingerprint, SpillConfig, StableHasher};

/// What a state type must provide to live in a [`StateStore`].
///
/// `covered_by` is the exact partial order used for inclusion
/// reduction (zone subset for timed automata; plain equality is a
/// valid choice for engines without a lattice). The two `may_*`
/// prefilters answer from a resident [`Spillable::Summary`] alone and
/// must be *sound necessary conditions*: returning `false` asserts the
/// exact check would also fail, while `true` only licenses a disk
/// fault followed by the exact check.
pub trait Spillable: Sized + Clone {
    /// Discrete key partitioning the passed list.
    type Key: Eq + Hash + Clone;
    /// Compact resident summary of one stored state.
    type Summary;

    /// The discrete key of this state.
    fn key(&self) -> Self::Key;
    /// The resident summary kept for this state when it spills.
    fn summary(&self) -> Self::Summary;
    /// Exact cover check: is `self` subsumed by `other`?
    fn covered_by(&self, other: &Self) -> bool;
    /// Sound necessary condition for `state.covered_by(stored)` given
    /// only the stored state's summary.
    fn may_cover(stored: &Self::Summary, state: &Self) -> bool;
    /// Sound necessary condition for `stored.covered_by(state)` given
    /// only the stored state's summary.
    fn may_be_covered(stored: &Self::Summary, state: &Self) -> bool;
    /// Serializes the state for the spill log.
    fn encode(&self) -> Vec<u8>;
    /// Deserializes a state from spill-log bytes. The error string
    /// describes the defect; callers wrap it into [`SpillError::Corrupt`].
    ///
    /// # Errors
    ///
    /// A description of the malformation when `bytes` is not a valid
    /// encoding.
    fn decode(bytes: &[u8]) -> Result<Self, String>;
}

/// Out-of-core accounting of one store (all zero for a
/// [`ResidentStore`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillMetrics {
    /// States whose full representation went to the spill log.
    pub spilled_states: u64,
    /// Bytes appended to the spill log, record headers included.
    pub spill_bytes: u64,
    /// Full records faulted back in from the log.
    pub spill_faults: u64,
}

/// Storage behind an exploration engine's passed/waiting lists.
///
/// `insert` performs the engine's whole store-side insertion step:
/// evict stored states covered by the new one, append it to the arena
/// and the passed partition, and enqueue it on the waiting list. The
/// engine keeps the probe (`is_subsumed`) separate because budget
/// charging sits between probe and insert.
///
/// Every fallible method reports [`SpillError`] — a [`ResidentStore`]
/// never fails, a [`SpillStore`] fails loudly on any I/O or corruption.
pub trait StateStore<S: Spillable, M> {
    /// Inclusion probe: is `state` covered by a stored state with the
    /// same key?
    ///
    /// # Errors
    ///
    /// [`SpillError`] when a possible-subsumption hit faults a record
    /// that cannot be read back intact.
    fn is_subsumed(&mut self, state: &S) -> Result<bool, SpillError>;

    /// Evicts stored states covered by `state`, stores it with its
    /// resident metadata, enqueues it, and returns its node id.
    ///
    /// # Errors
    ///
    /// [`SpillError`] when spilling the state or faulting an eviction
    /// candidate fails.
    fn insert(&mut self, state: S, meta: M) -> Result<usize, SpillError>;

    /// Pops the next waiting node id (FIFO).
    fn pop_waiting(&mut self) -> Option<usize>;

    /// Current waiting-list length (for high-water tracking).
    fn waiting_len(&self) -> usize;

    /// Loads the full state of node `id`, faulting from disk if spilled.
    ///
    /// # Errors
    ///
    /// [`SpillError`] when the record cannot be read back intact.
    fn load(&mut self, id: usize) -> Result<S, SpillError>;

    /// The resident metadata of node `id`.
    fn meta(&self, id: usize) -> &M;

    /// States currently retained in the passed list (after inclusion
    /// eviction).
    fn stored(&self) -> usize;

    /// Out-of-core accounting so far.
    fn metrics(&self) -> SpillMetrics;
}

/// The all-in-memory store: the engines' original data layout
/// (`Vec` arena + `HashMap` passed list + `VecDeque` waiting list)
/// behind the [`StateStore`] trait. Never fails.
pub struct ResidentStore<S: Spillable, M> {
    nodes: Vec<(S, M)>,
    passed: HashMap<S::Key, Vec<usize>>,
    waiting: VecDeque<usize>,
}

impl<S: Spillable, M> ResidentStore<S, M> {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        ResidentStore {
            nodes: Vec::new(),
            passed: HashMap::new(),
            waiting: VecDeque::new(),
        }
    }
}

impl<S: Spillable, M> Default for ResidentStore<S, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Spillable, M> StateStore<S, M> for ResidentStore<S, M> {
    fn is_subsumed(&mut self, state: &S) -> Result<bool, SpillError> {
        let Some(entry) = self.passed.get(&state.key()) else {
            return Ok(false);
        };
        Ok(entry.iter().any(|&i| state.covered_by(&self.nodes[i].0)))
    }

    fn insert(&mut self, state: S, meta: M) -> Result<usize, SpillError> {
        let id = self.nodes.len();
        let nodes = &self.nodes;
        let entry = self.passed.entry(state.key()).or_default();
        entry.retain(|&i| !nodes[i].0.covered_by(&state));
        entry.push(id);
        self.nodes.push((state, meta));
        self.waiting.push_back(id);
        Ok(id)
    }

    fn pop_waiting(&mut self) -> Option<usize> {
        self.waiting.pop_front()
    }

    fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    fn load(&mut self, id: usize) -> Result<S, SpillError> {
        Ok(self.nodes[id].0.clone())
    }

    fn meta(&self, id: usize) -> &M {
        &self.nodes[id].1
    }

    fn stored(&self) -> usize {
        self.passed.values().map(Vec::len).sum()
    }

    fn metrics(&self) -> SpillMetrics {
        SpillMetrics::default()
    }
}

/// Content fingerprint of a spill-record payload, the store-level
/// integrity key: recomputed on every fault and compared against the
/// value captured at append time, so even a log whose checksum happens
/// to collide cannot smuggle altered bytes back into the engine.
#[must_use]
pub fn payload_digest(payload: &[u8]) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_tag("spill-record");
    h.write_bytes(payload);
    h.finish()
}

/// Where a spill-store node's full state lives.
enum Place<S: Spillable> {
    /// Fully in memory (within the resident budget).
    Resident(S),
    /// On disk; only the summary and integrity fingerprint are resident.
    Spilled {
        summary: S::Summary,
        rec: RecordRef,
        digest: Fingerprint,
    },
}

/// Process-wide sequence for unique spill-log file names, so several
/// concurrent analyses may share one spill directory.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Creates a fresh uniquely-named state log inside `config.path`.
///
/// # Errors
///
/// [`SpillError::Io`] when the directory or file cannot be created.
pub fn create_state_log(config: &SpillConfig) -> Result<StateLog, SpillError> {
    std::fs::create_dir_all(&config.path).map_err(|e| {
        SpillError::io(
            &format!("creating spill directory {}", config.path.display()),
            e,
        )
    })?;
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!("state.{}.{seq}.log", std::process::id());
    StateLog::create(&config.path.join(name))
}

/// The disk-backed store: an append-only [`StateLog`] of encoded
/// states with a resident index of `(offset, len, summary,
/// fingerprint)` per spilled node. See the module docs for the
/// correctness contract.
pub struct SpillStore<S: Spillable, M> {
    log: StateLog,
    resident_budget: usize,
    resident: usize,
    nodes: Vec<(Place<S>, M)>,
    passed: HashMap<S::Key, Vec<usize>>,
    waiting: VecDeque<usize>,
    metrics: SpillMetrics,
}

/// Faults one record back from the log, verifying checksum and content
/// fingerprint before decoding.
fn fault<S: Spillable>(
    log: &StateLog,
    rec: RecordRef,
    digest: Fingerprint,
    metrics: &mut SpillMetrics,
) -> Result<S, SpillError> {
    metrics.spill_faults += 1;
    let payload = log.read(rec)?;
    if payload_digest(&payload) != digest {
        return Err(SpillError::Corrupt {
            offset: rec.offset,
            detail: "payload fingerprint mismatch".to_owned(),
        });
    }
    S::decode(&payload).map_err(|detail| SpillError::Corrupt {
        offset: rec.offset,
        detail,
    })
}

impl<S: Spillable, M> SpillStore<S, M> {
    /// Opens a fresh spill store per `config`: creates the directory
    /// and a uniquely-named log file inside it (removed again on drop).
    ///
    /// # Errors
    ///
    /// [`SpillError::Io`] when the scratch file cannot be created.
    pub fn create(config: &SpillConfig) -> Result<Self, SpillError> {
        Ok(SpillStore {
            log: create_state_log(config)?,
            resident_budget: config.resident_budget,
            resident: 0,
            nodes: Vec::new(),
            passed: HashMap::new(),
            waiting: VecDeque::new(),
            metrics: SpillMetrics::default(),
        })
    }

    /// The path of the underlying log file (tests use it to inject
    /// corruption).
    #[must_use]
    pub fn log_path(&self) -> &Path {
        self.log.path()
    }

    /// Exact cover check against stored node `i`, faulting if spilled —
    /// `check` receives (stored, probe) in that order.
    fn covered(
        &mut self,
        i: usize,
        state: &S,
        prefilter: fn(&S::Summary, &S) -> bool,
        check: fn(&S, &S) -> bool,
    ) -> Result<bool, SpillError> {
        match &self.nodes[i].0 {
            Place::Resident(stored) => Ok(check(stored, state)),
            Place::Spilled {
                summary,
                rec,
                digest,
            } => {
                if !prefilter(summary, state) {
                    return Ok(false);
                }
                let (rec, digest) = (*rec, *digest);
                let stored = fault::<S>(&self.log, rec, digest, &mut self.metrics)?;
                Ok(check(&stored, state))
            }
        }
    }
}

impl<S: Spillable, M> StateStore<S, M> for SpillStore<S, M> {
    fn is_subsumed(&mut self, state: &S) -> Result<bool, SpillError> {
        let ids = match self.passed.get(&state.key()) {
            Some(entry) => entry.clone(),
            None => return Ok(false),
        };
        for i in ids {
            // stored covers state ⟺ state.covered_by(stored)
            if self.covered(i, state, S::may_cover, |stored, s| s.covered_by(stored))? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn insert(&mut self, state: S, meta: M) -> Result<usize, SpillError> {
        let key = state.key();
        let ids = self.passed.get(&key).cloned().unwrap_or_default();
        let mut kept = Vec::with_capacity(ids.len() + 1);
        for i in ids {
            // evict ⟺ stored.covered_by(state)
            let evict = self.covered(i, &state, S::may_be_covered, |stored, s| {
                stored.covered_by(s)
            })?;
            if !evict {
                kept.push(i);
            }
        }
        let place = if self.resident < self.resident_budget {
            self.resident += 1;
            Place::Resident(state)
        } else {
            let payload = state.encode();
            let rec = self.log.append(&payload)?;
            self.metrics.spilled_states += 1;
            Place::Spilled {
                summary: state.summary(),
                rec,
                digest: payload_digest(&payload),
            }
        };
        let id = self.nodes.len();
        kept.push(id);
        self.nodes.push((place, meta));
        self.passed.insert(key, kept);
        self.waiting.push_back(id);
        Ok(id)
    }

    fn pop_waiting(&mut self) -> Option<usize> {
        self.waiting.pop_front()
    }

    fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    fn load(&mut self, id: usize) -> Result<S, SpillError> {
        match &self.nodes[id].0 {
            Place::Resident(s) => Ok(s.clone()),
            Place::Spilled { rec, digest, .. } => {
                let (rec, digest) = (*rec, *digest);
                fault::<S>(&self.log, rec, digest, &mut self.metrics)
            }
        }
    }

    fn meta(&self, id: usize) -> &M {
        &self.nodes[id].1
    }

    fn stored(&self) -> usize {
        self.passed.values().map(Vec::len).sum()
    }

    fn metrics(&self) -> SpillMetrics {
        SpillMetrics {
            spill_bytes: self.log.bytes_written(),
            ..self.metrics
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy spillable state: key = value mod 4, cover = `<=` on value
    /// (so larger values subsume smaller ones within a key class), and
    /// the summary is the value itself (exact prefilter).
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Toy(u64);

    impl Spillable for Toy {
        type Key = u64;
        type Summary = u64;

        fn key(&self) -> u64 {
            self.0 % 4
        }
        fn summary(&self) -> u64 {
            self.0
        }
        fn covered_by(&self, other: &Self) -> bool {
            self.0 <= other.0
        }
        fn may_cover(stored: &u64, state: &Self) -> bool {
            state.0 <= *stored
        }
        fn may_be_covered(stored: &u64, state: &Self) -> bool {
            *stored <= state.0
        }
        fn encode(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
        fn decode(bytes: &[u8]) -> Result<Self, String> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| "bad length".to_owned())?;
            Ok(Toy(u64::from_le_bytes(arr)))
        }
    }

    fn spill_dir(name: &str) -> SpillConfig {
        let mut p = std::env::temp_dir();
        p.push(format!("tempo-store-test-{}-{name}", std::process::id()));
        SpillConfig {
            path: p,
            resident_budget: 0,
        }
    }

    fn exercise(store: &mut dyn StateStore<Toy, u32>) {
        assert!(!store.is_subsumed(&Toy(4)).unwrap());
        store.insert(Toy(4), 0).unwrap(); // key 0
        store.insert(Toy(5), 1).unwrap(); // key 1
        assert!(store.is_subsumed(&Toy(4)).unwrap(), "4 covered by 4");
        assert!(!store.is_subsumed(&Toy(8)).unwrap(), "8 beats 4");
        // Inserting 8 evicts 4 (same key class, covered).
        store.insert(Toy(8), 2).unwrap();
        assert_eq!(store.stored(), 2);
        assert_eq!(store.pop_waiting(), Some(0));
        assert_eq!(
            store.load(0).unwrap(),
            Toy(4),
            "evicted nodes stay loadable"
        );
        assert_eq!(*store.meta(2), 2);
    }

    #[test]
    fn resident_and_spill_agree() {
        let mut resident: ResidentStore<Toy, u32> = ResidentStore::new();
        exercise(&mut resident);
        assert_eq!(resident.metrics(), SpillMetrics::default());

        let cfg = spill_dir("agree");
        let mut spill: SpillStore<Toy, u32> = SpillStore::create(&cfg).unwrap();
        exercise(&mut spill);
        let m = spill.metrics();
        assert_eq!(m.spilled_states, 3, "budget 0 spills everything");
        assert!(m.spill_bytes > 0);
        assert!(m.spill_faults > 0);
        drop(spill);
        let _ = std::fs::remove_dir_all(&cfg.path);
    }

    #[test]
    fn resident_budget_keeps_prefix_in_memory() {
        let cfg = SpillConfig {
            resident_budget: 2,
            ..spill_dir("budget")
        };
        let mut store: SpillStore<Toy, ()> = SpillStore::create(&cfg).unwrap();
        store.insert(Toy(1), ()).unwrap();
        store.insert(Toy(2), ()).unwrap();
        store.insert(Toy(3), ()).unwrap();
        assert_eq!(store.metrics().spilled_states, 1);
        // Loading a resident node is not a fault.
        let faults = store.metrics().spill_faults;
        store.load(0).unwrap();
        assert_eq!(store.metrics().spill_faults, faults);
        store.load(2).unwrap();
        assert_eq!(store.metrics().spill_faults, faults + 1);
        drop(store);
        let _ = std::fs::remove_dir_all(&cfg.path);
    }

    #[test]
    fn torn_log_fails_loud_not_wrong() {
        let cfg = spill_dir("torn");
        let mut store: SpillStore<Toy, ()> = SpillStore::create(&cfg).unwrap();
        store.insert(Toy(7), ()).unwrap();
        // Tear the log mid-record.
        let path = store.log_path().to_path_buf();
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        match store.load(0) {
            Err(SpillError::Torn { .. }) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
        // The probe that would fault the torn record also fails loud.
        match store.is_subsumed(&Toy(3)) {
            Err(SpillError::Torn { .. }) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&cfg.path);
    }
}
