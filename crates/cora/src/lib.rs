//! # tempo-cora — minimum-cost reachability for priced timed automata
//!
//! The UPPAAL-CORA analogue of the workspace (Bozga et al., DATE 2012,
//! §II): timed automata extended with cost variables — a cost *rate* per
//! location (paid while delaying) and a cost per edge (paid when firing) —
//! and a solver for *minimum-cost reachability*, the basis of
//! optimization problems such as worst-case execution-time analysis.
//!
//! The paper's tool uses priced zones; this reproduction solves the same
//! problem with Dijkstra's algorithm over the digital-clocks semantics
//! ([`tempo_ta::DigitalExplorer`]), which is exact for closed models with
//! integer rates (see DESIGN.md for the substitution argument).
//!
//! ## Example
//!
//! ```
//! use tempo_ta::{NetworkBuilder, ClockAtom, StateFormula};
//! use tempo_cora::PricedNetwork;
//!
//! // Stay in Wait (rate 2) until x >= 3, then pay 5 to finish.
//! let mut b = NetworkBuilder::new();
//! let x = b.clock("x");
//! let mut a = b.automaton("Job");
//! let wait = a.location("Wait");
//! let done = a.location("Done");
//! a.edge(wait, done).guard_clock(ClockAtom::ge(x, 3)).done();
//! let job = a.done();
//! let net = b.build();
//!
//! let mut priced = PricedNetwork::new(net);
//! priced.set_rate(job, wait, 2);
//! priced.set_edge_cost(job, 0, 5);
//! let res = priced.min_cost_reach(&StateFormula::at(job, done)).expect("reachable");
//! assert_eq!(res.cost, 2 * 3 + 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tempo_conc::{run_workers, split_budget, ParallelConfig};
use tempo_obs::{Budget, Outcome, RunReport};
use tempo_ta::flow::FlowMetrics;
use tempo_ta::{
    AutomatonId, DigitalExplorer, DigitalMove, DigitalState, LocationId, Network, NetworkLu,
    StateFormula,
};

/// A timed-automata network annotated with location cost rates and edge
/// costs (a priced/weighted timed automaton, as in UPPAAL-CORA).
#[derive(Debug)]
pub struct PricedNetwork {
    net: Network,
    rates: HashMap<(AutomatonId, LocationId), i64>,
    edge_costs: HashMap<(AutomatonId, usize), i64>,
    threads: usize,
    flow: bool,
}

/// The result of a maximum-cost (WCET-style) reachability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxCost {
    /// The worst case is the given finite cost.
    Bounded(i64),
    /// A positive-cost cycle allows arbitrarily expensive runs.
    Unbounded,
}

impl MaxCost {
    /// The finite bound, if any.
    #[must_use]
    pub fn bounded(self) -> Option<i64> {
        match self {
            MaxCost::Bounded(c) => Some(c),
            MaxCost::Unbounded => None,
        }
    }
}

/// One step of an optimal priced path: a unit delay or a joint move,
/// with the exact cost paid for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostStep {
    /// The joint move fired, or `None` for one unit-delay tick.
    pub action: Option<DigitalMove>,
    /// The cost of this step: the tick cost of the pre-state for a
    /// delay, the sum of the participating edges' costs for a move.
    pub cost: i64,
}

impl CostStep {
    /// The display label: the move's, or `delay(1)` for a tick.
    #[must_use]
    pub fn label(&self) -> &str {
        self.action
            .as_ref()
            .map_or("delay(1)", |m| m.label.as_str())
    }
}

/// The result of a minimum-cost reachability query.
#[derive(Debug, Clone)]
pub struct MinCostResult {
    /// The minimum total cost of reaching the goal.
    pub cost: i64,
    /// The goal state reached at that cost.
    pub state: DigitalState,
    /// The optimal path as structured steps whose costs sum exactly to
    /// [`MinCostResult::cost`] — the raw material of a cost certificate.
    pub steps: Vec<CostStep>,
    /// Number of distinct states settled by the search.
    pub explored: usize,
}

impl MinCostResult {
    /// The action/delay labels along the optimal path (the old
    /// string-only view of [`MinCostResult::steps`]).
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        self.steps.iter().map(|s| s.label().to_owned()).collect()
    }
}

impl PricedNetwork {
    /// Wraps a network with all rates and edge costs zero.
    #[must_use]
    pub fn new(net: Network) -> Self {
        PricedNetwork {
            net,
            rates: HashMap::new(),
            edge_costs: HashMap::new(),
            threads: 1,
            flow: true,
        }
    }

    /// Disables the dataflow passes (query-directed slicing and
    /// per-location LU tick clamps), falling back to the global maximal
    /// constants. The optimum is identical either way — this switch
    /// exists for differential testing and measurement.
    #[must_use]
    pub fn without_flow(mut self) -> Self {
        self.flow = false;
        self
    }

    /// Sets the number of worker threads used by the value-iteration
    /// sweeps of [`max_cost_reach`](Self::max_cost_reach) (and the
    /// derived [`max_time_reach`](Self::max_time_reach)).
    ///
    /// The cost fixpoint is unique, so the result is identical at any
    /// thread count. [`min_cost_reach`](Self::min_cost_reach) is
    /// Dijkstra's algorithm and always runs sequentially.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the thread count from a shared [`ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// The configured number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Statically checks the network before running any cost query:
    /// the lint rules of `tempo-lint`, the digital-clocks closedness
    /// requirements of the underlying explorer, and the price
    /// assignment itself (rule CORA001: no negative cost rate or edge
    /// cost — Dijkstra, the UPPAAL-CORA semantics and cost-bounded
    /// probability queries all assume cost is monotone along a run).
    /// On success returns the non-blocking findings (warnings) for
    /// display.
    ///
    /// # Errors
    ///
    /// Returns a typed [`LintError`](tempo_lint::LintError) — never
    /// panics — when the model has error-level findings (or any
    /// finding under [`LintConfig::strict`](tempo_lint::LintConfig)).
    pub fn check_first(
        &self,
        config: &tempo_lint::LintConfig,
    ) -> Result<tempo_lint::LintReport, tempo_lint::LintError> {
        let mut report = tempo_lint::check_network(&self.net);
        if let Err(e) = DigitalExplorer::try_new(&self.net) {
            let lint: tempo_lint::LintError = e.into();
            report.diagnostics.extend(lint.diagnostics);
        }
        report.diagnostics.extend(self.lint_prices());
        report.into_result(config)
    }

    /// The CORA001 pass over this price assignment: every negative
    /// location rate or edge cost is an error-level diagnostic. Named
    /// entries are reported in a deterministic order.
    #[must_use]
    pub fn lint_prices(&self) -> Vec<tempo_lint::Diagnostic> {
        let mut found: Vec<(String, String)> = Vec::new();
        for (&(a, l), &rate) in &self.rates {
            if rate < 0 {
                let automaton = &self.net.automata()[a.index()];
                found.push((
                    automaton.name.clone(),
                    format!(
                        "location `{}` has negative cost rate {rate}; \
                         cost-bounded queries assume monotone cost",
                        automaton.locations[l.index()].name
                    ),
                ));
            }
        }
        for (&(a, ei), &cost) in &self.edge_costs {
            if cost < 0 {
                found.push((
                    self.net.automata()[a.index()].name.clone(),
                    format!(
                        "edge #{ei} has negative firing cost {cost}; \
                         cost-bounded queries assume monotone cost"
                    ),
                ));
            }
        }
        found.sort();
        found
            .into_iter()
            .map(|(component, msg)| tempo_lint::Diagnostic::error("CORA001", Some(&component), msg))
            .collect()
    }

    /// Sets the cost rate of a location (cost per time unit spent
    /// there). Negative rates are accepted here but rejected by
    /// [`check_first`](Self::check_first) (rule CORA001): the engines
    /// assume monotone cost, and a lint refusal beats a panic for
    /// models built from untrusted input.
    pub fn set_rate(&mut self, a: AutomatonId, l: LocationId, rate: i64) {
        self.rates.insert((a, l), rate);
    }

    /// Sets the firing cost of edge `edge_index` of automaton `a`.
    /// Negative costs are accepted here but rejected by
    /// [`check_first`](Self::check_first) (rule CORA001).
    pub fn set_edge_cost(&mut self, a: AutomatonId, edge_index: usize, cost: i64) {
        self.edge_costs.insert((a, edge_index), cost);
    }

    /// The cost rate of a location (`0` unless set).
    #[must_use]
    pub fn rate(&self, a: AutomatonId, l: LocationId) -> i64 {
        self.rates.get(&(a, l)).copied().unwrap_or(0)
    }

    /// The firing cost of edge `edge_index` of automaton `a` (`0` unless
    /// set).
    #[must_use]
    pub fn edge_cost(&self, a: AutomatonId, edge_index: usize) -> i64 {
        self.edge_costs.get(&(a, edge_index)).copied().unwrap_or(0)
    }

    /// The cost rate of one tick in the given state: the sum of the rates
    /// of all current locations.
    #[must_use]
    pub fn tick_cost(&self, state: &DigitalState) -> i64 {
        state
            .locs
            .iter()
            .enumerate()
            .map(|(ai, &l)| self.rates.get(&(AutomatonId(ai), l)).copied().unwrap_or(0))
            .sum()
    }

    /// Minimum-cost reachability: the cheapest way to reach a state
    /// satisfying `goal`, or `None` if the goal is unreachable.
    ///
    /// Runs Dijkstra over the digital-clock graph; exact for closed
    /// models with integer costs.
    #[must_use]
    pub fn min_cost_reach(&self, goal: &StateFormula) -> Option<MinCostResult> {
        self.min_cost_reach_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// Minimum-cost reachability under a resource [`Budget`].
    ///
    /// With [`Budget::unlimited`] this is exactly
    /// [`min_cost_reach`](Self::min_cost_reach). A goal found within the
    /// budget is definitive (`Complete` — Dijkstra settles states in cost
    /// order, so the first goal hit is optimal over the whole graph). On
    /// exhaustion the partial value is `None`: "not reached within the
    /// settled portion", never a proof of unreachability.
    pub fn min_cost_reach_governed(
        &self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<Option<MinCostResult>> {
        let gov = budget.governor();
        let (sliced, mut metrics) = self.run_slice();
        let base: &Network = sliced.as_ref().map_or(&self.net, |s| &s.net);
        // Active-clock reduction: clocks read by no guard, invariant, or
        // goal atom cannot influence enabledness or cost, so dropping
        // them merges digital states that differ only in dead-clock
        // values. Costs are per location/edge (indices unchanged), so
        // the optimum is preserved.
        let reduction = base.reduced_with(&goal.clock_atoms());
        if let Some(s) = &sliced {
            if s.disabled_edges > 0 {
                let plain = self.net.reduced_with(&goal.clock_atoms()).removed().len();
                metrics.sliced_clocks = reduction.removed().len().saturating_sub(plain) as u64;
            }
        }
        let (net, goal) = if reduction.is_reduced() {
            let goal = reduction
                .map_formula(goal)
                .expect("goal atoms are kept alive by reduced_with");
            (reduction.network(), goal)
        } else {
            (base, goal.clone())
        };
        let mut exp = DigitalExplorer::new(net);
        if self.flow {
            // Per-location LU tick clamp: sound for the cost search
            // because clamp-merged states share their location vector
            // (hence tick rates) and are guard-equivalent, and the cost
            // certificate replays the recorded move list rather than
            // comparing recorded states.
            let lu = NetworkLu::analyze(net, &goal.clock_atoms());
            metrics.lu_tightened = lu.tightened(&net.max_constants());
            exp = exp.with_lu(lu);
        }
        let init = exp.initial_state();

        let mut dist: HashMap<DigitalState, i64> = HashMap::new();
        let mut pred: HashMap<DigitalState, (DigitalState, Option<DigitalMove>, i64)> =
            HashMap::new();
        let mut heap: BinaryHeap<Reverse<(i64, u64)>> = BinaryHeap::new();
        let mut arena: Vec<DigitalState> = Vec::new();
        let mut peak = 0usize;
        let mut explored = 0;

        if gov.charge_state() {
            dist.insert(init.clone(), 0);
            arena.push(init);
            heap.push(Reverse((0, 0)));
            peak = 1;
        }

        'settle: while let Some(Reverse((d, idx))) = heap.pop() {
            if !gov.check_time() {
                break;
            }
            let state = arena[idx as usize].clone();
            if dist.get(&state).copied() != Some(d) {
                continue; // stale heap entry
            }
            explored += 1;
            if exp.satisfies(&state, &goal) {
                let mut steps = Vec::new();
                let mut cur = state.clone();
                while let Some((prev, action, cost)) = pred.get(&cur) {
                    steps.push(CostStep {
                        action: action.clone(),
                        cost: *cost,
                    });
                    cur = prev.clone();
                }
                steps.reverse();
                let report = metrics.stamp(self.dijkstra_report(
                    &gov,
                    explored,
                    dist.len(),
                    peak,
                    net.dim(),
                ));
                return gov.finish_complete(
                    Some(MinCostResult {
                        cost: d,
                        state,
                        steps,
                        explored,
                    }),
                    report,
                );
            }
            // Tick successor.
            if let Some(next) = exp.tick(&state) {
                let tick = self.tick_cost(&state);
                let nd = d + tick;
                let known = dist.contains_key(&next);
                if dist.get(&next).is_none_or(|&old| nd < old) {
                    if !known && !gov.charge_state() {
                        break 'settle;
                    }
                    dist.insert(next.clone(), nd);
                    pred.insert(next.clone(), (state.clone(), None, tick));
                    arena.push(next);
                    heap.push(Reverse((nd, (arena.len() - 1) as u64)));
                    peak = peak.max(heap.len());
                }
            }
            // Action successors.
            for (mv, next) in exp.moves(&state) {
                let edge_cost: i64 = mv
                    .participants
                    .iter()
                    .map(|(ai, ei, _)| {
                        self.edge_costs
                            .get(&(AutomatonId(*ai), *ei))
                            .copied()
                            .unwrap_or(0)
                    })
                    .sum();
                let nd = d + edge_cost;
                let known = dist.contains_key(&next);
                if dist.get(&next).is_none_or(|&old| nd < old) {
                    if !known && !gov.charge_state() {
                        break 'settle;
                    }
                    dist.insert(next.clone(), nd);
                    pred.insert(next.clone(), (state.clone(), Some(mv.clone()), edge_cost));
                    arena.push(next);
                    heap.push(Reverse((nd, (arena.len() - 1) as u64)));
                    peak = peak.max(heap.len());
                }
            }
        }
        let report =
            metrics.stamp(self.dijkstra_report(&gov, explored, dist.len(), peak, net.dim()));
        gov.finish(None, report)
    }

    /// Runs query-directed slicing when the dataflow passes are enabled
    /// and collects its run-report metrics.
    fn run_slice(&self) -> (Option<tempo_ta::Slice>, FlowMetrics) {
        let mut metrics = FlowMetrics::default();
        let sliced = self.flow.then(|| tempo_ta::slice(&self.net));
        if let Some(s) = &sliced {
            metrics.sliced_edges = s.disabled_edges;
            metrics.vars_narrowed = s.vars_narrowed;
            metrics.sliced_vars = s.dead_vars.len() as u64;
        }
        (sliced, metrics)
    }

    fn dijkstra_report(
        &self,
        gov: &tempo_obs::Governor,
        explored: usize,
        stored: usize,
        peak: usize,
        dim: usize,
    ) -> RunReport {
        RunReport {
            states_explored: explored as u64,
            states_stored: stored as u64,
            peak_waiting: peak as u64,
            sweeps: 0,
            runs_simulated: 0,
            dbm_dim: dim as u64,
            dbm_dim_model: self.net.dim() as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        }
    }

    /// Maximum-cost reachability: the most expensive way to reach a
    /// state satisfying `goal`, the query behind worst-case execution
    /// time analysis (the paper's §II cites METAMOC's WCET analysis as an
    /// application of priced timed automata).
    ///
    /// Returns:
    ///
    /// * `Some(MaxCost::Bounded(c))` — the worst-case cost is `c`;
    /// * `Some(MaxCost::Unbounded)` — a positive-cost cycle can delay the
    ///   goal indefinitely (no finite WCET);
    /// * `None` — the goal is unreachable.
    ///
    /// Implemented as Bellman–Ford-style longest-path value iteration over
    /// the digital-clock graph: after `|S|` sweeps any further improvement
    /// proves a positive-cost cycle.
    #[must_use]
    pub fn max_cost_reach(&self, goal: &StateFormula) -> Option<MaxCost> {
        self.max_cost_reach_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// Maximum-cost reachability under a resource [`Budget`]. The graph
    /// build charges the state budget; each value-iteration sweep charges
    /// the iteration budget. On exhaustion the partial value is `None`:
    /// no worst-case bound was established (an intermediate longest-path
    /// value is only a lower bound on the true WCET, so reporting it as a
    /// bound would be unsound).
    pub fn max_cost_reach_governed(
        &self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<Option<MaxCost>> {
        let gov = budget.governor();
        // Same slicing + active-clock reduction + per-location LU clamp
        // pipeline as `min_cost_reach_governed`. The clamp preserves
        // both the finite worst case (clamp-merged states are
        // cost-bisimilar) and unboundedness (a positive-cost cycle
        // exists in the clamped graph iff one exists exactly).
        let (sliced, mut metrics) = self.run_slice();
        let base: &Network = sliced.as_ref().map_or(&self.net, |s| &s.net);
        let reduction = base.reduced_with(&goal.clock_atoms());
        if let Some(s) = &sliced {
            if s.disabled_edges > 0 {
                let plain = self.net.reduced_with(&goal.clock_atoms()).removed().len();
                metrics.sliced_clocks = reduction.removed().len().saturating_sub(plain) as u64;
            }
        }
        let (net, goal) = if reduction.is_reduced() {
            let goal = reduction
                .map_formula(goal)
                .expect("goal atoms are kept alive by reduced_with");
            (reduction.network(), goal)
        } else {
            (base, goal.clone())
        };
        let mut exp = DigitalExplorer::new(net);
        if self.flow {
            let lu = NetworkLu::analyze(net, &goal.clock_atoms());
            metrics.lu_tightened = lu.tightened(&net.max_constants());
            exp = exp.with_lu(lu);
        }
        // Build the reachable graph.
        let mut states: Vec<DigitalState> = Vec::new();
        let mut index: HashMap<DigitalState, usize> = HashMap::new();
        let mut succs: Vec<Vec<(usize, i64)>> = Vec::new();
        let mut peak = 0usize;
        let init = exp.initial_state();
        if gov.charge_state() {
            index.insert(init.clone(), 0);
            states.push(init);
            succs.push(Vec::new());
            peak = 1;
        }
        let mut frontier: Vec<usize> = if states.is_empty() { vec![] } else { vec![0] };
        'build: while let Some(i) = frontier.pop() {
            if !gov.check_time() {
                break;
            }
            let state = states[i].clone();
            let mut edges = Vec::new();
            if let Some(next) = exp.tick(&state) {
                let cost = self.tick_cost(&state);
                match index.get(&next) {
                    Some(&j) => edges.push((j, cost)),
                    None => {
                        if !gov.charge_state() {
                            break 'build;
                        }
                        let j = states.len();
                        index.insert(next.clone(), j);
                        states.push(next);
                        succs.push(Vec::new());
                        frontier.push(j);
                        edges.push((j, cost));
                    }
                }
            }
            for (mv, next) in exp.moves(&state) {
                let cost: i64 = mv
                    .participants
                    .iter()
                    .map(|(ai, ei, _)| {
                        self.edge_costs
                            .get(&(AutomatonId(*ai), *ei))
                            .copied()
                            .unwrap_or(0)
                    })
                    .sum();
                match index.get(&next) {
                    Some(&j) => edges.push((j, cost)),
                    None => {
                        if !gov.charge_state() {
                            break 'build;
                        }
                        let j = states.len();
                        index.insert(next.clone(), j);
                        states.push(next);
                        succs.push(Vec::new());
                        frontier.push(j);
                        edges.push((j, cost));
                    }
                }
            }
            peak = peak.max(frontier.len());
            succs[i] = edges;
        }
        let n = states.len();
        let mut sweeps = 0u64;
        if gov.is_exhausted() {
            // Incomplete graph: any fixpoint over it would be unsound.
            let report = metrics.stamp(self.sweep_report(&gov, n, peak, sweeps, net.dim()));
            return gov.finish(None, report);
        }
        // value[s]: the max cost of reaching the goal from s (the goal
        // itself may be passed through; the run stops at the *last* goal
        // visit? No — WCET asks for first arrival, so goal states have
        // value 0 and are not expanded).
        let goal_mask: Vec<bool> = states.iter().map(|s| exp.satisfies(s, &goal)).collect();
        if !goal_mask.iter().any(|&g| g) {
            // The graph is complete here, so unreachability is definitive.
            let report = metrics.stamp(self.sweep_report(&gov, n, peak, sweeps, net.dim()));
            return gov.finish_complete(None, report);
        }
        const NEG_INF: i64 = i64::MIN / 4;
        let mut value: Vec<i64> = goal_mask
            .iter()
            .map(|&g| if g { 0 } else { NEG_INF })
            .collect();
        for sweep in 0..=n {
            if !gov.charge_iteration() || !gov.check_time() {
                let report = metrics.stamp(self.sweep_report(&gov, n, peak, sweeps, net.dim()));
                return gov.finish(None, report);
            }
            sweeps += 1;
            let changed = if self.threads > 1 {
                // Jacobi sweep: each worker relaxes a chunk of states
                // against a snapshot of `value`, and the improvements are
                // applied afterwards. Paths of k edges are covered after k
                // sweeps, so the `sweep == n` cycle check below still
                // proves a positive-cost cycle (Bellman–Ford bound).
                let ranges = chunk_ranges(n, self.threads);
                let (value_ref, goal_ref, succs_ref) = (&value, &goal_mask, &succs);
                let improved: Vec<(usize, i64)> = run_workers(self.threads, |w| {
                    ranges[w]
                        .clone()
                        .filter(|&s| !goal_ref[s])
                        .filter_map(|s| {
                            let best = succs_ref[s]
                                .iter()
                                .filter(|&&(t, _)| value_ref[t] > NEG_INF)
                                .map(|&(t, c)| value_ref[t] + c)
                                .max()?;
                            (best > value_ref[s]).then_some((s, best))
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
                let changed = !improved.is_empty();
                for (s, v) in improved {
                    value[s] = v;
                }
                changed
            } else {
                let mut changed = false;
                for s in 0..n {
                    if goal_mask[s] {
                        continue;
                    }
                    for &(t, c) in &succs[s] {
                        if value[t] > NEG_INF && value[t] + c > value[s] {
                            value[s] = value[t] + c;
                            changed = true;
                        }
                    }
                }
                changed
            };
            if !changed {
                break;
            }
            if sweep == n {
                let report = metrics.stamp(self.sweep_report(&gov, n, peak, sweeps, net.dim()));
                return gov.finish_complete(Some(MaxCost::Unbounded), report);
            }
        }
        let report = metrics.stamp(self.sweep_report(&gov, n, peak, sweeps, net.dim()));
        if value[0] <= NEG_INF {
            // initial state cannot reach the goal
            return gov.finish_complete(None, report);
        }
        gov.finish_complete(Some(MaxCost::Bounded(value[0])), report)
    }

    fn sweep_report(
        &self,
        gov: &tempo_obs::Governor,
        stored: usize,
        peak: usize,
        sweeps: u64,
        dim: usize,
    ) -> RunReport {
        RunReport {
            states_explored: stored as u64,
            states_stored: stored as u64,
            peak_waiting: peak as u64,
            sweeps,
            runs_simulated: 0,
            dbm_dim: dim as u64,
            dbm_dim_model: self.net.dim() as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        }
    }

    /// Maximum time to reach `goal` (worst-case completion time; WCET when
    /// the goal is the program's final location).
    #[must_use]
    pub fn max_time_reach(&self, goal: &StateFormula) -> Option<MaxCost> {
        self.max_time_reach_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// [`max_time_reach`](Self::max_time_reach) under a resource
    /// [`Budget`]; same partial semantics as
    /// [`max_cost_reach_governed`](Self::max_cost_reach_governed).
    pub fn max_time_reach_governed(
        &self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<Option<MaxCost>> {
        let timed = PricedNetwork {
            net: self.net.clone(),
            rates: (0..self.net.automata()[0].locations.len())
                .map(|li| ((AutomatonId(0), LocationId(li)), 1_i64))
                .collect(),
            edge_costs: HashMap::new(),
            threads: self.threads,
            flow: self.flow,
        };
        timed.max_cost_reach_governed(goal, budget)
    }

    /// Minimum time to reach `goal` (cost = elapsed time, edge costs 0):
    /// the classic "fastest reachability" query used in WCET-style
    /// analyses.
    #[must_use]
    pub fn min_time_reach(&self, goal: &StateFormula) -> Option<i64> {
        self.min_time_reach_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// [`min_time_reach`](Self::min_time_reach) under a resource
    /// [`Budget`]; same partial semantics as
    /// [`min_cost_reach_governed`](Self::min_cost_reach_governed).
    pub fn min_time_reach_governed(
        &self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<Option<i64>> {
        // Every automaton is always in exactly one location, so putting
        // rate 1 on the locations of one automaton makes each tick cost
        // exactly one time unit.
        let timed = PricedNetwork {
            net: self.net.clone(),
            rates: (0..self.net.automata()[0].locations.len())
                .map(|li| ((AutomatonId(0), LocationId(li)), 1_i64))
                .collect(),
            edge_costs: HashMap::new(),
            threads: self.threads,
            flow: self.flow,
        };
        timed
            .min_cost_reach_governed(goal, budget)
            .map(|r| r.map(|r| r.cost))
    }
}

impl tempo_obs::StableDigest for PricedNetwork {
    /// Structural fingerprint of the priced model: the underlying
    /// network plus rate and edge-cost annotations. The annotation maps
    /// fold commutatively (they are keyed sets — iteration order of the
    /// backing `HashMap` is meaningless); the thread count is excluded
    /// because the minimum cost does not depend on it.
    fn digest(&self, h: &mut tempo_obs::StableHasher) {
        use tempo_obs::Fingerprint;
        h.write_tag("priced-network");
        self.net.digest(h);
        h.write_unordered(
            self.rates
                .iter()
                .filter(|(_, &r)| r != 0)
                .map(|(&(a, l), &rate)| Fingerprint::of(&(a.index(), l.index(), rate))),
        );
        h.write_unordered(
            self.edge_costs
                .iter()
                .filter(|(_, &c)| c != 0)
                .map(|(&(a, e), &cost)| Fingerprint::of(&(a.index(), e, cost))),
        );
    }
}

/// Splits `0..n` into `parts` contiguous index ranges of near-equal size.
fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let mut start = 0;
    split_budget(n, parts)
        .into_iter()
        .map(|len| {
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    /// Two routes to Done: slow-but-cheap via A (rate 1, needs 10 time
    /// units), fast-but-expensive via B (rate 1, 2 time units, edge cost
    /// 20).
    fn two_routes() -> (Network, AutomatonId, LocationId) {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Job");
        let start = a.location("Start");
        let via_a = a.location("ViaA");
        let via_b = a.location("ViaB");
        let done = a.location("Done");
        a.edge(start, via_a).reset(x, 0).done(); // edge 0
        a.edge(start, via_b).reset(x, 0).done(); // edge 1
        a.edge(via_a, done).guard_clock(ClockAtom::ge(x, 10)).done(); // edge 2
        a.edge(via_b, done).guard_clock(ClockAtom::ge(x, 2)).done(); // edge 3
        let job = a.done();
        (b.build(), job, done)
    }

    #[test]
    fn cheapest_route_wins() {
        let (net, job, done) = two_routes();
        let mut p = PricedNetwork::new(net);
        p.set_rate(job, LocationId(1), 1); // ViaA
        p.set_rate(job, LocationId(2), 1); // ViaB
        p.set_edge_cost(job, 3, 20); // ViaB -> Done costs 20
        let res = p.min_cost_reach(&StateFormula::at(job, done)).unwrap();
        assert_eq!(res.cost, 10, "slow route: 10 time units at rate 1");
        // Make the slow route expensive instead.
        let (net, job, done) = two_routes();
        let mut p = PricedNetwork::new(net);
        p.set_rate(job, LocationId(1), 5); // ViaA rate 5 → 50
        p.set_rate(job, LocationId(2), 1); // ViaB → 2 + 20 = 22
        p.set_edge_cost(job, 3, 20);
        let res = p.min_cost_reach(&StateFormula::at(job, done)).unwrap();
        assert_eq!(res.cost, 22);
    }

    #[test]
    fn min_time_ignores_costs() {
        let (net, job, done) = two_routes();
        let p = PricedNetwork::new(net);
        assert_eq!(p.min_time_reach(&StateFormula::at(job, done)), Some(2));
    }

    #[test]
    fn unreachable_goal() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        let _ = l1;
        a.edge(l0, l0).done();
        let aid = a.done();
        let net = b.build();
        let p = PricedNetwork::new(net);
        assert!(p
            .min_cost_reach(&StateFormula::at(aid, LocationId(1)))
            .is_none());
    }

    #[test]
    fn zero_cost_paths() {
        let (net, job, done) = two_routes();
        let p = PricedNetwork::new(net);
        let res = p.min_cost_reach(&StateFormula::at(job, done)).unwrap();
        assert_eq!(res.cost, 0, "no rates or edge costs set");
        assert!(!res.steps.is_empty());
        assert!(res.steps.iter().all(|s| s.cost == 0));
    }

    #[test]
    fn wcet_bounded_by_invariants() {
        // A straight-line "program": Fetch (1..=2) → Exec (1..=3) → Done.
        // WCET = 5, BCET = 2.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Prog");
        let fetch = a.location_with_invariant("Fetch", vec![ClockAtom::le(x, 2)]);
        let exec = a.location_with_invariant("Exec", vec![ClockAtom::le(x, 3)]);
        let done = a.location("Done");
        a.edge(fetch, exec)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        a.edge(exec, done).guard_clock(ClockAtom::ge(x, 1)).done();
        let prog = a.done();
        let net = b.build();
        let p = PricedNetwork::new(net);
        let goal = StateFormula::at(prog, done);
        assert_eq!(p.max_time_reach(&goal), Some(MaxCost::Bounded(5)));
        assert_eq!(p.min_time_reach(&goal), Some(2));
    }

    #[test]
    fn wcet_unbounded_with_idle_loop() {
        // A loop that may retry forever before finishing: no finite WCET.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Prog");
        let busy = a.location_with_invariant("Busy", vec![ClockAtom::le(x, 2)]);
        let done = a.location("Done");
        a.edge(busy, busy)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        a.edge(busy, done).guard_clock(ClockAtom::ge(x, 1)).done();
        let prog = a.done();
        let net = b.build();
        let p = PricedNetwork::new(net);
        assert_eq!(
            p.max_time_reach(&StateFormula::at(prog, done)),
            Some(MaxCost::Unbounded)
        );
    }

    #[test]
    fn max_cost_unreachable_goal() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).done();
        let aid = a.done();
        let net = b.build();
        let p = PricedNetwork::new(net);
        assert_eq!(
            p.max_cost_reach(&StateFormula::at(aid, LocationId(1))),
            None
        );
    }

    #[test]
    fn zero_cost_cycles_stay_bounded() {
        // A zero-rate wait loop cannot inflate the (cost) WCET.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 2)]);
        let l1 = a.location("L1");
        a.edge(l0, l0)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        a.edge(l0, l1).done();
        let aid = a.done();
        let net = b.build();
        let mut p = PricedNetwork::new(net);
        // Only the final edge costs anything.
        p.set_edge_cost(aid, 1, 7);
        assert_eq!(
            p.max_cost_reach(&StateFormula::at(aid, LocationId(1))),
            Some(MaxCost::Bounded(7))
        );
    }

    #[test]
    fn path_reconstruction_is_consistent() {
        let (net, job, done) = two_routes();
        let mut p = PricedNetwork::new(net);
        p.set_rate(job, LocationId(1), 1); // ViaA: 10 time units → 10
        p.set_rate(job, LocationId(2), 1); // ViaB: 2 time units → 2
        let res = p.min_cost_reach(&StateFormula::at(job, done)).unwrap();
        // Optimal: Start → ViaB (tau), 2 delays, ViaB → Done (tau).
        let delays = res.steps.iter().filter(|s| s.action.is_none()).count();
        assert_eq!(delays, 2);
        assert_eq!(res.cost, 2);
        assert_eq!(res.labels().len(), res.steps.len());
    }

    #[test]
    fn step_costs_sum_to_total() {
        let (net, job, done) = two_routes();
        let mut p = PricedNetwork::new(net);
        p.set_rate(job, LocationId(1), 5);
        p.set_rate(job, LocationId(2), 1);
        p.set_edge_cost(job, 3, 20);
        let res = p.min_cost_reach(&StateFormula::at(job, done)).unwrap();
        assert_eq!(res.cost, 22);
        let sum: i64 = res.steps.iter().map(|s| s.cost).sum();
        assert_eq!(sum, res.cost, "per-step costs must sum to the total");
        // Delay steps pay the tick cost of the pre-state, moves pay edge
        // costs: the expensive final edge must appear as its own step.
        assert!(res.steps.iter().any(|s| s.action.is_some() && s.cost == 20));
    }
}
