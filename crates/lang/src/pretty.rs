//! Canonical pretty-printer: `parse(render(m)) == m` for every model
//! the parser can produce (identifier spans are ignored by AST
//! equality, so the re-parsed tree compares equal even though every
//! position changed).
//!
//! The renderer inserts parentheses exactly where precedence demands
//! them, so a render→parse→render cycle is a fixpoint after the first
//! render.

use crate::ast::*;
use std::fmt::Write;

/// Renders a model in canonical form.
#[must_use]
pub fn render(m: &Model) -> String {
    let mut out = String::new();
    for p in &m.params {
        let _ = writeln!(out, "param {} = {}", p.name, p.value);
    }
    for c in &m.channels {
        let kw = match c.kind {
            ChannelKind::Handshake => "channel",
            ChannelKind::Urgent => "urgent channel",
            ChannelKind::Broadcast => "broadcast channel",
        };
        let names: Vec<&str> = c.names.iter().map(|n| n.name.as_str()).collect();
        let _ = writeln!(out, "{kw} {}", names.join(", "));
    }
    for c in &m.clocks {
        match &c.size {
            None => {
                let _ = writeln!(out, "clock {}", c.name);
            }
            Some(e) => {
                let _ = writeln!(out, "clock {}[{}]", c.name, int_expr(e, 0));
            }
        }
    }
    for v in &m.vars {
        let mut line = format!("var {}", v.name);
        if let Some(e) = &v.size {
            let _ = write!(line, "[{}]", int_expr(e, 0));
        }
        let _ = write!(line, ": {}..{}", int_expr(&v.lo, 0), int_expr(&v.hi, 0));
        if let Some(e) = &v.init {
            let _ = write!(line, " = {}", int_expr(e, 0));
        }
        let _ = writeln!(out, "{line}");
    }
    for p in &m.processes {
        out.push('\n');
        let mut head = format!("process {}", p.name);
        if !p.params.is_empty() {
            let names: Vec<&str> = p.params.iter().map(|n| n.name.as_str()).collect();
            let _ = write!(head, "({})", names.join(", "));
        }
        let _ = writeln!(out, "{head} =");
        let _ = writeln!(out, "  {}", proc(&p.body, 0));
    }
    if let Some(sys) = &m.system {
        out.push('\n');
        let mut line = "system ".to_owned();
        for (i, c) in sys.components.iter().enumerate() {
            if i > 0 {
                line.push_str(" ||");
                let set = &sys.syncs[i - 1];
                if !set.is_empty() {
                    let names: Vec<&str> = set.iter().map(|n| n.name.as_str()).collect();
                    let _ = write!(line, " {{{}}}", names.join(", "));
                }
                line.push(' ');
            }
            line.push_str(&component(c));
        }
        let _ = writeln!(out, "{line}");
    }
    if !m.asserts.is_empty() {
        out.push('\n');
    }
    for a in &m.asserts {
        let _ = writeln!(out, "assert {}", assert_kind(&a.kind));
    }
    out
}

fn component(c: &Component) -> String {
    let mut s = c.process.name.clone();
    if !c.args.is_empty() {
        let args: Vec<String> = c.args.iter().map(|a| int_expr(a, 0)).collect();
        let _ = write!(s, "({})", args.join(", "));
    }
    if !c.hide.is_empty() {
        let names: Vec<&str> = c.hide.iter().map(|n| n.name.as_str()).collect();
        let _ = write!(s, " \\ {{{}}}", names.join(", "));
    }
    if !c.rename.is_empty() {
        let pairs: Vec<String> = c
            .rename
            .iter()
            .map(|(o, n)| format!("{} := {}", o.name, n.name))
            .collect();
        let _ = write!(s, " [[{}]]", pairs.join(", "));
    }
    if let Some(a) = &c.alias {
        let _ = write!(s, " as {}", a.name);
    }
    s
}

/// Process-operator levels: 0 = internal choice, 1 = external choice,
/// 2 = term (prefix, `inv`, atoms). A construct whose level is below
/// the level its position requires is parenthesized.
fn proc(p: &Proc, min_level: u8) -> String {
    let (level, body) = match p {
        Proc::Stop => (2, "STOP".to_owned()),
        Proc::Skip => (2, "SKIP".to_owned()),
        Proc::Call(name, args) => {
            let mut s = name.name.clone();
            if !args.is_empty() {
                let rendered: Vec<String> = args.iter().map(|a| int_expr(a, 0)).collect();
                let _ = write!(s, "({})", rendered.join(", "));
            }
            (2, s)
        }
        Proc::Prefix {
            guards,
            event,
            updates,
            then,
        } => {
            let mut s = String::new();
            if !guards.is_empty() {
                let atoms: Vec<String> = guards.iter().map(guard_atom).collect();
                let _ = write!(s, "when {{{}}} ", atoms.join(", "));
            }
            match event {
                EventSpec::Tau => s.push_str("tau"),
                EventSpec::Send(c) => {
                    let _ = write!(s, "{}!", c.name);
                }
                EventSpec::Recv(c) => {
                    let _ = write!(s, "{}?", c.name);
                }
            }
            if !updates.is_empty() {
                let us: Vec<String> = updates.iter().map(update).collect();
                let _ = write!(s, " {{{}}}", us.join(", "));
            }
            let _ = write!(s, " -> {}", proc(then, 2));
            (2, s)
        }
        Proc::Invariant(atoms, body) => {
            let ccs: Vec<String> = atoms.iter().map(clock_constraint).collect();
            (2, format!("inv {{{}}} {}", ccs.join(", "), proc(body, 2)))
        }
        Proc::ExtChoice(parts) => {
            let rendered: Vec<String> = parts.iter().map(|q| proc(q, 2)).collect();
            (1, rendered.join(" [] "))
        }
        Proc::IntChoice(parts) => {
            let rendered: Vec<String> = parts.iter().map(|q| proc(q, 1)).collect();
            (0, rendered.join(" |~| "))
        }
    };
    if level < min_level {
        format!("({body})")
    } else {
        body
    }
}

fn guard_atom(g: &GuardAtom) -> String {
    match g {
        GuardAtom::Clock(cc) => clock_constraint(cc),
        GuardAtom::Data(a, op, b) => {
            format!("{} {} {}", int_expr(a, 0), op.symbol(), int_expr(b, 0))
        }
    }
}

fn clock_ref(c: &ClockRef) -> String {
    match &c.index {
        None => c.name.name.clone(),
        Some(e) => format!("{}[{}]", c.name, int_expr(e, 0)),
    }
}

fn clock_constraint(cc: &ClockConstraint) -> String {
    let mut s = clock_ref(&cc.clock);
    if let Some(m) = &cc.minus {
        let _ = write!(s, " - {}", clock_ref(m));
    }
    let _ = write!(s, " {} {}", cc.op.symbol(), int_expr(&cc.bound, 0));
    s
}

fn update(u: &Update) -> String {
    match u {
        Update::ClockReset(c, e) => format!("{} := {}", clock_ref(c), int_expr(e, 0)),
        Update::Assign(v, None, e) => format!("{} := {}", v.name, int_expr(e, 0)),
        Update::Assign(v, Some(i), e) => {
            format!("{}[{}] := {}", v.name, int_expr(i, 0), int_expr(e, 0))
        }
    }
}

/// Integer-expression levels: 1 = additive, 2 = multiplicative,
/// 3 = unary minus, 4 = atom. Left-associative operators render their
/// right operand one level up so `a - (b - c)` keeps its parentheses.
fn int_expr(e: &IntExpr, min_level: u8) -> String {
    let (level, body) = match e {
        IntExpr::Lit(v) => {
            if *v < 0 {
                // A negative literal renders with its sign, which is a
                // unary-minus production.
                (3, v.to_string())
            } else {
                (4, v.to_string())
            }
        }
        IntExpr::Name(id) => (4, id.name.clone()),
        IntExpr::Index(id, i) => (4, format!("{}[{}]", id.name, int_expr(i, 0))),
        IntExpr::Neg(x) => (3, format!("-{}", int_expr(x, 4))),
        IntExpr::Bin(op, a, b) => {
            let (sym, lvl) = match op {
                IntOp::Add => ("+", 1),
                IntOp::Sub => ("-", 1),
                IntOp::Mul => ("*", 2),
                IntOp::Div => ("/", 2),
            };
            (
                lvl,
                format!("{} {} {}", int_expr(a, lvl), sym, int_expr(b, lvl + 1)),
            )
        }
    };
    if level < min_level {
        format!("({body})")
    } else {
        body
    }
}

/// Formula levels: 0 = `||`, 1 = `&&`, 2 = `!`, 3 = atom.
fn formula(f: &Formula, min_level: u8) -> String {
    let (level, body) = match f {
        Formula::True => (3, "true".to_owned()),
        Formula::False => (3, "false".to_owned()),
        Formula::AtLoc(c, l) => (3, format!("{}.{}", c.name, l.name)),
        Formula::Clock(cc) => (3, clock_constraint(cc)),
        Formula::Data(a, op, b) => (
            3,
            format!("{} {} {}", int_expr(a, 0), op.symbol(), int_expr(b, 0)),
        ),
        Formula::Not(g) => (2, format!("!{}", formula(g, 2))),
        Formula::And(gs) => {
            let parts: Vec<String> = gs.iter().map(|g| formula(g, 2)).collect();
            (1, parts.join(" && "))
        }
        Formula::Or(gs) => {
            let parts: Vec<String> = gs.iter().map(|g| formula(g, 1)).collect();
            (0, parts.join(" || "))
        }
    };
    if level < min_level {
        format!("({body})")
    } else {
        body
    }
}

fn assert_kind(k: &AssertKind) -> String {
    match k {
        AssertKind::DeadlockFree => "deadlock free".to_owned(),
        AssertKind::Reach(f) => format!("E<> {}", formula(f, 0)),
        AssertKind::Always(f) => format!("A[] {}", formula(f, 0)),
        AssertKind::LeadsTo(f, g) => format!("{} --> {}", formula(f, 0), formula(g, 0)),
        AssertKind::Pmax(f, op, p) => format!("Pmax[<> {}] {} {p}", formula(f, 0), op.symbol()),
        AssertKind::Pmin(f, op, p) => format!("Pmin[<> {}] {} {p}", formula(f, 0), op.symbol()),
        AssertKind::Pr {
            bound,
            goal,
            cmp,
            prob,
            opts,
        } => {
            let mut s = format!(
                "Pr[<= {}](<> {}) {} {prob}",
                int_expr(bound, 0),
                formula(goal, 0),
                cmp.symbol()
            );
            let mut fields = Vec::new();
            if let Some(r) = opts.runs {
                fields.push(format!("runs = {r}"));
            }
            if let Some(c) = opts.confidence {
                fields.push(format!("confidence = {c}"));
            }
            if !fields.is_empty() {
                let _ = write!(s, " {{{}}}", fields.join(", "));
            }
            s
        }
        AssertKind::Refines(i, sp) => format!("{} refines {}", i.name, sp.name),
        AssertKind::Ioco(i, sp) => format!("{} ioco {}", i.name, sp.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let m = parse(src).expect("parse source");
        let rendered = render(&m);
        let m2 = parse(&rendered).unwrap_or_else(|e| panic!("re-parse of:\n{rendered}\n{e}"));
        assert_eq!(m, m2, "round trip of:\n{rendered}");
    }

    #[test]
    fn round_trips_representative_models() {
        round_trip(
            "param D = 5\nchannel approach, leave\nclock x\nvar n: 0..3 = 0\n\
             process Train = inv {x <= D} when {x >= 1, n < 3} approach! {x := 0, n := n + 1} -> Train\n\
             process Gate = approach? -> leave! -> Gate\n\
             system Train \\ {leave} || {approach} Gate as G\n\
             assert E<> G.Gate\nassert deadlock free\n\
             assert Pmax[<> G.Gate] >= 0.5\n\
             assert Pr[<= 10](<> G.Gate) >= 0.25 {runs = 50, confidence = 0.99}\n\
             assert Train.Train --> G.Gate\n",
        );
        round_trip(
            "channel a\nprocess P = (a! -> P [] STOP) |~| SKIP\nprocess Q = a? -> Q\n\
             system P [[a := a]] || {a} Q\nassert A[] !(P.STOP && 1 == 2) || true\n",
        );
    }

    #[test]
    fn parentheses_are_preserved_where_structural() {
        round_trip("channel a\nprocess P = a! -> (a? -> P [] STOP)\nsystem P\n");
        let m = parse("channel a\nprocess P = a! -> (a? -> P [] STOP)\nsystem P").expect("parse");
        let r = render(&m);
        assert!(r.contains("(a? -> P [] STOP)"), "{r}");
    }

    #[test]
    fn expression_associativity_round_trips() {
        let src = "param M = 1\nparam K = 2\nprocess P(k) = STOP\nsystem P(M - (K - 1) * -2)\n";
        round_trip(src);
        let m = parse(src).expect("parse");
        let r = render(&m);
        assert!(r.contains("M - (K - 1) * -2"), "{r}");
    }
}
