//! Abstract syntax of `tempo-lang`.
//!
//! The tree is *span-carrying but span-insensitive*: every name is an
//! [`Ident`] holding its source [`Span`], and `Ident` equality ignores
//! the span. This is what makes the pretty-printer round-trip contract
//! (`parse(render(m)) == m`) expressible as plain `PartialEq` — the
//! re-parsed tree has different positions but compares equal.

use crate::token::Span;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A name with its source position. Equality and hashing ignore the
/// span.
#[derive(Clone, Debug, Default)]
pub struct Ident {
    /// The name itself.
    pub name: String,
    /// Where it appears in the source.
    pub span: Span,
}

impl Ident {
    /// An identifier with a default (zero) span, for programmatically
    /// built trees (generators, tests).
    #[must_use]
    pub fn new(name: &str) -> Self {
        Ident {
            name: name.to_owned(),
            span: Span::default(),
        }
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for Ident {}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A compile-time integer expression (over `param`s and literals);
/// appears in clock bounds, variable ranges, process arguments and
/// array sizes, and must constant-fold during elaboration.
#[derive(Clone, Debug, PartialEq)]
pub enum IntExpr {
    /// Literal.
    Lit(i64),
    /// Reference to a `param` (or, inside a process body, a formal
    /// parameter of the process; inside data expressions, a variable).
    Name(Ident),
    /// Array-element reference `v[e]` (data expressions only).
    Index(Ident, Box<IntExpr>),
    /// Unary negation.
    Neg(Box<IntExpr>),
    /// Binary arithmetic.
    Bin(IntOp, Box<IntExpr>, Box<IntExpr>),
}

/// Arithmetic operators of [`IntExpr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (truncated).
    Div,
}

/// Comparison operators shared by guards, formulas and probability
/// bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<=`.
    Le,
    /// `<`.
    Lt,
    /// `>=`.
    Ge,
    /// `>`.
    Gt,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
}

impl CmpOp {
    /// The surface-syntax spelling.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// A clock reference: a plain clock or one element of a clock array
/// (`y[id]`; the index must constant-fold at elaboration).
#[derive(Clone, Debug, PartialEq)]
pub struct ClockRef {
    /// Declared clock (array) name.
    pub name: Ident,
    /// Array index, if any.
    pub index: Option<Box<IntExpr>>,
}

/// A clock constraint `x ⋈ e` or `x - y ⋈ e`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClockConstraint {
    /// Left clock.
    pub clock: ClockRef,
    /// Optional second clock for difference constraints.
    pub minus: Option<ClockRef>,
    /// Comparison operator (`==`/`!=` are rejected at elaboration for
    /// difference constraints; `==` on a single clock expands to a
    /// conjunction).
    pub op: CmpOp,
    /// Bound (constant-folds over params).
    pub bound: IntExpr,
}

/// One atom inside a `when { ... }` guard: either a clock constraint or
/// a boolean expression over data variables. The parser classifies by
/// the declared kind of the leading name.
#[derive(Clone, Debug, PartialEq)]
pub enum GuardAtom {
    /// Clock constraint.
    Clock(ClockConstraint),
    /// Data comparison `e ⋈ e`.
    Data(IntExpr, CmpOp, IntExpr),
}

/// One update inside a `{ ... }` block after an event.
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// Clock reset `x := e` (e over params and data variables).
    ClockReset(ClockRef, IntExpr),
    /// Variable assignment `v := e` or `v[i] := e`.
    Assign(Ident, Option<Box<IntExpr>>, IntExpr),
}

/// The event of a prefix.
#[derive(Clone, Debug, PartialEq)]
pub enum EventSpec {
    /// Internal step.
    Tau,
    /// Send `c!`.
    Send(Ident),
    /// Receive `c?`.
    Recv(Ident),
}

/// A sequential process term.
#[derive(Clone, Debug, PartialEq)]
pub enum Proc {
    /// Deadlocked process (refuses everything, lets time pass).
    Stop,
    /// Terminated process (same operational behaviour as `STOP` in this
    /// fragment; kept distinct for pretty-printing and documentation).
    Skip,
    /// Call of a named process with integer arguments.
    Call(Ident, Vec<IntExpr>),
    /// Guarded, decorated event prefix
    /// `when {g} e {u} -> P` (guard and updates optional).
    Prefix {
        /// Conjunction of guard atoms (empty = `true`).
        guards: Vec<GuardAtom>,
        /// The event.
        event: EventSpec,
        /// Updates applied when the event fires.
        updates: Vec<Update>,
        /// Continuation.
        then: Box<Proc>,
    },
    /// `inv {atoms} P`: the constraint must hold while the process
    /// waits at `P`'s initial state.
    Invariant(Vec<ClockConstraint>, Box<Proc>),
    /// External choice `P [] Q [] ...`.
    ExtChoice(Vec<Proc>),
    /// Internal choice `P |~| Q |~| ...` (resolves instantaneously via
    /// committed τ-branching).
    IntChoice(Vec<Proc>),
}

/// Channel synchronization kinds, mirroring `tempo-ta`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKind {
    /// Binary handshake.
    Handshake,
    /// Handshake that suppresses delay while enabled.
    Urgent,
    /// One sender, all ready receivers.
    Broadcast,
}

/// `channel` / `urgent channel` / `broadcast channel` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelDecl {
    /// Kind of every channel in this declaration.
    pub kind: ChannelKind,
    /// Declared names.
    pub names: Vec<Ident>,
}

/// `clock x` or `clock y[N]` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClockDecl {
    /// Declared name.
    pub name: Ident,
    /// Array size, if any (constant-folds over params).
    pub size: Option<IntExpr>,
}

/// `var v: lo..hi = init` or `var v[N]: lo..hi = init` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Declared name.
    pub name: Ident,
    /// Array size, if any.
    pub size: Option<IntExpr>,
    /// Inclusive lower bound.
    pub lo: IntExpr,
    /// Inclusive upper bound.
    pub hi: IntExpr,
    /// Initial value (defaults to `lo` when omitted).
    pub init: Option<IntExpr>,
}

/// `param N = 3` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    /// Declared name.
    pub name: Ident,
    /// Bound value.
    pub value: i64,
}

/// `process Name(p1, p2) = body` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessDef {
    /// Process name.
    pub name: Ident,
    /// Formal integer parameters.
    pub params: Vec<Ident>,
    /// Body term.
    pub body: Proc,
}

/// One component instance of the `system` line.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// Called process.
    pub process: Ident,
    /// Integer arguments.
    pub args: Vec<IntExpr>,
    /// Channels hidden in this component (`\ {a, b}`): their events
    /// become internal τ steps.
    pub hide: Vec<Ident>,
    /// Channel renamings (`[[old := new, ...]]`), applied before
    /// hiding and synchronization.
    pub rename: Vec<(Ident, Ident)>,
    /// Instance alias (`as T0`); defaults to the process name.
    pub alias: Option<Ident>,
}

impl Component {
    /// The name this instance is known by in formulas and refinement
    /// asserts.
    #[must_use]
    pub fn instance_name(&self) -> &str {
        self.alias.as_ref().unwrap_or(&self.process).name.as_str()
    }
}

/// The `system` composition: components joined by `||`, each `||`
/// optionally carrying a sync set. The union of all sync sets is the
/// set of synchronized channels (UPPAAL-style global handshake);
/// events on unsynchronized channels are internal.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemDef {
    /// Component instances, in composition order.
    pub components: Vec<Component>,
    /// Sync set attached to the `||` before component `i + 1`
    /// (`syncs[i]` sits between `components[i]` and `components[i+1]`).
    pub syncs: Vec<Vec<Ident>>,
}

/// A state formula of the assert language.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// `Component.Location` atom.
    AtLoc(Ident, Ident),
    /// Clock constraint atom.
    Clock(ClockConstraint),
    /// Data comparison atom.
    Data(IntExpr, CmpOp, IntExpr),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

/// Options of a `Pr[...]` assert.
#[derive(Clone, Debug, PartialEq)]
pub struct SmcOpts {
    /// Number of simulation runs (`runs = 2000` by default).
    pub runs: Option<u64>,
    /// Confidence level (`confidence = 0.95` by default).
    pub confidence: Option<f64>,
}

/// The query of one `assert` line.
#[derive(Clone, Debug, PartialEq)]
pub enum AssertKind {
    /// `assert deadlock free`.
    DeadlockFree,
    /// `assert E<> f` — reachability.
    Reach(Formula),
    /// `assert A[] f` — invariance.
    Always(Formula),
    /// `assert f --> g` — leads-to.
    LeadsTo(Formula, Formula),
    /// `assert Pmax[<> f] ⋈ p` — maximal reachability probability on
    /// the digital-clocks MDP.
    Pmax(Formula, CmpOp, f64),
    /// `assert Pmin[<> f] ⋈ p`.
    Pmin(Formula, CmpOp, f64),
    /// `assert Pr[<= b](<> f) ⋈ p {runs = .., confidence = ..}` —
    /// statistical estimation.
    Pr {
        /// Time bound per run.
        bound: IntExpr,
        /// Goal formula.
        goal: Formula,
        /// Comparison against the estimate's mean.
        cmp: CmpOp,
        /// Probability threshold.
        prob: f64,
        /// Run count / confidence options.
        opts: SmcOpts,
    },
    /// `assert Imp refines Spec` — alternating timed refinement of two
    /// component instances (ECDAR).
    Refines(Ident, Ident),
    /// `assert Imp ioco Spec` — input-output conformance of two
    /// component instances.
    Ioco(Ident, Ident),
}

/// One `assert` line with its position.
///
/// Equality ignores the span (like [`Ident`]) so ASTs compare
/// structurally across re-parses of re-rendered source.
#[derive(Clone, Debug)]
pub struct AssertDef {
    /// The query.
    pub kind: AssertKind,
    /// Position of the `assert` keyword.
    pub span: Span,
}

impl PartialEq for AssertDef {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// A parsed `tempo-lang` model: declarations, process definitions, the
/// system composition and the assert list.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Model {
    /// `param` declarations.
    pub params: Vec<ParamDecl>,
    /// Channel declarations.
    pub channels: Vec<ChannelDecl>,
    /// Clock declarations.
    pub clocks: Vec<ClockDecl>,
    /// Variable declarations.
    pub vars: Vec<VarDecl>,
    /// Process definitions.
    pub processes: Vec<ProcessDef>,
    /// The system composition (absent models cannot be analyzed, only
    /// parsed and pretty-printed).
    pub system: Option<SystemDef>,
    /// Assert lines, in source order (`--assert N` indexes here).
    pub asserts: Vec<AssertDef>,
}

impl Model {
    /// Looks up a process definition by name.
    #[must_use]
    pub fn process(&self, name: &str) -> Option<&ProcessDef> {
        self.processes.iter().find(|p| p.name.name == name)
    }
}
