//! Recursive-descent parser for `tempo-lang`.
//!
//! One error per run (like the MODEST parser): the first lexical or
//! syntactic problem aborts parsing and is reported as a
//! [`ParseError`] carrying the offending [`Span`]. Declarations must
//! precede process definitions so that guard atoms can be classified
//! (clock constraint vs. data comparison) by the declared kind of
//! their leading name during the single pass.
//!
//! Grammar sketch (see `DESIGN.md` for the full reference):
//!
//! ```text
//! model    := decl* processdef* system? assert*
//! decl     := param | channel | clock | var
//! proc     := echoice ('|~|' echoice)*
//! echoice  := term ('[]' term)*
//! term     := STOP | SKIP | '(' proc ')' | 'inv' '{' cc,* '}' term
//!           | ['when' '{' atom,* '}'] event ['{' upd,* '}'] '->' term
//!           | Name ['(' expr,* ')']
//! event    := 'tau' | chan '!' | chan '?'
//! system   := 'system' comp ('||' ['{' chan,* '}'] comp)*
//! comp     := Name ['(' expr,* ')'] ['\' '{' chan,* '}']
//!           [ '[[' old ':=' new ,* ']]' ] ['as' Name]
//! assert   := 'assert' (deadlock free | E<> f | A[] f | f --> f
//!           | Pmax[<> f] cmp p | Pmin[<> f] cmp p
//!           | Pr[<= e](<> f) cmp p ['{' opts '}']
//!           | Name refines Name | Name ioco Name)
//! ```

use crate::ast::*;
use crate::token::{lex, LexError, Span, Tok, Token};
use std::collections::HashSet;
use tempo_obs::Diagnostic;

/// Words that cannot be used as declaration or process names.
const RESERVED: &[&str] = &[
    "param", "channel", "urgent", "broadcast", "clock", "var", "process", "system", "assert",
    "when", "inv", "tau", "STOP", "SKIP", "true", "false", "as", "deadlock", "free", "refines",
    "ioco", "E", "A", "Pmax", "Pmin", "Pr", "runs", "confidence",
];

/// A frontend error: the first problem the lexer or parser hit.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Where the problem is.
    pub span: Span,
    /// Stable diagnostic code (`TL001`..).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Bridges the error into the shared `tempo-lint` diagnostic
    /// currency. The span travels in the message (the [`Diagnostic`]
    /// struct has no span field).
    #[must_use]
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(self.code, None, format!("{}: {}", self.span, self.message))
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: error[{}]: {}", self.span, self.code, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            code: "TL001",
            message: e.message,
        }
    }
}

/// Parses a complete `tempo-lang` model.
///
/// # Errors
///
/// Returns the first lexical/syntactic/name error with its span.
pub fn parse(source: &str) -> Result<Model, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        clocks: HashSet::new(),
        vars: HashSet::new(),
        channels: HashSet::new(),
        params: HashSet::new(),
        calls: Vec::new(),
    };
    p.model()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    clocks: HashSet<String>,
    vars: HashSet<String>,
    channels: HashSet<String>,
    params: HashSet<String>,
    /// Call sites (callee, arg count) recorded for post-parse
    /// definition/arity checking (recursion may be forward).
    calls: Vec<(Ident, usize)>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<Span, ParseError> {
        if self.peek() == t {
            Ok(self.bump().span)
        } else {
            Err(self.err("TL002", format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, code: &'static str, message: impl Into<String>) -> ParseError {
        ParseError {
            span: self.span(),
            code,
            message: message.into(),
        }
    }

    /// True when the upcoming token is the identifier `kw`.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.bump().span;
                Ok(Ident { name, span })
            }
            other => Err(self.err("TL002", format!("expected a name, found {other}"))),
        }
    }

    /// A fresh declaration name: not reserved, not already declared.
    fn decl_ident(&mut self) -> Result<Ident, ParseError> {
        let id = self.ident()?;
        if RESERVED.contains(&id.name.as_str()) {
            return Err(ParseError {
                span: id.span,
                code: "TL004",
                message: format!("`{}` is a reserved word", id.name),
            });
        }
        if self.clocks.contains(&id.name)
            || self.vars.contains(&id.name)
            || self.channels.contains(&id.name)
            || self.params.contains(&id.name)
        {
            return Err(ParseError {
                span: id.span,
                code: "TL004",
                message: format!("`{}` is already declared", id.name),
            });
        }
        Ok(id)
    }

    // ---------------------------------------------------------- model

    fn model(&mut self) -> Result<Model, ParseError> {
        let mut m = Model::default();
        let mut seen_process = false;
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => {
                    let decl_like =
                        matches!(kw.as_str(), "param" | "channel" | "urgent" | "broadcast" | "clock" | "var");
                    if decl_like && seen_process {
                        return Err(self.err(
                            "TL002",
                            "declarations must precede process definitions",
                        ));
                    }
                    match kw.as_str() {
                        "param" => m.params.push(self.param_decl()?),
                        "channel" | "urgent" | "broadcast" => {
                            m.channels.push(self.channel_decl()?);
                        }
                        "clock" => self.clock_decl(&mut m.clocks)?,
                        "var" => m.vars.push(self.var_decl()?),
                        "process" => {
                            seen_process = true;
                            m.processes.push(self.process_def()?);
                        }
                        "system" => {
                            if m.system.is_some() {
                                return Err(self.err("TL002", "duplicate `system` line"));
                            }
                            m.system = Some(self.system_def()?);
                        }
                        "assert" => m.asserts.push(self.assert_def()?),
                        other => {
                            return Err(self.err(
                                "TL002",
                                format!("expected a declaration, `process`, `system` or `assert`, found `{other}`"),
                            ));
                        }
                    }
                }
                other => {
                    return Err(self.err("TL002", format!("unexpected {other} at top level")));
                }
            }
        }
        self.check_calls(&m)?;
        self.check_instances(&m)?;
        Ok(m)
    }

    fn param_decl(&mut self) -> Result<ParamDecl, ParseError> {
        self.bump(); // `param`
        let name = self.decl_ident()?;
        self.expect(&Tok::Eq)?;
        let neg = self.eat(&Tok::Minus);
        let value = match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                if neg { -v } else { v }
            }
            other => return Err(self.err("TL002", format!("expected an integer, found {other}"))),
        };
        self.params.insert(name.name.clone());
        Ok(ParamDecl { name, value })
    }

    fn channel_decl(&mut self) -> Result<ChannelDecl, ParseError> {
        let kind = if self.eat_kw("urgent") {
            if !self.eat_kw("channel") {
                return Err(self.err("TL002", "expected `channel` after `urgent`"));
            }
            ChannelKind::Urgent
        } else if self.eat_kw("broadcast") {
            if !self.eat_kw("channel") {
                return Err(self.err("TL002", "expected `channel` after `broadcast`"));
            }
            ChannelKind::Broadcast
        } else {
            self.bump(); // `channel`
            ChannelKind::Handshake
        };
        let mut names = vec![self.decl_ident()?];
        self.channels.insert(names[0].name.clone());
        while self.eat(&Tok::Comma) {
            let id = self.decl_ident()?;
            self.channels.insert(id.name.clone());
            names.push(id);
        }
        Ok(ChannelDecl { kind, names })
    }

    fn clock_decl(&mut self, out: &mut Vec<ClockDecl>) -> Result<(), ParseError> {
        self.bump(); // `clock`
        loop {
            let name = self.decl_ident()?;
            let size = if self.eat(&Tok::LBracket) {
                let e = self.int_expr(&HashSet::new())?;
                self.expect(&Tok::RBracket)?;
                Some(e)
            } else {
                None
            };
            self.clocks.insert(name.name.clone());
            out.push(ClockDecl { name, size });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(())
    }

    fn var_decl(&mut self) -> Result<VarDecl, ParseError> {
        self.bump(); // `var`
        let name = self.decl_ident()?;
        let size = if self.eat(&Tok::LBracket) {
            let e = self.int_expr(&HashSet::new())?;
            self.expect(&Tok::RBracket)?;
            Some(e)
        } else {
            None
        };
        self.expect(&Tok::Colon)?;
        let lo = self.int_expr(&HashSet::new())?;
        self.expect(&Tok::DotDot)?;
        let hi = self.int_expr(&HashSet::new())?;
        let init = if self.eat(&Tok::Eq) {
            Some(self.int_expr(&HashSet::new())?)
        } else {
            None
        };
        self.vars.insert(name.name.clone());
        Ok(VarDecl {
            name,
            size,
            lo,
            hi,
            init,
        })
    }

    fn process_def(&mut self) -> Result<ProcessDef, ParseError> {
        self.bump(); // `process`
        let name = self.ident()?;
        if RESERVED.contains(&name.name.as_str()) {
            return Err(ParseError {
                span: name.span,
                code: "TL004",
                message: format!("`{}` is a reserved word", name.name),
            });
        }
        let mut params = Vec::new();
        let mut formals = HashSet::new();
        if self.eat(&Tok::LParen) {
            loop {
                let id = self.ident()?;
                if RESERVED.contains(&id.name.as_str())
                    || self.clocks.contains(&id.name)
                    || self.vars.contains(&id.name)
                    || self.channels.contains(&id.name)
                    || self.params.contains(&id.name)
                    || formals.contains(&id.name)
                {
                    return Err(ParseError {
                        span: id.span,
                        code: "TL004",
                        message: format!("parameter `{}` shadows another declaration", id.name),
                    });
                }
                formals.insert(id.name.clone());
                params.push(id);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::Eq)?;
        let body = self.proc(&formals)?;
        Ok(ProcessDef { name, params, body })
    }

    // -------------------------------------------------------- process

    fn proc(&mut self, formals: &HashSet<String>) -> Result<Proc, ParseError> {
        let mut parts = vec![self.echoice(formals)?];
        while self.eat(&Tok::IntChoice) {
            parts.push(self.echoice(formals)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Proc::IntChoice(parts)
        })
    }

    fn echoice(&mut self, formals: &HashSet<String>) -> Result<Proc, ParseError> {
        let mut parts = vec![self.term(formals)?];
        while self.eat(&Tok::ExtChoice) {
            parts.push(self.term(formals)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Proc::ExtChoice(parts)
        })
    }

    fn term(&mut self, formals: &HashSet<String>) -> Result<Proc, ParseError> {
        if self.eat(&Tok::LParen) {
            let p = self.proc(formals)?;
            self.expect(&Tok::RParen)?;
            return Ok(p);
        }
        if self.at_kw("STOP") {
            self.bump();
            return Ok(Proc::Stop);
        }
        if self.at_kw("SKIP") {
            self.bump();
            return Ok(Proc::Skip);
        }
        if self.eat_kw("inv") {
            self.expect(&Tok::LBrace)?;
            let mut atoms = vec![self.clock_constraint(formals)?];
            while self.eat(&Tok::Comma) {
                atoms.push(self.clock_constraint(formals)?);
            }
            self.expect(&Tok::RBrace)?;
            let body = self.term(formals)?;
            return Ok(Proc::Invariant(atoms, Box::new(body)));
        }
        if self.eat_kw("when") {
            self.expect(&Tok::LBrace)?;
            let mut guards = vec![self.guard_atom(formals)?];
            while self.eat(&Tok::Comma) {
                guards.push(self.guard_atom(formals)?);
            }
            self.expect(&Tok::RBrace)?;
            return self.prefix_tail(guards, formals);
        }
        // `tau`, `c!`, `c?` or a call.
        if self.at_kw("tau") {
            return self.prefix_tail(Vec::new(), formals);
        }
        if matches!(self.peek(), Tok::Ident(_))
            && matches!(self.peek2(), Tok::Bang | Tok::Question)
        {
            return self.prefix_tail(Vec::new(), formals);
        }
        let callee = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                args.push(self.int_expr(formals)?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.calls.push((callee.clone(), args.len()));
        Ok(Proc::Call(callee, args))
    }

    /// Event, optional update block, arrow, continuation.
    fn prefix_tail(
        &mut self,
        guards: Vec<GuardAtom>,
        formals: &HashSet<String>,
    ) -> Result<Proc, ParseError> {
        let event = if self.eat_kw("tau") {
            EventSpec::Tau
        } else {
            let chan = self.ident()?;
            if !self.channels.contains(&chan.name) {
                return Err(ParseError {
                    span: chan.span,
                    code: "TL003",
                    message: format!("`{}` is not a declared channel", chan.name),
                });
            }
            if self.eat(&Tok::Bang) {
                EventSpec::Send(chan)
            } else if self.eat(&Tok::Question) {
                EventSpec::Recv(chan)
            } else {
                return Err(self.err("TL002", "expected `!` or `?` after channel name"));
            }
        };
        let mut updates = Vec::new();
        if self.eat(&Tok::LBrace) {
            loop {
                updates.push(self.update(formals)?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
        }
        self.expect(&Tok::Arrow)?;
        let then = self.term(formals)?;
        Ok(Proc::Prefix {
            guards,
            event,
            updates,
            then: Box::new(then),
        })
    }

    fn clock_ref(&mut self, formals: &HashSet<String>) -> Result<ClockRef, ParseError> {
        let name = self.ident()?;
        if !self.clocks.contains(&name.name) {
            return Err(ParseError {
                span: name.span,
                code: "TL003",
                message: format!("`{}` is not a declared clock", name.name),
            });
        }
        let index = if self.eat(&Tok::LBracket) {
            let e = self.int_expr(formals)?;
            self.expect(&Tok::RBracket)?;
            Some(Box::new(e))
        } else {
            None
        };
        Ok(ClockRef { name, index })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Tok::Le => CmpOp::Le,
            Tok::Lt => CmpOp::Lt,
            Tok::Ge => CmpOp::Ge,
            Tok::Gt => CmpOp::Gt,
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            other => {
                return Err(self.err("TL002", format!("expected a comparison, found {other}")));
            }
        };
        self.bump();
        Ok(op)
    }

    fn clock_constraint(&mut self, formals: &HashSet<String>) -> Result<ClockConstraint, ParseError> {
        let clock = self.clock_ref(formals)?;
        let minus = if self.eat(&Tok::Minus) {
            Some(self.clock_ref(formals)?)
        } else {
            None
        };
        let op_span = self.span();
        let op = self.cmp_op()?;
        if op == CmpOp::Ne {
            return Err(ParseError {
                span: op_span,
                code: "TL006",
                message: "`!=` is not allowed in clock constraints".to_owned(),
            });
        }
        let bound = self.int_expr(formals)?;
        Ok(ClockConstraint {
            clock,
            minus,
            op,
            bound,
        })
    }

    fn guard_atom(&mut self, formals: &HashSet<String>) -> Result<GuardAtom, ParseError> {
        if matches!(self.peek(), Tok::Ident(n) if self.clocks.contains(n.as_str())) {
            Ok(GuardAtom::Clock(self.clock_constraint(formals)?))
        } else {
            let lhs = self.int_expr(formals)?;
            let op = self.cmp_op()?;
            let rhs = self.int_expr(formals)?;
            Ok(GuardAtom::Data(lhs, op, rhs))
        }
    }

    fn update(&mut self, formals: &HashSet<String>) -> Result<Update, ParseError> {
        if matches!(self.peek(), Tok::Ident(n) if self.clocks.contains(n.as_str())) {
            let c = self.clock_ref(formals)?;
            self.expect(&Tok::Assign)?;
            let e = self.int_expr(formals)?;
            return Ok(Update::ClockReset(c, e));
        }
        let name = self.ident()?;
        if !self.vars.contains(&name.name) {
            return Err(ParseError {
                span: name.span,
                code: "TL003",
                message: format!("`{}` is not a declared variable", name.name),
            });
        }
        let idx = if self.eat(&Tok::LBracket) {
            let e = self.int_expr(formals)?;
            self.expect(&Tok::RBracket)?;
            Some(Box::new(e))
        } else {
            None
        };
        self.expect(&Tok::Assign)?;
        let e = self.int_expr(formals)?;
        Ok(Update::Assign(name, idx, e))
    }

    // ---------------------------------------------------- expressions

    fn int_expr(&mut self, formals: &HashSet<String>) -> Result<IntExpr, ParseError> {
        let mut lhs = self.int_mul(formals)?;
        loop {
            let op = if self.eat(&Tok::Plus) {
                IntOp::Add
            } else if self.eat(&Tok::Minus) {
                IntOp::Sub
            } else {
                break;
            };
            let rhs = self.int_mul(formals)?;
            lhs = IntExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn int_mul(&mut self, formals: &HashSet<String>) -> Result<IntExpr, ParseError> {
        let mut lhs = self.int_atom(formals)?;
        loop {
            let op = if self.eat(&Tok::Star) {
                IntOp::Mul
            } else if self.eat(&Tok::Slash) {
                IntOp::Div
            } else {
                break;
            };
            let rhs = self.int_atom(formals)?;
            lhs = IntExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn int_atom(&mut self, formals: &HashSet<String>) -> Result<IntExpr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(IntExpr::Lit(v))
            }
            Tok::Minus => {
                self.bump();
                let e = self.int_atom(formals)?;
                Ok(IntExpr::Neg(Box::new(e)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.int_expr(formals)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.clocks.contains(&name) {
                    return Err(self.err(
                        "TL003",
                        format!("`{name}` is a clock; clocks cannot appear in data expressions"),
                    ));
                }
                if !(self.vars.contains(&name)
                    || self.params.contains(&name)
                    || formals.contains(&name))
                {
                    return Err(self.err(
                        "TL003",
                        format!("`{name}` is not a declared variable, parameter or process parameter"),
                    ));
                }
                let id = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let idx = self.int_expr(formals)?;
                    self.expect(&Tok::RBracket)?;
                    Ok(IntExpr::Index(id, Box::new(idx)))
                } else {
                    Ok(IntExpr::Name(id))
                }
            }
            other => Err(self.err("TL002", format!("expected an expression, found {other}"))),
        }
    }

    // --------------------------------------------------------- system

    fn system_def(&mut self) -> Result<SystemDef, ParseError> {
        self.bump(); // `system`
        let mut components = vec![self.component()?];
        let mut syncs = Vec::new();
        while self.eat(&Tok::Parallel) {
            let mut set = Vec::new();
            if self.eat(&Tok::LBrace) {
                loop {
                    let id = self.channel_name()?;
                    set.push(id);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
            }
            syncs.push(set);
            components.push(self.component()?);
        }
        Ok(SystemDef { components, syncs })
    }

    fn channel_name(&mut self) -> Result<Ident, ParseError> {
        let id = self.ident()?;
        if !self.channels.contains(&id.name) {
            return Err(ParseError {
                span: id.span,
                code: "TL003",
                message: format!("`{}` is not a declared channel", id.name),
            });
        }
        Ok(id)
    }

    fn component(&mut self) -> Result<Component, ParseError> {
        let process = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                args.push(self.int_expr(&HashSet::new())?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.calls.push((process.clone(), args.len()));
        let mut hide = Vec::new();
        if self.eat(&Tok::Backslash) {
            self.expect(&Tok::LBrace)?;
            loop {
                hide.push(self.channel_name()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
        }
        let mut rename = Vec::new();
        if self.eat(&Tok::RenameOpen) {
            loop {
                let old = self.channel_name()?;
                self.expect(&Tok::Assign)?;
                let new = self.channel_name()?;
                rename.push((old, new));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RenameClose)?;
        }
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Component {
            process,
            args,
            hide,
            rename,
            alias,
        })
    }

    // -------------------------------------------------------- asserts

    fn assert_def(&mut self) -> Result<AssertDef, ParseError> {
        let span = self.bump().span; // `assert`
        let kind = self.assert_kind()?;
        Ok(AssertDef { kind, span })
    }

    fn prob_bound(&mut self) -> Result<f64, ParseError> {
        let neg = self.eat(&Tok::Minus);
        let v = match self.peek().clone() {
            Tok::Float(v) => {
                self.bump();
                v
            }
            Tok::Int(v) => {
                self.bump();
                v as f64
            }
            other => {
                return Err(self.err("TL002", format!("expected a probability, found {other}")));
            }
        };
        Ok(if neg { -v } else { v })
    }

    fn assert_kind(&mut self) -> Result<AssertKind, ParseError> {
        if self.at_kw("deadlock") {
            self.bump();
            if !self.eat_kw("free") {
                return Err(self.err("TL002", "expected `free` after `deadlock`"));
            }
            return Ok(AssertKind::DeadlockFree);
        }
        if self.at_kw("E") && self.peek2() == &Tok::Diamond {
            self.bump();
            self.bump();
            return Ok(AssertKind::Reach(self.formula()?));
        }
        if self.at_kw("A") && self.peek2() == &Tok::ExtChoice {
            self.bump();
            self.bump();
            return Ok(AssertKind::Always(self.formula()?));
        }
        if (self.at_kw("Pmax") || self.at_kw("Pmin")) && self.peek2() == &Tok::LBracket {
            let is_max = self.at_kw("Pmax");
            self.bump();
            self.bump();
            self.expect(&Tok::Diamond)?;
            let f = self.formula()?;
            self.expect(&Tok::RBracket)?;
            let cmp = self.cmp_op()?;
            let p = self.prob_bound()?;
            return Ok(if is_max {
                AssertKind::Pmax(f, cmp, p)
            } else {
                AssertKind::Pmin(f, cmp, p)
            });
        }
        if self.at_kw("Pr") && self.peek2() == &Tok::LBracket {
            self.bump();
            self.bump();
            self.expect(&Tok::Le)?;
            let bound = self.int_expr(&HashSet::new())?;
            self.expect(&Tok::RBracket)?;
            self.expect(&Tok::LParen)?;
            self.expect(&Tok::Diamond)?;
            let goal = self.formula()?;
            self.expect(&Tok::RParen)?;
            let cmp = self.cmp_op()?;
            let prob = self.prob_bound()?;
            let mut opts = SmcOpts {
                runs: None,
                confidence: None,
            };
            if self.eat(&Tok::LBrace) {
                loop {
                    if self.eat_kw("runs") {
                        self.expect(&Tok::Eq)?;
                        match self.peek().clone() {
                            Tok::Int(v) if v > 0 => {
                                self.bump();
                                opts.runs = Some(v as u64);
                            }
                            other => {
                                return Err(self.err(
                                    "TL002",
                                    format!("expected a positive run count, found {other}"),
                                ));
                            }
                        }
                    } else if self.eat_kw("confidence") {
                        self.expect(&Tok::Eq)?;
                        opts.confidence = Some(self.prob_bound()?);
                    } else {
                        return Err(self.err(
                            "TL002",
                            format!("expected `runs` or `confidence`, found {}", self.peek()),
                        ));
                    }
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
            }
            return Ok(AssertKind::Pr {
                bound,
                goal,
                cmp,
                prob,
                opts,
            });
        }
        // `X refines Y`, `X ioco Y`, or a bare leads-to formula.
        if matches!(self.peek(), Tok::Ident(_))
            && matches!(self.peek2(), Tok::Ident(k) if k == "refines" || k == "ioco")
        {
            let imp = self.ident()?;
            let is_refines = self.eat_kw("refines");
            if !is_refines {
                self.bump(); // `ioco`
            }
            let spec = self.ident()?;
            return Ok(if is_refines {
                AssertKind::Refines(imp, spec)
            } else {
                AssertKind::Ioco(imp, spec)
            });
        }
        let lhs = self.formula()?;
        self.expect(&Tok::LeadsTo)?;
        let rhs = self.formula()?;
        Ok(AssertKind::LeadsTo(lhs, rhs))
    }

    // ------------------------------------------------------- formulas

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.formula_and()?];
        while self.eat(&Tok::Parallel) {
            parts.push(self.formula_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Formula::Or(parts)
        })
    }

    fn formula_and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.formula_unary()?];
        while self.eat(&Tok::AmpAmp) {
            parts.push(self.formula_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Formula::And(parts)
        })
    }

    fn formula_unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat(&Tok::Bang) {
            let f = self.formula_unary()?;
            return Ok(Formula::Not(Box::new(f)));
        }
        self.formula_atom()
    }

    fn formula_atom(&mut self) -> Result<Formula, ParseError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Tok::Ident(name) if name == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Tok::Ident(name) if name == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Tok::Ident(name) if self.peek2() == &Tok::Dot => {
                let comp = self.ident()?;
                self.bump(); // `.`
                let loc = self.ident()?;
                let _ = name;
                Ok(Formula::AtLoc(comp, loc))
            }
            Tok::Ident(name) if self.clocks.contains(&name) => {
                Ok(Formula::Clock(self.clock_constraint(&HashSet::new())?))
            }
            Tok::Ident(_) | Tok::Int(_) | Tok::Minus => {
                let lhs = self.int_expr(&HashSet::new())?;
                let op = self.cmp_op()?;
                let rhs = self.int_expr(&HashSet::new())?;
                Ok(Formula::Data(lhs, op, rhs))
            }
            other => Err(self.err("TL002", format!("expected a formula, found {other}"))),
        }
    }

    // ------------------------------------------- post-parse validation

    fn check_calls(&self, m: &Model) -> Result<(), ParseError> {
        for (callee, argc) in &self.calls {
            match m.process(&callee.name) {
                None => {
                    return Err(ParseError {
                        span: callee.span,
                        code: "TL005",
                        message: format!("`{}` is not a defined process", callee.name),
                    });
                }
                Some(def) if def.params.len() != *argc => {
                    return Err(ParseError {
                        span: callee.span,
                        code: "TL005",
                        message: format!(
                            "`{}` takes {} argument(s), {} given",
                            callee.name,
                            def.params.len(),
                            argc
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        let mut seen = HashSet::new();
        for def in &m.processes {
            if !seen.insert(def.name.name.clone()) {
                return Err(ParseError {
                    span: def.name.span,
                    code: "TL004",
                    message: format!("process `{}` is defined twice", def.name.name),
                });
            }
        }
        Ok(())
    }

    /// Component-instance references in asserts must name an instance
    /// of the `system` line.
    fn check_instances(&self, m: &Model) -> Result<(), ParseError> {
        let Some(sys) = &m.system else {
            if let Some(a) = m.asserts.first() {
                return Err(ParseError {
                    span: a.span,
                    code: "TL007",
                    message: "`assert` requires a `system` line".to_owned(),
                });
            }
            return Ok(());
        };
        let mut instances = HashSet::new();
        for c in &sys.components {
            if !instances.insert(c.instance_name().to_owned()) {
                return Err(ParseError {
                    span: c.process.span,
                    code: "TL004",
                    message: format!(
                        "duplicate component instance `{}`; use `as` to disambiguate",
                        c.instance_name()
                    ),
                });
            }
        }
        let mut refs: Vec<&Ident> = Vec::new();
        fn formula_refs<'a>(f: &'a Formula, out: &mut Vec<&'a Ident>) {
            match f {
                Formula::AtLoc(comp, _) => out.push(comp),
                Formula::Not(g) => formula_refs(g, out),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        formula_refs(g, out);
                    }
                }
                _ => {}
            }
        }
        for a in &m.asserts {
            match &a.kind {
                AssertKind::Reach(f) | AssertKind::Always(f) => formula_refs(f, &mut refs),
                AssertKind::LeadsTo(f, g) => {
                    formula_refs(f, &mut refs);
                    formula_refs(g, &mut refs);
                }
                AssertKind::Pmax(f, _, _) | AssertKind::Pmin(f, _, _) => formula_refs(f, &mut refs),
                AssertKind::Pr { goal, .. } => formula_refs(goal, &mut refs),
                AssertKind::Refines(i, s) | AssertKind::Ioco(i, s) => {
                    refs.push(i);
                    refs.push(s);
                }
                AssertKind::DeadlockFree => {}
            }
        }
        for r in refs {
            if !instances.contains(&r.name) {
                return Err(ParseError {
                    span: r.span,
                    code: "TL007",
                    message: format!("`{}` is not a component instance of the system", r.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "\
param D = 5
channel approach, leave
clock x
var n: 0..3 = 0

process Train =
  inv {x <= D} when {x >= 1} approach! {x := 0, n := n + 1} -> Train

process Gate = approach? -> leave! -> Gate

system Train || {approach} Gate

assert E<> Gate.Gate
assert deadlock free
";

    #[test]
    fn parses_a_small_model() {
        let m = parse(TRAIN).expect("parse");
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.channels[0].names.len(), 2);
        assert_eq!(m.processes.len(), 2);
        assert_eq!(m.asserts.len(), 2);
        let sys = m.system.expect("system");
        assert_eq!(sys.components.len(), 2);
        assert_eq!(sys.syncs[0][0].name, "approach");
    }

    #[test]
    fn undeclared_names_have_spans() {
        let e = parse("process P = foo! -> P\nsystem P").expect_err("undeclared");
        assert_eq!(e.code, "TL003");
        assert_eq!(e.span.line, 1);
    }

    #[test]
    fn decls_after_processes_are_rejected() {
        let e = parse("process P = STOP\nclock x\nsystem P").expect_err("order");
        assert_eq!(e.code, "TL002");
    }

    #[test]
    fn call_arity_is_checked() {
        let e = parse("process P(a) = STOP\nsystem P").expect_err("arity");
        assert_eq!(e.code, "TL005");
    }

    #[test]
    fn assert_variants_parse() {
        let src = "\
channel c
process P = c! -> P
process Q = c? -> Q
system P || {c} Q as Spec
assert A[] !(P.P && Spec.Q)
assert P.P --> Spec.Q
assert Pmax[<> Spec.Q] >= 0.5
assert Pr[<= 10](<> P.P) >= 0.9 {runs = 100, confidence = 0.99}
assert P refines Spec
assert P ioco Spec
";
        let m = parse(src).expect("parse");
        assert_eq!(m.asserts.len(), 6);
        assert!(matches!(m.asserts[2].kind, AssertKind::Pmax(_, CmpOp::Ge, p) if p == 0.5));
        match &m.asserts[3].kind {
            AssertKind::Pr { opts, .. } => {
                assert_eq!(opts.runs, Some(100));
                assert_eq!(opts.confidence, Some(0.99));
            }
            other => panic!("expected Pr, got {other:?}"),
        }
    }

    #[test]
    fn unknown_instance_in_assert_is_rejected() {
        let e = parse("channel c\nprocess P = c! -> P\nsystem P\nassert E<> Zed.q")
            .expect_err("instance");
        assert_eq!(e.code, "TL007");
    }
}
