//! Hand-written lexer for the `tempo-lang` surface syntax.
//!
//! The lexer produces a flat token stream with line/column spans; every
//! downstream diagnostic (parse error, unresolved name, subset
//! violation) points back at a [`Span`] from here. Comments run from
//! `--` to end of line, except that `-->` is always the leads-to arrow
//! (so a comment must not start with `>`).

use std::fmt;

/// A source position (1-based line and column), the anchor every
/// `tempo-lint` diagnostic of the frontend carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`process`, `Train`, `x0`, ...).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal (probability bounds).
    Float(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `[[` — renaming opener.
    RenameOpen,
    /// `]]` — renaming closer.
    RenameClose,
    /// `[]` — external choice.
    ExtChoice,
    /// `|~|` — internal choice.
    IntChoice,
    /// `||` — parallel composition.
    Parallel,
    /// `<>` — the eventually diamond in assert queries.
    Diamond,
    /// `->` — prefix arrow.
    Arrow,
    /// `-->` — leads-to.
    LeadsTo,
    /// `:=` — assignment.
    Assign,
    /// `=` — definition / binding.
    Eq,
    /// `==` — equality comparison.
    EqEq,
    /// `!=` — disequality comparison.
    NotEq,
    /// `<=`.
    Le,
    /// `<`.
    Lt,
    /// `>=`.
    Ge,
    /// `>`.
    Gt,
    /// `!` — send decoration.
    Bang,
    /// `?` — receive decoration.
    Question,
    /// `,`.
    Comma,
    /// `:`.
    Colon,
    /// `.`.
    Dot,
    /// `..` — range separator.
    DotDot,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `\` — hiding.
    Backslash,
    /// `&&` — conjunction in formulas.
    AmpAmp,
    /// End of input (carries the past-the-end position).
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::RenameOpen => f.write_str("`[[`"),
            Tok::RenameClose => f.write_str("`]]`"),
            Tok::ExtChoice => f.write_str("`[]`"),
            Tok::IntChoice => f.write_str("`|~|`"),
            Tok::Parallel => f.write_str("`||`"),
            Tok::Diamond => f.write_str("`<>`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::LeadsTo => f.write_str("`-->`"),
            Tok::Assign => f.write_str("`:=`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Question => f.write_str("`?`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::DotDot => f.write_str("`..`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Backslash => f.write_str("`\\`"),
            Tok::AmpAmp => f.write_str("`&&`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What it is.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// A lexical error: an unexpected character or a malformed literal.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Where the offending text starts.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

/// Tokenizes `source` into a token stream ending in [`Tok::Eof`].
///
/// # Errors
///
/// Returns the first [`LexError`] encountered; the lexer does not try
/// to resynchronize (the parser reports one error per run, like the
/// MODEST parser in `tempo-modest`).
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Token {
                tok: $tok,
                span: Span { line, col },
            });
            i += $len;
            col += $len as u32;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    push!(Tok::LeadsTo, 3);
                } else if bytes.get(i + 1) == Some(&b'-') {
                    // Comment to end of line.
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                        col += 1;
                    }
                } else if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Arrow, 2);
                } else {
                    push!(Tok::Minus, 1);
                }
            }
            b'(' => push!(Tok::LParen, 1),
            b')' => push!(Tok::RParen, 1),
            b'{' => push!(Tok::LBrace, 1),
            b'}' => push!(Tok::RBrace, 1),
            b'[' => {
                if bytes.get(i + 1) == Some(&b'[') {
                    push!(Tok::RenameOpen, 2);
                } else if bytes.get(i + 1) == Some(&b']') {
                    push!(Tok::ExtChoice, 2);
                } else {
                    push!(Tok::LBracket, 1);
                }
            }
            b']' => {
                if bytes.get(i + 1) == Some(&b']') {
                    push!(Tok::RenameClose, 2);
                } else {
                    push!(Tok::RBracket, 1);
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'~') && bytes.get(i + 2) == Some(&b'|') {
                    push!(Tok::IntChoice, 3);
                } else if bytes.get(i + 1) == Some(&b'|') {
                    push!(Tok::Parallel, 2);
                } else {
                    return Err(LexError {
                        span: Span { line, col },
                        message: "stray `|`; did you mean `||` or `|~|`?".to_owned(),
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Diamond, 2);
                } else if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le, 2);
                } else {
                    push!(Tok::Lt, 1);
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge, 2);
                } else {
                    push!(Tok::Gt, 1);
                }
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Assign, 2);
                } else {
                    push!(Tok::Colon, 1);
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq, 2);
                } else {
                    push!(Tok::Eq, 1);
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::NotEq, 2);
                } else {
                    push!(Tok::Bang, 1);
                }
            }
            b'?' => push!(Tok::Question, 1),
            b',' => push!(Tok::Comma, 1),
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push!(Tok::DotDot, 2);
                } else {
                    push!(Tok::Dot, 1);
                }
            }
            b'+' => push!(Tok::Plus, 1),
            b'*' => push!(Tok::Star, 1),
            b'/' => push!(Tok::Slash, 1),
            b'\\' => push!(Tok::Backslash, 1),
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(Tok::AmpAmp, 2);
                } else {
                    return Err(LexError {
                        span: Span { line, col },
                        message: "stray `&`; did you mean `&&`?".to_owned(),
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let start_col = col;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let mut is_float = false;
                // A fractional part, but not the `..` range operator.
                if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1;
                    col += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                if bytes.get(i) == Some(&b'e') || bytes.get(i) == Some(&b'E') {
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'+') || bytes.get(j) == Some(&b'-') {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                        col += (j - i) as u32;
                        i = j;
                    }
                }
                let text = &source[start..i];
                let span = Span {
                    line,
                    col: start_col,
                };
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        span,
                        message: format!("malformed number `{text}`"),
                    })?;
                    out.push(Token {
                        tok: Tok::Float(v),
                        span,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        span,
                        message: format!("integer literal `{text}` out of range"),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        span,
                    });
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                let start_col = col;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                    col += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(source[start..i].to_owned()),
                    span: Span {
                        line,
                        col: start_col,
                    },
                });
            }
            _ => {
                return Err(LexError {
                    span: Span { line, col },
                    message: format!("unexpected character `{}`", source[i..].chars().next().unwrap_or('?')),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).expect("lex").into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn arrows_comments_and_choice_disambiguate() {
        assert_eq!(
            kinds("a -> b --> c -- comment -> ignored\nd"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::LeadsTo,
                Tok::Ident("c".into()),
                Tok::Ident("d".into()),
                Tok::Eof,
            ]
        );
        assert_eq!(
            kinds("[] [[ ]] [ ] |~| || x[0]"),
            vec![
                Tok::ExtChoice,
                Tok::RenameOpen,
                Tok::RenameClose,
                Tok::LBracket,
                Tok::RBracket,
                Tok::IntChoice,
                Tok::Parallel,
                Tok::Ident("x".into()),
                Tok::LBracket,
                Tok::Int(0),
                Tok::RBracket,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("0..10 0.5 1e-3 7"),
            vec![
                Tok::Int(0),
                Tok::DotDot,
                Tok::Int(10),
                Tok::Float(0.5),
                Tok::Float(1e-3),
                Tok::Int(7),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("ab\n  cd").expect("lex");
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn stray_chars_are_lex_errors() {
        assert!(lex("a | b").is_err());
        assert!(lex("a # b").is_err());
    }
}
