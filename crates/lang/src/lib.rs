//! `tempo-lang`: the textual frontend for the tempo toolbox.
//!
//! A CSPM-flavoured process language covering the modeling constructs
//! of the DATE 2012 survey's tool landscape — clocked prefix with
//! guards and updates, external (`[]`) and internal (`|~|`) choice,
//! parallel composition with per-junction sync sets, hiding, renaming,
//! integer parameters, and `assert` lines that name the analysis to
//! run (deadlock freedom, timed reachability, leads-to, refinement,
//! ioco, `Pmax`/`Pmin`, and statistical `Pr[..]` queries).
//!
//! The pipeline:
//!
//! ```text
//! source ─ lex/parse ─→ ast::Model ─ machine::build ─→ MachineSet
//!                                                        │
//!                 ┌──────────────┬──────────┬────────────┼───────────┐
//!                 ▼              ▼          ▼            ▼           ▼
//!          elaborate::     to_modest     to_bip      to_tioa      to_lts
//!          to_network      (mcpta/smc)   (deadlock)  (refinement) (ioco)
//! ```
//!
//! * [`parse`] turns source text into an [`ast::Model`] or a
//!   [`ParseError`] carrying a line:column span and a stable `TLxxx`
//!   code; [`ParseError::to_diagnostic`] bridges into the `tempo-lint`
//!   diagnostic stream.
//! * [`machine::build`] unfolds parameterized recursion into the flat
//!   [`machine::MachineSet`] IR, classifying events against the system
//!   line's sync sets (synchronized, hidden, or internal).
//! * [`elaborate`] lowers the IR onto each analysis substrate, gating
//!   engine subsets with `TL103` diagnostics instead of silently
//!   approximating.
//! * [`pretty::render`] prints a model back to canonical source;
//!   `parse ∘ render` is the identity on parser output (checked by a
//!   property test).
//!
//! Support modules used by the `tempo` CLI: [`jsonv`] (canonical JSON
//! writer + strict reader for the versioned result document),
//! [`sha256`] (input fingerprinting), and [`corpus`] (expected-verdict
//! headers of the graded problem set).

pub mod ast;
pub mod corpus;
pub mod elaborate;
pub mod jsonv;
pub mod machine;
pub mod parser;
pub mod pretty;
pub mod sha256;
pub mod token;

pub use ast::Model;
pub use corpus::{parse_header, CorpusHeader, Expectation};
pub use elaborate::{
    lower_formula_network, lower_formula_pta, to_bip, to_lts, to_modest, to_network, to_tioa,
};
pub use jsonv::Json;
pub use machine::{build, MachineSet};
pub use parser::{parse, ParseError};
pub use pretty::render;
pub use sha256::sha256_hex;
pub use token::{lex, Span};
