//! Expected-verdict headers for the graded `corpus/` problem set.
//!
//! Every corpus file opens with comment lines the test harness (and
//! CI) assert against:
//!
//! ```text
//! -- expect: pass            -- every assert holds
//! -- expect: fail 1          -- asserts 1 (0-based) fails, the rest hold
//! -- expect: parse-error     -- the file must be rejected by the parser
//! -- expect: lint-error      -- parses, but an engine lint gate rejects it
//! -- engine: mcpta           -- optional: forwarded as `--engine`
//! ```
//!
//! The header grammar is deliberately tiny; anything else on a `--`
//! line is an ordinary comment.

/// What a corpus problem expects from `tempo check`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// Every assert in the file holds.
    Pass,
    /// The listed 0-based assert indices fail; all others hold.
    Fail(Vec<usize>),
    /// The file does not parse (exit code 2).
    ParseError,
    /// The file parses but an engine lint gate rejects it (exit code 3).
    LintError,
}

/// Parsed corpus header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusHeader {
    /// The expected outcome.
    pub expect: Expectation,
    /// Engine override to forward to the CLI, if any.
    pub engine: Option<String>,
}

/// Extracts the expectation header from a corpus file's leading
/// comments. Errors if no `-- expect:` line is present or it is
/// malformed — a corpus problem without a graded expectation is a
/// harness bug, not a model.
pub fn parse_header(source: &str) -> Result<CorpusHeader, String> {
    let mut expect = None;
    let mut engine = None;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(comment) = trimmed.strip_prefix("--") else {
            break; // first non-comment line ends the header
        };
        let comment = comment.trim();
        if let Some(rest) = comment.strip_prefix("expect:") {
            if expect.is_some() {
                return Err("duplicate `-- expect:` header".into());
            }
            expect = Some(parse_expect(rest.trim())?);
        } else if let Some(rest) = comment.strip_prefix("engine:") {
            if engine.is_some() {
                return Err("duplicate `-- engine:` header".into());
            }
            engine = Some(rest.trim().to_owned());
        }
    }
    Ok(CorpusHeader {
        expect: expect.ok_or("missing `-- expect:` header")?,
        engine,
    })
}

fn parse_expect(text: &str) -> Result<Expectation, String> {
    let mut words = text.split_whitespace();
    match words.next() {
        Some("pass") => {
            if words.next().is_some() {
                return Err("`expect: pass` takes no arguments".into());
            }
            Ok(Expectation::Pass)
        }
        Some("fail") => {
            let mut indices = Vec::new();
            for w in words {
                indices.push(
                    w.parse::<usize>()
                        .map_err(|_| format!("bad assert index `{w}` in `expect: fail`"))?,
                );
            }
            if indices.is_empty() {
                return Err("`expect: fail` needs at least one assert index".into());
            }
            Ok(Expectation::Fail(indices))
        }
        Some("parse-error") => Ok(Expectation::ParseError),
        Some("lint-error") => Ok(Expectation::LintError),
        other => Err(format!("unknown expectation `{}`", other.unwrap_or(""))),
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_header, Expectation};

    #[test]
    fn parses_pass_and_engine() {
        let h = parse_header("-- P101: a tiny model\n-- expect: pass\n-- engine: ta\n\nprocess P = STOP\nsystem P\n")
            .expect("header");
        assert_eq!(h.expect, Expectation::Pass);
        assert_eq!(h.engine.as_deref(), Some("ta"));
    }

    #[test]
    fn parses_fail_indices() {
        let h = parse_header("-- expect: fail 0 2\nprocess P = STOP\nsystem P\n").expect("header");
        assert_eq!(h.expect, Expectation::Fail(vec![0, 2]));
    }

    #[test]
    fn header_stops_at_first_model_line() {
        let e = parse_header("process P = STOP\n-- expect: pass\nsystem P\n");
        assert!(e.is_err(), "expect line after model text must not count");
    }

    #[test]
    fn rejects_malformed_expectations() {
        assert!(parse_header("-- expect: maybe\n").is_err());
        assert!(parse_header("-- expect: fail\n").is_err());
        assert!(parse_header("-- expect: pass extra\n").is_err());
    }
}
