//! Lowering of the machine IR onto the analysis substrates:
//!
//! * [`to_network`] — full-featured `tempo-ta` network (every model).
//! * [`to_modest`] — MODEST model for the probabilistic engines
//!   (`mcpta` digital clocks, `mctau` over-approximation, `smc`
//!   simulation); gated to the pair-handshake subset.
//! * [`to_bip`] — untimed BIP system for interaction-level deadlock
//!   search.
//! * [`to_tioa`] — one component as a timed I/O automaton for ECDAR
//!   refinement; gated to the pure-clock `<=`/`>=` subset.
//! * [`to_lts`] — one component as an untimed LTS for ioco.
//!
//! Each lowering either succeeds or reports a `TL103` subset violation
//! naming the construct and the engine that refuses it; nothing is
//! silently dropped. The TA network is the reference semantics — every
//! other lowering preserves it on the subset it accepts, which is what
//! the differential-fuzz harness checks.

use crate::ast::{ChannelKind, CmpOp, Formula, IntExpr, IntOp};
use crate::machine::{self, MEvent, MachineSet, Rcc};
use crate::parser::ParseError;
use crate::token::Span;
use std::collections::{BTreeMap, HashMap};
use tempo_bip::{BipSystem, BipSystemBuilder, PortId};
use tempo_dbm::{Bound, Clock};
use tempo_ecdar::{Tioa, TioaAtom, TioaBuilder};
use tempo_expr::{BinOp, Decls, Expr, Stmt, VarId};
use tempo_ioco::{Label, Lts};
use tempo_modest::{Assignment, ModestModel, Process, Pta};
use tempo_ta::{
    AutomatonId, ClockAtom, LocationId, LocationKind, Network, NetworkBuilder, StateFormula,
};

fn err(code: &'static str, message: impl Into<String>) -> ParseError {
    ParseError {
        span: Span::default(),
        code,
        message: message.into(),
    }
}

/// Name → id table for the variables installed into an engine's
/// declaration block. Built once per lowering so expression translation
/// never needs to re-borrow the builder.
type VarMap = HashMap<String, VarId>;

/// Installs the model's variables into an engine declaration table and
/// returns the resulting name → id map.
fn install_vars(set: &MachineSet, decls: &mut Decls) -> VarMap {
    let mut map = HashMap::new();
    for v in &set.vars {
        let id = match v.len {
            None => decls.int_init(&v.name, v.lo, v.hi, v.init),
            Some(n) => decls.array(&v.name, n, v.lo, v.hi),
        };
        map.insert(v.name.clone(), id);
    }
    map
}

/// Rebuilds the [`VarMap`] for an already-built declaration table.
fn var_map_of(set: &MachineSet, decls: &Decls) -> VarMap {
    set.vars
        .iter()
        .filter_map(|v| decls.lookup(&v.name).map(|id| (v.name.clone(), id)))
        .collect()
}

/// Lowers a compile-time-substituted integer expression into the data
/// language: `param`s fold to constants, `var`s become store reads.
fn lower_int(
    e: &IntExpr,
    vars: &VarMap,
    params: &BTreeMap<String, i64>,
) -> Result<Expr, ParseError> {
    match e {
        IntExpr::Lit(v) => Ok(Expr::konst(*v)),
        IntExpr::Name(id) => {
            if let Some(v) = params.get(&id.name) {
                return Ok(Expr::konst(*v));
            }
            vars.get(&id.name)
                .map(|&v| Expr::var(v))
                .ok_or_else(|| err("TL107", format!("unknown variable `{}`", id.name)))
        }
        IntExpr::Index(id, i) => {
            let var = *vars
                .get(&id.name)
                .ok_or_else(|| err("TL107", format!("unknown array `{}`", id.name)))?;
            Ok(Expr::index(var, lower_int(i, vars, params)?))
        }
        IntExpr::Neg(x) => Ok(Expr::konst(0) - lower_int(x, vars, params)?),
        IntExpr::Bin(op, a, b) => {
            let a = lower_int(a, vars, params)?;
            let b = lower_int(b, vars, params)?;
            Ok(a.bin(
                match op {
                    IntOp::Add => BinOp::Add,
                    IntOp::Sub => BinOp::Sub,
                    IntOp::Mul => BinOp::Mul,
                    IntOp::Div => BinOp::Div,
                },
                b,
            ))
        }
    }
}

fn lower_cmp(a: Expr, op: CmpOp, b: Expr) -> Expr {
    match op {
        CmpOp::Le => a.le(b),
        CmpOp::Lt => a.lt(b),
        CmpOp::Ge => a.ge(b),
        CmpOp::Gt => a.gt(b),
        CmpOp::Eq => a.eq(b),
        CmpOp::Ne => a.ne(b),
    }
}

/// Conjoins the data-guard atoms of an edge into one expression.
fn lower_guard_data(
    atoms: &[(IntExpr, CmpOp, IntExpr)],
    vars: &VarMap,
    params: &BTreeMap<String, i64>,
) -> Result<Expr, ParseError> {
    let mut acc: Option<Expr> = None;
    for (a, op, b) in atoms {
        let e = lower_cmp(
            lower_int(a, vars, params)?,
            *op,
            lower_int(b, vars, params)?,
        );
        acc = Some(match acc {
            None => e,
            Some(g) => g.bin(BinOp::And, e),
        });
    }
    Ok(acc.unwrap_or_else(Expr::truth))
}

/// Lowers an edge's update block into a single statement.
fn lower_updates(
    updates: &[crate::machine::MUpdate],
    vars: &VarMap,
    params: &BTreeMap<String, i64>,
) -> Result<Stmt, ParseError> {
    let mut stmts = Vec::new();
    for u in updates {
        let var = *vars
            .get(&u.var)
            .ok_or_else(|| err("TL107", format!("unknown variable `{}`", u.var)))?;
        let rhs = lower_int(&u.rhs, vars, params)?;
        stmts.push(match &u.index {
            None => Stmt::assign(var, rhs),
            Some(i) => Stmt::assign_index(var, lower_int(i, vars, params)?, rhs),
        });
    }
    Ok(match stmts.len() {
        0 => Stmt::skip(),
        1 => stmts.pop().expect("nonempty"),
        _ => Stmt::seq(stmts),
    })
}

/// Expands a resolved clock constraint into DBM atoms (a `==` becomes
/// the `<=`/`>=` pair; difference bounds flip clocks for `>=`/`>`).
fn rcc_atoms(
    rcc: &Rcc,
    clock: impl Fn(&str) -> Option<Clock>,
) -> Result<Vec<ClockAtom>, ParseError> {
    let x = clock(&rcc.clock)
        .ok_or_else(|| err("TL102", format!("unknown clock `{}`", rcc.clock)))?;
    match &rcc.minus {
        None => Ok(match rcc.op {
            CmpOp::Le => vec![ClockAtom::le(x, rcc.bound)],
            CmpOp::Lt => vec![ClockAtom::lt(x, rcc.bound)],
            CmpOp::Ge => vec![ClockAtom::ge(x, rcc.bound)],
            CmpOp::Gt => vec![ClockAtom::gt(x, rcc.bound)],
            CmpOp::Eq => vec![ClockAtom::le(x, rcc.bound), ClockAtom::ge(x, rcc.bound)],
            CmpOp::Ne => return Err(err("TL006", "`!=` clock constraints are not supported")),
        }),
        Some(yname) => {
            let y = clock(yname)
                .ok_or_else(|| err("TL102", format!("unknown clock `{yname}`")))?;
            Ok(match rcc.op {
                CmpOp::Le => vec![ClockAtom::diff(x, y, Bound::le(rcc.bound))],
                CmpOp::Lt => vec![ClockAtom::diff(x, y, Bound::lt(rcc.bound))],
                CmpOp::Ge => vec![ClockAtom::diff(y, x, Bound::le(-rcc.bound))],
                CmpOp::Gt => vec![ClockAtom::diff(y, x, Bound::lt(-rcc.bound))],
                CmpOp::Eq => vec![
                    ClockAtom::diff(x, y, Bound::le(rcc.bound)),
                    ClockAtom::diff(y, x, Bound::le(-rcc.bound)),
                ],
                CmpOp::Ne => {
                    return Err(err("TL006", "`!=` clock constraints are not supported"));
                }
            })
        }
    }
}

// ------------------------------------------------------------------ TA

/// Lowers the machine set onto a `tempo-ta` network. This is the
/// reference substrate: every machine-IR construct is expressible.
pub fn to_network(set: &MachineSet) -> Result<Network, ParseError> {
    let mut b = NetworkBuilder::new();
    let vars = install_vars(set, b.decls_mut());
    let mut clock_ids = HashMap::new();
    for c in &set.clocks {
        clock_ids.insert(c.clone(), b.clock(c));
    }
    let mut chan_ids = HashMap::new();
    for (name, kind) in &set.channels {
        if !set.synced.contains(name) {
            continue;
        }
        let id = match kind {
            ChannelKind::Handshake => b.channel(name),
            ChannelKind::Urgent => b.urgent_channel(name),
            ChannelKind::Broadcast => b.broadcast_channel(name),
        };
        chan_ids.insert(name.clone(), id);
    }
    let params = &set.params;
    for m in &set.machines {
        let mut a = b.automaton(&m.name);
        let mut locs = Vec::new();
        for s in &m.states {
            let mut inv = Vec::new();
            for rcc in &s.invariant {
                inv.extend(rcc_atoms(rcc, |n| clock_ids.get(n).copied())?);
            }
            let kind = if s.committed {
                LocationKind::Committed
            } else {
                LocationKind::Normal
            };
            locs.push(a.location_full(&s.name, kind, inv));
        }
        a.set_initial(locs[0]);
        for e in &m.edges {
            let mut eb = a.edge(locs[e.from], locs[e.to]);
            for rcc in &e.guard_clocks {
                for atom in rcc_atoms(rcc, |n| clock_ids.get(n).copied())? {
                    eb = eb.guard_clock(atom);
                }
            }
            eb = match &e.event {
                MEvent::Tau => eb,
                MEvent::Send(c) => eb.send(chan_ids[c.as_str()]),
                MEvent::Recv(c) => eb.recv(chan_ids[c.as_str()]),
            };
            for (clock, rhs) in &e.resets {
                let id = clock_ids[clock.as_str()];
                eb = match rhs {
                    IntExpr::Lit(v) => eb.reset(id, *v),
                    other => eb.reset_expr(id, lower_int(other, &vars, params)?),
                };
            }
            if !e.guard_data.is_empty() {
                eb = eb.guard_data(lower_guard_data(&e.guard_data, &vars, params)?);
            }
            if !e.updates.is_empty() {
                eb = eb.update(lower_updates(&e.updates, &vars, params)?);
            }
            eb.done();
        }
        a.done();
    }
    Ok(b.build())
}

/// Lowers an assert formula onto the network's location/clock space.
pub fn lower_formula_network(
    set: &MachineSet,
    net: &Network,
    f: &Formula,
) -> Result<StateFormula, ParseError> {
    let vars = var_map_of(set, net.decls());
    lower_formula_net_inner(set, net, &vars, f)
}

fn lower_formula_net_inner(
    set: &MachineSet,
    net: &Network,
    vars: &VarMap,
    f: &Formula,
) -> Result<StateFormula, ParseError> {
    match f {
        Formula::True => Ok(StateFormula::data(Expr::truth())),
        Formula::False => Ok(StateFormula::data(Expr::konst(0))),
        Formula::AtLoc(c, l) => {
            let a = net
                .automaton_by_name(&c.name)
                .ok_or_else(|| err("TL106", format!("unknown component `{}`", c.name)))?;
            let loc = net.automaton(a).location_by_name(&l.name).ok_or_else(|| {
                err(
                    "TL106",
                    format!("component `{}` has no state `{}`", c.name, l.name),
                )
            })?;
            Ok(StateFormula::at(a, loc))
        }
        Formula::Clock(cc) => {
            let rcc = machine::resolve_formula_cc(set, cc)?;
            let atoms = rcc_atoms(&rcc, |n| net.clock_by_name(n))?;
            Ok(StateFormula::and(
                atoms.into_iter().map(StateFormula::clock).collect(),
            ))
        }
        Formula::Data(a, op, b) => {
            let ea = lower_int(a, vars, &set.params)?;
            let eb = lower_int(b, vars, &set.params)?;
            Ok(StateFormula::data(lower_cmp(ea, *op, eb)))
        }
        Formula::Not(g) => Ok(StateFormula::not(lower_formula_net_inner(
            set, net, vars, g,
        )?)),
        Formula::And(gs) => {
            let fs: Result<Vec<_>, _> = gs
                .iter()
                .map(|g| lower_formula_net_inner(set, net, vars, g))
                .collect();
            Ok(StateFormula::and(fs?))
        }
        Formula::Or(gs) => {
            let fs: Result<Vec<_>, _> = gs
                .iter()
                .map(|g| lower_formula_net_inner(set, net, vars, g))
                .collect();
            Ok(StateFormula::or(fs?))
        }
    }
}

// -------------------------------------------------------------- MODEST

/// Name of the MODEST process that models state `k` of machine `m`.
/// State 0 is the system process and carries the machine's own name;
/// other states get a derived name whose compiled entry location is
/// `"{name}_0"` (the `tempo-modest` compiler's convention).
fn modest_proc_name(machine: &str, state_idx: usize, state_name: &str) -> String {
    if state_idx == 0 {
        machine.to_owned()
    } else {
        format!("{machine}__{state_name}")
    }
}

/// Lowers the machine set onto a MODEST model for the probabilistic
/// engines. The accepted subset: handshake channels connecting exactly
/// one sender component to one receiver component, no committed states
/// (internal choice), and constant clock resets. Everything else is a
/// `TL103` violation naming the construct.
pub fn to_modest(set: &MachineSet) -> Result<ModestModel, ParseError> {
    // channel → machine → (sends, receives)
    let mut users: BTreeMap<&str, BTreeMap<&str, (bool, bool)>> = BTreeMap::new();
    for m in &set.machines {
        for s in &m.states {
            if s.committed {
                return Err(err(
                    "TL103",
                    format!(
                        "internal choice (committed state `{}` of `{}`) is not supported by \
                         the probabilistic engines",
                        s.name, m.name
                    ),
                ));
            }
        }
        for e in &m.edges {
            match &e.event {
                MEvent::Send(c) => {
                    users
                        .entry(c.as_str())
                        .or_default()
                        .entry(m.name.as_str())
                        .or_default()
                        .0 = true;
                }
                MEvent::Recv(c) => {
                    users
                        .entry(c.as_str())
                        .or_default()
                        .entry(m.name.as_str())
                        .or_default()
                        .1 = true;
                }
                MEvent::Tau => {}
            }
            for (clock, rhs) in &e.resets {
                if !matches!(rhs, IntExpr::Lit(_)) {
                    return Err(err(
                        "TL103",
                        format!(
                            "reset of clock `{clock}` to a non-constant expression is not \
                             supported by the probabilistic engines"
                        ),
                    ));
                }
            }
        }
    }
    for (c, kind) in &set.channels {
        if !set.synced.contains(c) {
            continue;
        }
        let Some(u) = users.get(c.as_str()) else {
            continue; // declared and synced but never used: no edges to pair
        };
        if *kind != ChannelKind::Handshake {
            return Err(err(
                "TL103",
                format!(
                    "the probabilistic engines support only plain handshake channels; \
                     `{c}` is urgent or broadcast"
                ),
            ));
        }
        if u.len() != 2 {
            return Err(err(
                "TL103",
                format!(
                    "channel `{c}` must connect exactly two components for the probabilistic \
                     engines (used by {})",
                    u.len()
                ),
            ));
        }
        let dirs: Vec<(bool, bool)> = u.values().copied().collect();
        for (name, (snd, rcv)) in u {
            if *snd && *rcv {
                return Err(err(
                    "TL103",
                    format!(
                        "component `{name}` both sends and receives on `{c}`; the \
                         probabilistic engines need one sender and one receiver"
                    ),
                ));
            }
        }
        if !((dirs[0].0 && dirs[1].1) || (dirs[0].1 && dirs[1].0)) {
            return Err(err(
                "TL103",
                format!("channel `{c}` needs exactly one sending and one receiving component"),
            ));
        }
    }

    let mut mm = ModestModel::new();
    let vars = install_vars(set, mm.decls_mut());
    let mut clock_ids = HashMap::new();
    for c in &set.clocks {
        clock_ids.insert(c.clone(), mm.clock(c));
    }
    let mut chan_actions = HashMap::new();
    for (c, _) in &set.channels {
        if set.synced.contains(c) && users.contains_key(c.as_str()) {
            chan_actions.insert(c.clone(), mm.action(c));
        }
    }
    for m in &set.machines {
        for (k, s) in m.states.iter().enumerate() {
            let mut branches = Vec::new();
            for (ei, e) in m.edges.iter().enumerate() {
                if e.from != k {
                    continue;
                }
                let action = match &e.event {
                    MEvent::Tau => mm.action(&format!("tau__{}__{ei}", m.name)),
                    MEvent::Send(c) | MEvent::Recv(c) => chan_actions[c.as_str()],
                };
                let mut assigns = Vec::new();
                for u in &e.updates {
                    let var = *vars
                        .get(&u.var)
                        .ok_or_else(|| err("TL107", format!("unknown variable `{}`", u.var)))?;
                    let rhs = lower_int(&u.rhs, &vars, &set.params)?;
                    assigns.push(match &u.index {
                        None => Assignment::Var(var, rhs),
                        Some(i) => {
                            Assignment::ArrayElem(var, lower_int(i, &vars, &set.params)?, rhs)
                        }
                    });
                }
                for (clock, rhs) in &e.resets {
                    let IntExpr::Lit(v) = rhs else {
                        unreachable!("gated above");
                    };
                    assigns.push(Assignment::Clock(clock_ids[clock.as_str()], *v));
                }
                let target = modest_proc_name(&m.name, e.to, &m.states[e.to].name);
                let mut p = Process::act_with(action, assigns, Process::call(&target));
                if !e.guard_data.is_empty() {
                    p = Process::when(lower_guard_data(&e.guard_data, &vars, &set.params)?, p);
                }
                for rcc in &e.guard_clocks {
                    for atom in rcc_atoms(rcc, |n| clock_ids.get(n).copied())? {
                        p = Process::when_clock(atom, p);
                    }
                }
                branches.push(p);
            }
            let mut body = match branches.len() {
                0 => Process::stop(),
                1 => branches.pop().expect("nonempty"),
                _ => Process::alt(branches),
            };
            let mut inv = Vec::new();
            for rcc in &s.invariant {
                inv.extend(rcc_atoms(rcc, |n| clock_ids.get(n).copied())?);
            }
            if !inv.is_empty() {
                body = Process::invariant(inv, body);
            }
            mm.define(&modest_proc_name(&m.name, k, &s.name), body);
        }
    }
    let names: Vec<&str> = set.machines.iter().map(|m| m.name.as_str()).collect();
    mm.system(&names);
    Ok(mm)
}

/// Lowers an assert formula onto a compiled PTA's location space. The
/// returned formula addresses components and locations by index, so it
/// works unchanged on the `mctau` network (which preserves indices).
/// Clock atoms are rejected: probabilistic goals must be discrete.
pub fn lower_formula_pta(
    set: &MachineSet,
    pta: &Pta,
    f: &Formula,
) -> Result<StateFormula, ParseError> {
    let vars = var_map_of(set, &pta.decls);
    lower_formula_pta_inner(set, pta, &vars, f)
}

fn lower_formula_pta_inner(
    set: &MachineSet,
    pta: &Pta,
    vars: &VarMap,
    f: &Formula,
) -> Result<StateFormula, ParseError> {
    match f {
        Formula::True => Ok(StateFormula::data(Expr::truth())),
        Formula::False => Ok(StateFormula::data(Expr::konst(0))),
        Formula::AtLoc(c, l) => {
            let (ai, aut) = pta
                .automata
                .iter()
                .enumerate()
                .find(|(_, a)| a.name == c.name)
                .ok_or_else(|| err("TL106", format!("unknown component `{}`", c.name)))?;
            let m = set
                .machine(&c.name)
                .ok_or_else(|| err("TL106", format!("unknown component `{}`", c.name)))?;
            let k = m.state_by_name(&l.name).ok_or_else(|| {
                err(
                    "TL106",
                    format!("component `{}` has no state `{}`", c.name, l.name),
                )
            })?;
            let li = if k == 0 {
                aut.initial
            } else {
                let loc_name = format!("{}_0", modest_proc_name(&c.name, k, &l.name));
                aut.locations
                    .iter()
                    .position(|loc| loc.name == loc_name)
                    .ok_or_else(|| {
                        err(
                            "TL103",
                            format!(
                                "state `{}` of `{}` is unreachable in the probabilistic \
                                 compilation and cannot appear in a goal",
                                l.name, c.name
                            ),
                        )
                    })?
            };
            Ok(StateFormula::at(AutomatonId(ai), LocationId(li)))
        }
        Formula::Clock(_) => Err(err(
            "TL103",
            "probabilistic goals must be clock-free; rephrase the query over locations \
             and variables",
        )),
        Formula::Data(a, op, b) => {
            let ea = lower_int(a, vars, &set.params)?;
            let eb = lower_int(b, vars, &set.params)?;
            Ok(StateFormula::data(lower_cmp(ea, *op, eb)))
        }
        Formula::Not(g) => Ok(StateFormula::not(lower_formula_pta_inner(
            set, pta, vars, g,
        )?)),
        Formula::And(gs) => {
            let fs: Result<Vec<_>, _> = gs
                .iter()
                .map(|g| lower_formula_pta_inner(set, pta, vars, g))
                .collect();
            Ok(StateFormula::and(fs?))
        }
        Formula::Or(gs) => {
            let fs: Result<Vec<_>, _> = gs
                .iter()
                .map(|g| lower_formula_pta_inner(set, pta, vars, g))
                .collect();
            Ok(StateFormula::or(fs?))
        }
    }
}

// ----------------------------------------------------------------- BIP

/// Lowers an untimed machine set onto a BIP system for interaction-level
/// deadlock search. Handshakes become binary rendezvous between each
/// sender/receiver component pair; internal steps become unary
/// interactions. Timed models, committed states, and broadcast channels
/// are rejected.
pub fn to_bip(set: &MachineSet) -> Result<BipSystem, ParseError> {
    if set.is_timed() {
        return Err(err(
            "TL103",
            "the BIP deadlock engine supports untimed models only (clocks are used)",
        ));
    }
    for (c, kind) in &set.channels {
        if set.synced.contains(c) && *kind == ChannelKind::Broadcast {
            return Err(err(
                "TL103",
                format!("broadcast channel `{c}` is not expressible as BIP rendezvous"),
            ));
        }
    }
    let mut b = BipSystemBuilder::new();
    let vars = install_vars(set, b.decls_mut());
    // (machine, channel) → send/recv port; machine → tau port
    let mut send_ports: HashMap<(String, String), PortId> = HashMap::new();
    let mut recv_ports: HashMap<(String, String), PortId> = HashMap::new();
    let mut tau_ports: HashMap<String, PortId> = HashMap::new();
    for m in &set.machines {
        let mut c = b.component(&m.name);
        let mut sids = Vec::new();
        for s in &m.states {
            if s.committed {
                return Err(err(
                    "TL103",
                    format!(
                        "internal choice (committed state `{}` of `{}`) is not supported by \
                         the BIP deadlock engine",
                        s.name, m.name
                    ),
                ));
            }
            sids.push(c.state(&s.name));
        }
        c.set_initial(sids[0]);
        let mut local_send: HashMap<&str, PortId> = HashMap::new();
        let mut local_recv: HashMap<&str, PortId> = HashMap::new();
        let mut local_tau: Option<PortId> = None;
        for e in &m.edges {
            let port = match &e.event {
                MEvent::Tau => *local_tau.get_or_insert_with(|| c.port("tau")),
                MEvent::Send(ch) => *local_send
                    .entry(ch.as_str())
                    .or_insert_with(|| c.port(&format!("{ch}_snd"))),
                MEvent::Recv(ch) => *local_recv
                    .entry(ch.as_str())
                    .or_insert_with(|| c.port(&format!("{ch}_rcv"))),
            };
            let guard = lower_guard_data(&e.guard_data, &vars, &set.params)?;
            let update = lower_updates(&e.updates, &vars, &set.params)?;
            c.transition_full(sids[e.from], sids[e.to], port, guard, update);
        }
        c.done();
        for (ch, p) in local_send {
            send_ports.insert((m.name.clone(), ch.to_owned()), p);
        }
        for (ch, p) in local_recv {
            recv_ports.insert((m.name.clone(), ch.to_owned()), p);
        }
        if let Some(p) = local_tau {
            tau_ports.insert(m.name.clone(), p);
        }
    }
    for (chan, _) in &set.channels {
        if !set.synced.contains(chan) {
            continue;
        }
        for ms in &set.machines {
            let Some(&ps) = send_ports.get(&(ms.name.clone(), chan.clone())) else {
                continue;
            };
            for mr in &set.machines {
                if ms.name == mr.name {
                    continue;
                }
                let Some(&pr) = recv_ports.get(&(mr.name.clone(), chan.clone())) else {
                    continue;
                };
                b.rendezvous(&format!("{chan}__{}__{}", ms.name, mr.name), &[ps, pr]);
            }
        }
    }
    for m in &set.machines {
        if let Some(&p) = tau_ports.get(&m.name) {
            b.rendezvous(&format!("tau__{}", m.name), &[p]);
        }
    }
    Ok(b.build())
}

// --------------------------------------------------------------- ECDAR

/// Lowers one component as a timed I/O automaton for refinement
/// checking: sends become outputs, receives become inputs. The ECDAR
/// subset is pure timed automata — no data guards or updates, no
/// internal steps, constant-zero resets, and non-strict single-clock
/// bounds only.
pub fn to_tioa(set: &MachineSet, comp: &str) -> Result<Tioa, ParseError> {
    let m = set
        .machine(comp)
        .ok_or_else(|| err("TL106", format!("unknown component `{comp}`")))?;
    let mut b = TioaBuilder::new(comp);
    let mut clock_ids = HashMap::new();
    for c in &set.clocks {
        clock_ids.insert(c.clone(), b.clock(c));
    }
    let tioa_atoms = |rcc: &Rcc| -> Result<Vec<TioaAtom>, ParseError> {
        if rcc.minus.is_some() {
            return Err(err(
                "TL103",
                "clock-difference constraints are not supported by the refinement engine",
            ));
        }
        let x = clock_ids
            .get(&rcc.clock)
            .copied()
            .ok_or_else(|| err("TL102", format!("unknown clock `{}`", rcc.clock)))?;
        match rcc.op {
            CmpOp::Le => Ok(vec![TioaAtom::le(x, rcc.bound)]),
            CmpOp::Ge => Ok(vec![TioaAtom::ge(x, rcc.bound)]),
            CmpOp::Eq => Ok(vec![TioaAtom::le(x, rcc.bound), TioaAtom::ge(x, rcc.bound)]),
            CmpOp::Lt | CmpOp::Gt | CmpOp::Ne => Err(err(
                "TL103",
                format!(
                    "the refinement engine supports only non-strict clock bounds; \
                     `{}` {} {} is strict",
                    rcc.clock,
                    rcc.op.symbol(),
                    rcc.bound
                ),
            )),
        }
    };
    let mut locs = Vec::new();
    for s in &m.states {
        if s.committed {
            return Err(err(
                "TL103",
                format!("committed state `{}` is not supported by the refinement engine", s.name),
            ));
        }
        let mut inv = Vec::new();
        for rcc in &s.invariant {
            inv.extend(tioa_atoms(rcc)?);
        }
        locs.push(b.location_with_invariant(&s.name, inv));
    }
    b.set_initial(locs[0]);
    for e in &m.edges {
        if !e.guard_data.is_empty() || !e.updates.is_empty() {
            return Err(err(
                "TL103",
                "data guards and updates are not supported by the refinement engine",
            ));
        }
        let chan = match &e.event {
            MEvent::Tau => {
                return Err(err(
                    "TL103",
                    format!(
                        "component `{comp}` has an internal step; the refinement engine \
                         needs a fully synchronized alphabet (add the channels to the \
                         system sync sets)"
                    ),
                ));
            }
            MEvent::Send(c) | MEvent::Recv(c) => c.clone(),
        };
        let mut eb = match &e.event {
            MEvent::Send(_) => b.output(locs[e.from], locs[e.to], &chan),
            _ => b.input(locs[e.from], locs[e.to], &chan),
        };
        for rcc in &e.guard_clocks {
            for atom in tioa_atoms(rcc)? {
                eb = eb.guard(atom);
            }
        }
        for (clock, rhs) in &e.resets {
            if !matches!(rhs, IntExpr::Lit(0)) {
                return Err(err(
                    "TL103",
                    format!(
                        "reset of `{clock}` to a non-zero value is not supported by the \
                         refinement engine"
                    ),
                ));
            }
            eb = eb.reset(clock_ids[clock.as_str()]);
        }
        eb.done();
    }
    Ok(b.build())
}

// ---------------------------------------------------------------- ioco

/// Lowers one component as an untimed labelled transition system for
/// ioco conformance: sends become outputs, receives become inputs,
/// internal steps become τ. Timed behaviour and data are rejected.
pub fn to_lts(set: &MachineSet, comp: &str) -> Result<Lts, ParseError> {
    let m = set
        .machine(comp)
        .ok_or_else(|| err("TL106", format!("unknown component `{comp}`")))?;
    if m.is_timed() {
        return Err(err(
            "TL103",
            format!("component `{comp}` is timed; the ioco engine supports untimed models only"),
        ));
    }
    let mut lts = Lts::new();
    let sids: Vec<_> = m.states.iter().map(|s| lts.state(&s.name)).collect();
    lts.set_initial(sids[0]);
    for e in &m.edges {
        if !e.guard_data.is_empty() || !e.updates.is_empty() {
            return Err(err(
                "TL103",
                "data guards and updates are not supported by the ioco engine",
            ));
        }
        let label = match &e.event {
            MEvent::Tau => Label::Tau,
            MEvent::Send(c) => Label::output(c),
            MEvent::Recv(c) => Label::input(c),
        };
        lts.transition(sids[e.from], label, sids[e.to]);
    }
    Ok(lts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::build;
    use crate::parser::parse;
    use tempo_obs::Budget;
    use tempo_ta::ModelChecker;

    fn set_of(src: &str) -> MachineSet {
        build(&parse(src).expect("parse")).expect("machine build")
    }

    #[test]
    fn network_reachability_of_handshake() {
        let src = "
channel go
clock x

process Sender = inv { x <= 5 } when { x >= 2 } go! { x := 0 } -> Sender
process Receiver = go? -> Done
process Done = STOP

system Sender || {go} Receiver
";
        let set = set_of(src);
        let net = to_network(&set).expect("network");
        let goal = lower_formula_network(
            &set,
            &net,
            &Formula::AtLoc(crate::ast::Ident::new("Receiver"), crate::ast::Ident::new("Done")),
        )
        .expect("goal");
        let mut mc = ModelChecker::new(&net);
        assert!(mc.reachable(&goal).reachable);
    }

    #[test]
    fn modest_lowering_agrees_with_network_on_reachability() {
        let src = "
channel go
clock x

process Sender = inv { x <= 3 } go! -> STOP
process Receiver = go? -> Done
process Done = STOP

system Sender || {go} Receiver
";
        let set = set_of(src);
        let mm = to_modest(&set).expect("modest");
        let pta = tempo_modest::compile(&mm);
        let goal = lower_formula_pta(
            &set,
            &pta,
            &Formula::AtLoc(crate::ast::Ident::new("Receiver"), crate::ast::Ident::new("Done")),
        )
        .expect("goal");
        let mcpta = tempo_modest::Mcpta::try_build(&pta, &[], &Budget::unlimited())
            .into_value()
            .expect("built");
        let p = mcpta.pmax_governed(&goal, &Budget::unlimited()).into_value();
        assert!((p - 1.0).abs() < 1e-9, "goal reachable with probability 1, got {p}");
    }

    #[test]
    fn modest_rejects_internal_choice() {
        let src = "
process P = tau -> STOP |~| tau -> P
system P
";
        let set = set_of(src);
        let e = to_modest(&set).expect_err("committed states must be rejected");
        assert_eq!(e.code, "TL103");
    }

    #[test]
    fn bip_finds_cross_coupled_deadlock() {
        // Both components want to send first: classic rendezvous deadlock.
        let src = "
channel a, b

process P = a! -> b? -> P
process Q = b! -> a? -> Q

system P || {a, b} Q
";
        let set = set_of(src);
        let sys = to_bip(&set).expect("bip");
        let dead = sys
            .find_deadlock_governed(&Budget::unlimited())
            .into_value();
        assert!(dead.is_some(), "cross-coupled rendezvous must deadlock");
    }

    #[test]
    fn bip_rejects_timed_models() {
        let src = "
clock x
process P = when { x >= 1 } tau -> P
system P
";
        let set = set_of(src);
        let e = to_bip(&set).expect_err("timed model must be rejected");
        assert_eq!(e.code, "TL103");
    }

    #[test]
    fn tioa_self_refinement() {
        let src = "
channel req, grant
clock x

process Impl = req? { x := 0 } -> inv { x <= 10 } grant! -> Impl

system Impl || {req, grant} Impl as Spec
";
        let set = set_of(src);
        let imp = to_tioa(&set, "Impl").expect("impl tioa");
        let spec = to_tioa(&set, "Spec").expect("spec tioa");
        let out = tempo_ecdar::refines_governed(&imp, &spec, &Budget::unlimited());
        assert!(out.into_value().is_ok(), "a component refines itself");
    }

    #[test]
    fn lts_self_conformance() {
        let src = "
channel coin, coffee

process M = coin? -> coffee! -> M

system M || {coin, coffee} M as S
";
        let set = set_of(src);
        let imp = to_lts(&set, "M").expect("impl lts");
        let spec = to_lts(&set, "S").expect("spec lts");
        assert!(tempo_ioco::check_ioco(&imp, &spec).is_ok());
    }
}
