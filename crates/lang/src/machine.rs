//! The machine IR: each `system` component elaborated into a flat
//! state-transition graph with resolved clocks, folded parameters and
//! channel events already renamed/hidden/classified.
//!
//! Every substrate lowering (`tempo-ta` network, MODEST model, BIP
//! system, TIOA, LTS) consumes this IR instead of re-walking the AST —
//! the recursion unfolding, parameter substitution and sync-set
//! classification happen exactly once, here.

use crate::ast::*;
use crate::parser::ParseError;
use crate::token::Span;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Hard cap on clock/variable array lengths and on unfolded machine
/// states, so a typo'd parameter cannot blow up elaboration.
pub const MAX_UNFOLD: usize = 4096;

/// A resolved clock constraint: clock names are post-expansion
/// (`y[2]`), bounds are folded integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rcc {
    /// Left clock name.
    pub clock: String,
    /// Right clock for difference constraints.
    pub minus: Option<String>,
    /// Comparison (never `!=`; `==` is expanded by the lowerings).
    pub op: CmpOp,
    /// The folded bound.
    pub bound: i64,
}

/// A resolved variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedVar {
    /// Name.
    pub name: String,
    /// Array length (`None` = scalar).
    pub len: Option<usize>,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Initial value (scalars only).
    pub init: i64,
}

/// The event of a machine edge, after renaming, hiding and sync-set
/// classification: only synchronized channels survive as events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MEvent {
    /// Internal step (explicit `tau`, a hidden channel, or an
    /// unsynchronized channel).
    Tau,
    /// Send half of a synchronized channel.
    Send(String),
    /// Receive half of a synchronized channel.
    Recv(String),
}

impl MEvent {
    /// The channel name, if this is a channel event.
    #[must_use]
    pub fn channel(&self) -> Option<&str> {
        match self {
            MEvent::Tau => None,
            MEvent::Send(c) | MEvent::Recv(c) => Some(c),
        }
    }
}

/// A variable update on an edge. Expressions are formal-substituted
/// AST expressions (they reference only `var`s and `param`s).
#[derive(Clone, Debug, PartialEq)]
pub struct MUpdate {
    /// Target variable.
    pub var: String,
    /// Array index, if the target is an element.
    pub index: Option<IntExpr>,
    /// Right-hand side.
    pub rhs: IntExpr,
}

/// One machine transition.
#[derive(Clone, Debug, PartialEq)]
pub struct MEdge {
    /// Source state index.
    pub from: usize,
    /// Target state index.
    pub to: usize,
    /// Clock-constraint guard conjuncts.
    pub guard_clocks: Vec<Rcc>,
    /// Data guard conjuncts.
    pub guard_data: Vec<(IntExpr, CmpOp, IntExpr)>,
    /// The event.
    pub event: MEvent,
    /// Clock resets (clock name, value expression).
    pub resets: Vec<(String, IntExpr)>,
    /// Variable updates, applied in order.
    pub updates: Vec<MUpdate>,
}

/// One machine state.
#[derive(Clone, Debug, PartialEq)]
pub struct MState {
    /// Name (referenceable from `Comp.Loc` formula atoms; anonymous
    /// states are named `@k`).
    pub name: String,
    /// Invariant conjuncts.
    pub invariant: Vec<Rcc>,
    /// Whether the state resolves instantaneously (internal choice).
    pub committed: bool,
}

/// One elaborated component: a flat state graph. State 0 is initial.
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    /// Instance name (the `as` alias or the process name).
    pub name: String,
    /// States; index 0 is initial.
    pub states: Vec<MState>,
    /// Transitions.
    pub edges: Vec<MEdge>,
}

impl Machine {
    /// Finds a state index by name.
    #[must_use]
    pub fn state_by_name(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s.name == name)
    }

    /// Whether any state or edge mentions a clock.
    #[must_use]
    pub fn is_timed(&self) -> bool {
        self.states.iter().any(|s| !s.invariant.is_empty())
            || self
                .edges
                .iter()
                .any(|e| !e.guard_clocks.is_empty() || !e.resets.is_empty())
    }
}

/// The full elaborated model: machines plus the resolved global
/// declaration tables.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSet {
    /// Folded `param` values.
    pub params: BTreeMap<String, i64>,
    /// Expanded clock names (`y[N]` becomes `y[0]`..`y[N-1]`).
    pub clocks: Vec<String>,
    /// Declared channels with their kinds.
    pub channels: Vec<(String, ChannelKind)>,
    /// Channels synchronized by the `system` line (union of all sync
    /// sets); events on any other channel are internal.
    pub synced: BTreeSet<String>,
    /// Resolved variables.
    pub vars: Vec<ResolvedVar>,
    /// One machine per component, in `system` order.
    pub machines: Vec<Machine>,
}

impl MachineSet {
    /// Finds a machine by instance name.
    #[must_use]
    pub fn machine(&self, name: &str) -> Option<&Machine> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// Folds a constant expression over the model's `param` table — the
    /// evaluator behind assert-level constants such as the time bound
    /// of a `Pr[<= b]` query.
    ///
    /// # Errors
    ///
    /// `TL101` when the expression mentions anything but literals and
    /// parameters (or divides by zero).
    pub fn eval_const(&self, e: &IntExpr) -> Result<i64, ParseError> {
        fold(e, &self.params, &HashMap::new(), Span::default())
    }

    /// The declared kind of a channel.
    #[must_use]
    pub fn channel_kind(&self, name: &str) -> Option<ChannelKind> {
        self.channels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| *k)
    }

    /// Whether any machine mentions a clock.
    #[must_use]
    pub fn is_timed(&self) -> bool {
        self.machines.iter().any(Machine::is_timed)
    }
}

fn err(span: Span, code: &'static str, message: impl Into<String>) -> ParseError {
    ParseError {
        span,
        code,
        message: message.into(),
    }
}

/// Folds a compile-time integer expression over `params` and the
/// current formal-argument environment.
fn fold(
    e: &IntExpr,
    params: &BTreeMap<String, i64>,
    env: &HashMap<String, i64>,
    span: Span,
) -> Result<i64, ParseError> {
    match e {
        IntExpr::Lit(v) => Ok(*v),
        IntExpr::Name(id) => env
            .get(&id.name)
            .or_else(|| params.get(&id.name))
            .copied()
            .ok_or_else(|| {
                err(
                    id.span,
                    "TL101",
                    format!("`{}` is not a compile-time constant here", id.name),
                )
            }),
        IntExpr::Index(id, _) => Err(err(
            id.span,
            "TL101",
            format!("array element `{}[..]` is not a compile-time constant", id.name),
        )),
        IntExpr::Neg(x) => Ok(fold(x, params, env, span)?.wrapping_neg()),
        IntExpr::Bin(op, a, b) => {
            let a = fold(a, params, env, span)?;
            let b = fold(b, params, env, span)?;
            Ok(match op {
                IntOp::Add => a.wrapping_add(b),
                IntOp::Sub => a.wrapping_sub(b),
                IntOp::Mul => a.wrapping_mul(b),
                IntOp::Div => {
                    if b == 0 {
                        return Err(err(span, "TL101", "division by zero in constant expression"));
                    }
                    a.wrapping_div(b)
                }
            })
        }
    }
}

/// Best-effort constant evaluation after substitution: `Some(v)` when
/// the expression involves only literals and `param`s, `None` when it
/// reads a runtime variable (or divides by zero, which is left for the
/// engine's own trap handling).
fn try_const(e: &IntExpr, params: &BTreeMap<String, i64>) -> Option<i64> {
    match e {
        IntExpr::Lit(v) => Some(*v),
        IntExpr::Name(id) => params.get(&id.name).copied(),
        IntExpr::Index(..) => None,
        IntExpr::Neg(x) => Some(try_const(x, params)?.wrapping_neg()),
        IntExpr::Bin(op, a, b) => {
            let a = try_const(a, params)?;
            let b = try_const(b, params)?;
            Some(match op {
                IntOp::Add => a.wrapping_add(b),
                IntOp::Sub => a.wrapping_sub(b),
                IntOp::Mul => a.wrapping_mul(b),
                IntOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
            })
        }
    }
}

fn cmp_holds(a: i64, op: CmpOp, b: i64) -> bool {
    match op {
        CmpOp::Le => a <= b,
        CmpOp::Lt => a < b,
        CmpOp::Ge => a >= b,
        CmpOp::Gt => a > b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

/// Substitutes formal parameters (bound in `env`) by literals, leaving
/// `var` and `param` references intact.
fn subst(e: &IntExpr, env: &HashMap<String, i64>) -> IntExpr {
    match e {
        IntExpr::Lit(v) => IntExpr::Lit(*v),
        IntExpr::Name(id) => match env.get(&id.name) {
            Some(v) => IntExpr::Lit(*v),
            None => IntExpr::Name(id.clone()),
        },
        IntExpr::Index(id, i) => IntExpr::Index(id.clone(), Box::new(subst(i, env))),
        IntExpr::Neg(x) => IntExpr::Neg(Box::new(subst(x, env))),
        IntExpr::Bin(op, a, b) => {
            IntExpr::Bin(*op, Box::new(subst(a, env)), Box::new(subst(b, env)))
        }
    }
}

/// Elaborates the parsed model into its machine set.
///
/// # Errors
///
/// `TL1xx` elaboration errors: non-constant bounds, bad clock indices,
/// unguarded recursion, out-of-range initial values, or a missing
/// `system` line.
pub fn build(model: &Model) -> Result<MachineSet, ParseError> {
    let mut params = BTreeMap::new();
    for p in &model.params {
        params.insert(p.name.name.clone(), p.value);
    }
    let empty = HashMap::new();

    // Clock expansion.
    let mut clocks = Vec::new();
    let mut clock_sizes: HashMap<String, Option<usize>> = HashMap::new();
    for c in &model.clocks {
        match &c.size {
            None => {
                clocks.push(c.name.name.clone());
                clock_sizes.insert(c.name.name.clone(), None);
            }
            Some(e) => {
                let n = fold(e, &params, &empty, c.name.span)?;
                if n < 1 || n as usize > MAX_UNFOLD {
                    return Err(err(
                        c.name.span,
                        "TL102",
                        format!("clock array `{}` has invalid length {n}", c.name.name),
                    ));
                }
                for i in 0..n {
                    clocks.push(format!("{}[{i}]", c.name.name));
                }
                clock_sizes.insert(c.name.name.clone(), Some(n as usize));
            }
        }
    }

    let mut channels = Vec::new();
    for d in &model.channels {
        for n in &d.names {
            channels.push((n.name.clone(), d.kind));
        }
    }

    // Variables.
    let mut vars = Vec::new();
    for v in &model.vars {
        let lo = fold(&v.lo, &params, &empty, v.name.span)?;
        let hi = fold(&v.hi, &params, &empty, v.name.span)?;
        if lo > hi {
            return Err(err(
                v.name.span,
                "TL108",
                format!("empty range {lo}..{hi} for `{}`", v.name.name),
            ));
        }
        let len = match &v.size {
            None => None,
            Some(e) => {
                let n = fold(e, &params, &empty, v.name.span)?;
                if n < 1 || n as usize > MAX_UNFOLD {
                    return Err(err(
                        v.name.span,
                        "TL108",
                        format!("array `{}` has invalid length {n}", v.name.name),
                    ));
                }
                Some(n as usize)
            }
        };
        let init = match (&v.init, len) {
            (Some(e), None) => {
                let i = fold(e, &params, &empty, v.name.span)?;
                if i < lo || i > hi {
                    return Err(err(
                        v.name.span,
                        "TL108",
                        format!("initial value {i} outside {lo}..{hi} for `{}`", v.name.name),
                    ));
                }
                i
            }
            (Some(_), Some(_)) => {
                return Err(err(
                    v.name.span,
                    "TL108",
                    format!("array `{}` cannot take an initializer", v.name.name),
                ));
            }
            // Scalars default to the canonical array element default so
            // every substrate agrees: 0 when in range, else `lo`.
            (None, _) => {
                if lo <= 0 && 0 <= hi {
                    0
                } else {
                    lo
                }
            }
        };
        vars.push(ResolvedVar {
            name: v.name.name.clone(),
            len,
            lo,
            hi,
            init,
        });
    }

    let sys = model
        .system
        .as_ref()
        .ok_or_else(|| err(Span::default(), "TL107", "model has no `system` line"))?;
    let synced: BTreeSet<String> = sys
        .syncs
        .iter()
        .flatten()
        .map(|id| id.name.clone())
        .collect();

    let mut machines = Vec::new();
    for comp in &sys.components {
        let mut b = MachineBuilder {
            model,
            params: &params,
            clock_sizes: &clock_sizes,
            rename: comp
                .rename
                .iter()
                .map(|(o, n)| (o.name.clone(), n.name.clone()))
                .collect(),
            hide: comp.hide.iter().map(|h| h.name.clone()).collect(),
            synced: &synced,
            states: Vec::new(),
            edges: Vec::new(),
            keymap: HashMap::new(),
            names: BTreeSet::new(),
            anon: 0,
            pending: Vec::new(),
        };
        let args: Result<Vec<i64>, ParseError> = comp
            .args
            .iter()
            .map(|a| fold(a, &params, &empty, comp.process.span))
            .collect();
        let init = b.key_state(&comp.process, &args?)?;
        debug_assert_eq!(init, 0);
        b.drain()?;
        machines.push(Machine {
            name: comp.instance_name().to_owned(),
            states: b.states,
            edges: b.edges,
        });
    }

    Ok(MachineSet {
        params,
        clocks,
        channels,
        synced,
        vars,
        machines,
    })
}

struct MachineBuilder<'m> {
    model: &'m Model,
    params: &'m BTreeMap<String, i64>,
    clock_sizes: &'m HashMap<String, Option<usize>>,
    rename: HashMap<String, String>,
    hide: BTreeSet<String>,
    synced: &'m BTreeSet<String>,
    states: Vec<MState>,
    edges: Vec<MEdge>,
    keymap: HashMap<(String, Vec<i64>), usize>,
    names: BTreeSet<String>,
    anon: usize,
    /// States allocated by `key_state` whose bodies await expansion.
    pending: Vec<(usize, Ident, Vec<i64>)>,
}

impl MachineBuilder<'_> {
    fn fresh_state(&mut self, base: &str) -> usize {
        let mut name = base.to_owned();
        let mut k = 1;
        while !self.names.insert(name.clone()) {
            name = format!("{base}#{k}");
            k += 1;
        }
        self.states.push(MState {
            name,
            invariant: Vec::new(),
            committed: false,
        });
        self.states.len() - 1
    }

    /// The state for a named call `(process, folded args)`, expanding
    /// its body on first sight.
    fn key_state(&mut self, callee: &Ident, args: &[i64]) -> Result<usize, ParseError> {
        let key = (callee.name.clone(), args.to_vec());
        if let Some(&idx) = self.keymap.get(&key) {
            return Ok(idx);
        }
        if self.states.len() >= MAX_UNFOLD {
            return Err(err(
                callee.span,
                "TL104",
                format!("machine exceeds {MAX_UNFOLD} states while unfolding"),
            ));
        }
        let base = if args.is_empty() {
            callee.name.clone()
        } else {
            let parts: Vec<String> = args
                .iter()
                .map(|v| {
                    if *v < 0 {
                        format!("m{}", v.unsigned_abs())
                    } else {
                        v.to_string()
                    }
                })
                .collect();
            format!("{}_{}", callee.name, parts.join("_"))
        };
        let idx = self.fresh_state(&base);
        self.keymap.insert(key.clone(), idx);
        // Expansion is deferred to the drain loop in `build` so that
        // long call chains (Count(0) → Count(1) → …) consume worklist
        // entries, not stack frames.
        self.model
            .process(&callee.name)
            .ok_or_else(|| err(callee.span, "TL105", format!("undefined process `{}`", callee.name)))?;
        self.pending.push((idx, callee.clone(), args.to_vec()));
        Ok(idx)
    }

    /// Drains the worklist of states whose bodies still need expanding.
    fn drain(&mut self) -> Result<(), ParseError> {
        while let Some((idx, callee, args)) = self.pending.pop() {
            let def = self.model.process(&callee.name).ok_or_else(|| {
                err(callee.span, "TL105", format!("undefined process `{}`", callee.name))
            })?;
            let env: HashMap<String, i64> = def
                .params
                .iter()
                .map(|p| p.name.clone())
                .zip(args.iter().copied())
                .collect();
            let body = def.body.clone();
            let mut visiting = vec![(callee.name.clone(), args)];
            self.expand_into(idx, &body, &env, &mut visiting)?;
        }
        Ok(())
    }

    /// The state a continuation term lands in.
    fn state_of(&mut self, p: &Proc, env: &HashMap<String, i64>) -> Result<usize, ParseError> {
        match p {
            Proc::Call(callee, args) => {
                let folded: Result<Vec<i64>, ParseError> = args
                    .iter()
                    .map(|a| fold(a, self.params, env, callee.span))
                    .collect();
                self.key_state(callee, &folded?)
            }
            Proc::Stop => Ok(self.terminal("STOP")),
            Proc::Skip => Ok(self.terminal("SKIP")),
            other => {
                self.anon += 1;
                let idx = self.fresh_state(&format!("@{}", self.anon));
                let env = env.clone();
                let mut visiting = Vec::new();
                self.expand_into(idx, other, &env, &mut visiting)?;
                Ok(idx)
            }
        }
    }

    /// The machine's single `STOP` (or `SKIP`) sink state.
    fn terminal(&mut self, name: &str) -> usize {
        if let Some(i) = self.states.iter().position(|s| s.name == name) {
            return i;
        }
        self.fresh_state(name)
    }

    /// Adds the behaviour of `p` to existing state `idx`.
    fn expand_into(
        &mut self,
        idx: usize,
        p: &Proc,
        env: &HashMap<String, i64>,
        visiting: &mut Vec<(String, Vec<i64>)>,
    ) -> Result<(), ParseError> {
        match p {
            Proc::Stop | Proc::Skip => Ok(()),
            Proc::Invariant(atoms, inner) => {
                for a in atoms {
                    let rcc = self.resolve_cc(a, env)?;
                    self.states[idx].invariant.push(rcc);
                }
                self.expand_into(idx, inner, env, visiting)
            }
            Proc::ExtChoice(parts) => {
                for part in parts {
                    self.expand_into(idx, part, env, visiting)?;
                }
                Ok(())
            }
            Proc::IntChoice(parts) => {
                self.states[idx].committed = true;
                for part in parts {
                    let to = self.state_of(part, env)?;
                    self.edges.push(MEdge {
                        from: idx,
                        to,
                        guard_clocks: Vec::new(),
                        guard_data: Vec::new(),
                        event: MEvent::Tau,
                        resets: Vec::new(),
                        updates: Vec::new(),
                    });
                }
                Ok(())
            }
            Proc::Prefix {
                guards,
                event,
                updates,
                then,
            } => {
                let mut guard_clocks = Vec::new();
                let mut guard_data = Vec::new();
                for g in guards {
                    match g {
                        GuardAtom::Clock(cc) => guard_clocks.push(self.resolve_cc(cc, env)?),
                        GuardAtom::Data(a, op, b) => {
                            let a = subst(a, env);
                            let b = subst(b, env);
                            // Constant guards are decided here: false
                            // prunes the whole edge (this is what makes
                            // `Count(k) = when {k < N} ... Count(k+1)`
                            // idioms terminate), true disappears.
                            if let (Some(va), Some(vb)) =
                                (try_const(&a, self.params), try_const(&b, self.params))
                            {
                                if cmp_holds(va, *op, vb) {
                                    continue;
                                }
                                return Ok(());
                            }
                            guard_data.push((a, *op, b));
                        }
                    }
                }
                let mevent = match event {
                    EventSpec::Tau => MEvent::Tau,
                    EventSpec::Send(c) | EventSpec::Recv(c) => {
                        let renamed = self
                            .rename
                            .get(&c.name)
                            .cloned()
                            .unwrap_or_else(|| c.name.clone());
                        if self.hide.contains(&renamed) || !self.synced.contains(&renamed) {
                            MEvent::Tau
                        } else if matches!(event, EventSpec::Send(_)) {
                            MEvent::Send(renamed)
                        } else {
                            MEvent::Recv(renamed)
                        }
                    }
                };
                let mut resets = Vec::new();
                let mut var_updates = Vec::new();
                for u in updates {
                    match u {
                        Update::ClockReset(cr, e) => {
                            let name = self.resolve_clock(cr, env)?;
                            resets.push((name, subst(e, env)));
                        }
                        Update::Assign(v, i, e) => var_updates.push(MUpdate {
                            var: v.name.clone(),
                            index: i.as_deref().map(|x| subst(x, env)),
                            rhs: subst(e, env),
                        }),
                    }
                }
                let to = self.state_of(then, env)?;
                self.edges.push(MEdge {
                    from: idx,
                    to,
                    guard_clocks,
                    guard_data,
                    event: mevent,
                    resets,
                    updates: var_updates,
                });
                Ok(())
            }
            Proc::Call(callee, args) => {
                // A call in choice/initial position: inline the callee's
                // behaviour into this state.
                let folded: Result<Vec<i64>, ParseError> = args
                    .iter()
                    .map(|a| fold(a, self.params, env, callee.span))
                    .collect();
                let key = (callee.name.clone(), folded?);
                if visiting.contains(&key) {
                    return Err(err(
                        callee.span,
                        "TL104",
                        format!(
                            "unguarded recursion through `{}`: every cycle must pass an event prefix",
                            callee.name
                        ),
                    ));
                }
                if visiting.len() >= 64 {
                    return Err(err(
                        callee.span,
                        "TL104",
                        format!(
                            "call chain through `{}` exceeds 64 frames without an event prefix",
                            callee.name
                        ),
                    ));
                }
                let def = self.model.process(&callee.name).ok_or_else(|| {
                    err(callee.span, "TL105", format!("undefined process `{}`", callee.name))
                })?;
                let callee_env: HashMap<String, i64> = def
                    .params
                    .iter()
                    .map(|p| p.name.clone())
                    .zip(key.1.iter().copied())
                    .collect();
                visiting.push(key);
                let body = def.body.clone();
                self.expand_into(idx, &body, &callee_env, visiting)?;
                visiting.pop();
                Ok(())
            }
        }
    }

    /// Resolves a clock reference to its expanded name.
    fn resolve_clock(
        &self,
        cr: &ClockRef,
        env: &HashMap<String, i64>,
    ) -> Result<String, ParseError> {
        let size = self
            .clock_sizes
            .get(&cr.name.name)
            .ok_or_else(|| {
                err(cr.name.span, "TL103", format!("`{}` is not a clock", cr.name.name))
            })?;
        match (size, &cr.index) {
            (None, None) => Ok(cr.name.name.clone()),
            (Some(n), Some(e)) => {
                let i = fold(e, self.params, env, cr.name.span)?;
                if i < 0 || i as usize >= *n {
                    return Err(err(
                        cr.name.span,
                        "TL102",
                        format!("index {i} out of range for clock array `{}[{n}]`", cr.name.name),
                    ));
                }
                Ok(format!("{}[{i}]", cr.name.name))
            }
            (None, Some(_)) => Err(err(
                cr.name.span,
                "TL102",
                format!("`{}` is not a clock array", cr.name.name),
            )),
            (Some(_), None) => Err(err(
                cr.name.span,
                "TL102",
                format!("clock array `{}` needs an index", cr.name.name),
            )),
        }
    }

    fn resolve_cc(
        &self,
        cc: &ClockConstraint,
        env: &HashMap<String, i64>,
    ) -> Result<Rcc, ParseError> {
        let clock = self.resolve_clock(&cc.clock, env)?;
        let minus = match &cc.minus {
            None => None,
            Some(c) => Some(self.resolve_clock(c, env)?),
        };
        let bound = fold(&cc.bound, self.params, env, cc.clock.name.span)?;
        Ok(Rcc {
            clock,
            minus,
            op: cc.op,
            bound,
        })
    }
}

/// Resolves a clock reference appearing in a *formula* (no formal
/// environment; params only).
pub(crate) fn resolve_formula_cc(
    set: &MachineSet,
    cc: &ClockConstraint,
) -> Result<Rcc, ParseError> {
    let resolve = |cr: &ClockRef| -> Result<String, ParseError> {
        let name = match &cr.index {
            None => cr.name.name.clone(),
            Some(e) => {
                let i = fold(e, &set.params, &HashMap::new(), cr.name.span)?;
                format!("{}[{i}]", cr.name.name)
            }
        };
        if set.clocks.contains(&name) {
            Ok(name)
        } else {
            Err(err(
                cr.name.span,
                "TL102",
                format!("`{name}` is not a declared clock"),
            ))
        }
    };
    let clock = resolve(&cc.clock)?;
    let minus = match &cc.minus {
        None => None,
        Some(c) => Some(resolve(c)?),
    };
    let bound = fold(&cc.bound, &set.params, &HashMap::new(), cc.clock.name.span)?;
    Ok(Rcc {
        clock,
        minus,
        op: cc.op,
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn unfolds_parameterized_recursion() {
        let src = "\
param N = 2
channel tick
process Count(k) = when {k < N} tick! -> Count(k + 1) [] when {k == N} tick! -> Count(0)
process Sink = tick? -> Sink
system Count(0) || {tick} Sink
";
        let set = build(&parse(src).expect("parse")).expect("build");
        let m = set.machine("Count").expect("machine");
        // Count(0), Count(1), Count(2): three key states.
        assert_eq!(m.states.len(), 3);
        assert!(m.state_by_name("Count_0").is_some());
        assert!(m.state_by_name("Count_2").is_some());
        assert_eq!(m.edges.len(), 3);
    }

    #[test]
    fn hiding_and_sync_classification() {
        let src = "\
channel a, b
process P = a! -> b! -> P
process Q = a? -> Q
system P \\ {b} || {a} Q
";
        let set = build(&parse(src).expect("parse")).expect("build");
        let p = set.machine("P").expect("P");
        let events: Vec<&MEvent> = p.edges.iter().map(|e| &e.event).collect();
        assert!(events.contains(&&MEvent::Send("a".into())));
        assert!(events.contains(&&MEvent::Tau));
    }

    #[test]
    fn unguarded_recursion_is_rejected() {
        let src = "process P = Q\nprocess Q = P\nsystem P";
        let e = build(&parse(src).expect("parse")).expect_err("loop");
        assert_eq!(e.code, "TL104");
    }

    #[test]
    fn clock_arrays_expand_and_bounds_fold() {
        let src = "\
param N = 2
channel go
clock y[N]
process P(i) = inv {y[i] <= 3 * N} when {y[i] >= N} go! -> P(i)
process Q = go? -> Q
system P(1) || {go} Q
";
        let set = build(&parse(src).expect("parse")).expect("build");
        assert_eq!(set.clocks, vec!["y[0]".to_owned(), "y[1]".to_owned()]);
        let p = set.machine("P").expect("P");
        assert_eq!(p.states[0].invariant[0].clock, "y[1]");
        assert_eq!(p.states[0].invariant[0].bound, 6);
        assert_eq!(p.edges[0].guard_clocks[0].bound, 2);
    }

    #[test]
    fn internal_choice_is_committed_tau() {
        let src = "\
channel a
process P = (a! -> P) |~| STOP
process Q = a? -> Q
system P || {a} Q
";
        let set = build(&parse(src).expect("parse")).expect("build");
        let p = set.machine("P").expect("P");
        assert!(p.states[0].committed);
        let taus = p
            .edges
            .iter()
            .filter(|e| e.from == 0 && e.event == MEvent::Tau)
            .count();
        assert_eq!(taus, 2);
    }
}
