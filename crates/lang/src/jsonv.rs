//! A small JSON value type with a canonical writer and a strict reader.
//!
//! The `tempo` CLI emits its versioned result document through
//! [`Json::render`]; the golden-suite tests read documents back with
//! [`Json::parse`] to validate them against the schema. Keeping both
//! directions in one place guarantees the validator accepts exactly
//! what the emitter produces.
//!
//! Objects preserve insertion order (the schema fixes field order, and
//! stable output is what makes the golden files byte-comparable).
//! Numbers are `f64`; integral values render without a fraction part.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integral values render as integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string node.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer node.
    #[must_use]
    pub fn int(v: i64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(v as f64)
    }

    /// Field lookup on an object node.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as a number, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The node as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the document with two-space indentation and a
    /// trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Strict: rejects trailing content,
    /// unescaped control characters, and malformed numbers.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    #[allow(clippy::float_cmp, clippy::cast_possible_truncation)]
    if v.is_finite() && v.trunc() == v && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; the schema never produces them, but the
        // writer must stay well-formed regardless.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit()
            || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the schema;
                        // reject them rather than mis-decode.
                        let c = char::from_u32(code).ok_or("surrogate in \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("unescaped control character at byte {pos}"));
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn round_trips_representative_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("tempo-result v1")),
            ("ok".into(), Json::Bool(true)),
            ("count".into(), Json::int(42)),
            ("p".into(), Json::Num(0.125)),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::str("a\"b\\c\nd")]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::int(7).render(), "7\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }
}
