//! Statistical model checking: probability estimation with confidence
//! intervals, Chernoff–Hoeffding sample-size planning, Wald's sequential
//! probability ratio test, expected-value estimation and empirical CDFs.

use std::fmt;

/// Errors from the estimation API: invalid inputs are reported as typed
/// values instead of panicking, so adversarial or degenerate sample sets
/// (zero runs, empty sample vectors) flow back to the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// `estimate` was asked to summarise zero runs.
    NoRuns,
    /// `estimate_mean` was given an empty sample set.
    NoSamples,
    /// The confidence level is outside the open interval `(0, 1)`.
    InvalidConfidence(f64),
    /// The budget's cancellation token was cancelled before any run
    /// completed, so there is no data to estimate from.
    Cancelled,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NoRuns => write!(f, "estimation requires at least one run"),
            StatsError::NoSamples => write!(f, "estimation requires at least one sample"),
            StatsError::InvalidConfidence(c) => {
                write!(f, "confidence must be in (0,1), got {c}")
            }
            StatsError::Cancelled => {
                write!(f, "cancelled before any run completed")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// An estimated probability with a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate `successes / runs`.
    pub mean: f64,
    /// Lower end of the confidence interval.
    pub lower: f64,
    /// Upper end of the confidence interval.
    pub upper: f64,
    /// Number of runs used.
    pub runs: usize,
    /// Number of runs satisfying the property.
    pub successes: usize,
    /// Confidence level (e.g. `0.95`).
    pub confidence: f64,
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} [{:.6}, {:.6}] ({}% CI, {}/{} runs)",
            self.mean,
            self.lower,
            self.upper,
            (self.confidence * 100.0).round(),
            self.successes,
            self.runs
        )
    }
}

/// Estimated mean and standard deviation of a run-valued quantity, as
/// reported by the `modes` simulator in Table I of the paper
/// (`µ = 33.473, σ = 2.136` for `Emax`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimate {
    /// Sample mean `µ`.
    pub mean: f64,
    /// Sample standard deviation `σ`.
    pub std_dev: f64,
    /// Number of samples.
    pub runs: usize,
}

impl fmt::Display for MeanEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "µ={:.3}, σ={:.3} ({} runs)",
            self.mean, self.std_dev, self.runs
        )
    }
}

/// Computes an [`Estimate`] from Bernoulli outcomes using the Wilson
/// score interval at the given confidence level. Alias of
/// [`wilson_interval`], kept as the default CI construction of every
/// probability-estimating engine.
///
/// # Errors
///
/// Returns [`StatsError::NoRuns`] if `runs == 0` and
/// [`StatsError::InvalidConfidence`] if `confidence` is not in `(0, 1)`.
pub fn estimate(successes: usize, runs: usize, confidence: f64) -> Result<Estimate, StatsError> {
    wilson_interval(successes, runs, confidence)
}

/// The Wilson score interval: inverts the normal test on the *score*
/// scale, so the interval stays inside `[0, 1]`, never collapses to a
/// point at 0 or n successes, and keeps close-to-nominal coverage for
/// the extreme proportions rare-event estimation produces.
///
/// # Errors
///
/// Returns [`StatsError::NoRuns`] if `runs == 0` and
/// [`StatsError::InvalidConfidence`] if `confidence` is not in `(0, 1)`.
pub fn wilson_interval(
    successes: usize,
    runs: usize,
    confidence: f64,
) -> Result<Estimate, StatsError> {
    if runs == 0 {
        return Err(StatsError::NoRuns);
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidConfidence(confidence));
    }
    let n = runs as f64;
    let p = successes as f64 / n;
    let z = z_quantile(1.0 - (1.0 - confidence) / 2.0);
    let denom = 1.0 + z * z / n;
    let center = (p + z * z / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
    Ok(Estimate {
        mean: p,
        lower: (center - half).max(0.0),
        upper: (center + half).min(1.0),
        runs,
        successes,
        confidence,
    })
}

/// The Wald (normal-approximation) interval `p̂ ± z·√(p̂(1−p̂)/n)`,
/// provided for comparison only: at rare-event proportions it
/// degenerates — zero observed successes give the empty interval
/// `[0, 0]`, claiming certainty after finitely many runs. The
/// regression tests pin both constructions side by side; engines use
/// [`wilson_interval`].
///
/// # Errors
///
/// Returns [`StatsError::NoRuns`] if `runs == 0` and
/// [`StatsError::InvalidConfidence`] if `confidence` is not in `(0, 1)`.
pub fn wald_interval(
    successes: usize,
    runs: usize,
    confidence: f64,
) -> Result<Estimate, StatsError> {
    if runs == 0 {
        return Err(StatsError::NoRuns);
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidConfidence(confidence));
    }
    let n = runs as f64;
    let p = successes as f64 / n;
    let z = z_quantile(1.0 - (1.0 - confidence) / 2.0);
    let half = z * (p * (1.0 - p) / n).sqrt();
    Ok(Estimate {
        mean: p,
        lower: (p - half).max(0.0),
        upper: (p + half).min(1.0),
        runs,
        successes,
        confidence,
    })
}

/// The number of runs needed so that, by the Chernoff–Hoeffding bound,
/// the estimate is within `epsilon` of the true probability with
/// probability at least `1 - delta`: `n ≥ ln(2/δ) / (2 ε²)`.
///
/// # Panics
///
/// Panics if `epsilon` or `delta` is not in `(0, 1)`.
#[must_use]
pub fn chernoff_runs(epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// Estimates the mean and standard deviation of samples.
///
/// # Errors
///
/// Returns [`StatsError::NoSamples`] if `samples` is empty.
pub fn estimate_mean(samples: &[f64]) -> Result<MeanEstimate, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::NoSamples);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Ok(MeanEstimate {
        mean,
        std_dev: var.sqrt(),
        runs: samples.len(),
    })
}

/// Outcome of a sequential hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestVerdict {
    /// `H0: p ≥ theta + delta` accepted (the probability is high).
    AcceptH0,
    /// `H1: p ≤ theta - delta` accepted (the probability is low).
    AcceptH1,
    /// The sample budget was exhausted without a decision.
    Undecided,
}

/// Wald's sequential probability ratio test for
/// `H0: p ≥ theta + delta` against `H1: p ≤ theta - delta`, with
/// strength `(alpha, beta)` (type I / type II error bounds).
///
/// Feed Bernoulli outcomes with [`Sprt::observe`] until
/// [`Sprt::verdict`] returns a decision.
///
/// ```
/// use tempo_smc::{Sprt, TestVerdict};
/// let mut t = Sprt::new(0.5, 0.1, 0.05, 0.05);
/// for _ in 0..100 { t.observe(true); }
/// assert_eq!(t.verdict(), TestVerdict::AcceptH0);
/// ```
#[derive(Debug, Clone)]
pub struct Sprt {
    p0: f64,
    p1: f64,
    log_a: f64,
    log_b: f64,
    log_ratio: f64,
    observations: usize,
}

impl Sprt {
    /// Creates a test of `p ≥ theta + delta` vs `p ≤ theta - delta`.
    ///
    /// # Panics
    ///
    /// Panics if the indifference region leaves `[0, 1]` or the error
    /// bounds are not in `(0, 1)`.
    #[must_use]
    pub fn new(theta: f64, delta: f64, alpha: f64, beta: f64) -> Self {
        let p0 = theta + delta;
        let p1 = theta - delta;
        assert!(
            p1 > 0.0 && p0 < 1.0,
            "indifference region must stay within (0,1)"
        );
        assert!(alpha > 0.0 && alpha < 1.0 && beta > 0.0 && beta < 1.0);
        Sprt {
            p0,
            p1,
            log_a: ((1.0 - beta) / alpha).ln(),
            log_b: (beta / (1.0 - alpha)).ln(),
            log_ratio: 0.0,
            observations: 0,
        }
    }

    /// Feeds one Bernoulli outcome.
    pub fn observe(&mut self, success: bool) {
        self.observations += 1;
        // Likelihood ratio of H1 over H0.
        self.log_ratio += if success {
            (self.p1 / self.p0).ln()
        } else {
            ((1.0 - self.p1) / (1.0 - self.p0)).ln()
        };
    }

    /// Number of observations so far.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The current verdict.
    #[must_use]
    pub fn verdict(&self) -> TestVerdict {
        if self.log_ratio >= self.log_a {
            TestVerdict::AcceptH1
        } else if self.log_ratio <= self.log_b {
            TestVerdict::AcceptH0
        } else {
            TestVerdict::Undecided
        }
    }
}

/// An empirical cumulative distribution function built from samples, as
/// plotted in Fig. 4 of the paper (probability that a train has crossed
/// as a function of time).
#[derive(Debug, Clone, Default)]
pub struct EmpiricalCdf {
    samples: Vec<f64>,
    /// Total population size (samples that never hit count toward the
    /// denominator but not the numerator).
    population: usize,
}

impl EmpiricalCdf {
    /// Creates a CDF over `population` runs; hits are added with
    /// [`EmpiricalCdf::add`].
    #[must_use]
    pub fn new(population: usize) -> Self {
        EmpiricalCdf {
            samples: Vec::new(),
            population,
        }
    }

    /// Records one hit time.
    pub fn add(&mut self, t: f64) {
        self.samples.push(t);
    }

    /// Number of recorded hits.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.samples.len()
    }

    /// The fraction of the population with hit time `≤ t`.
    #[must_use]
    pub fn at(&self, t: f64) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        let count = self.samples.iter().filter(|&&s| s <= t).count();
        count as f64 / self.population as f64
    }

    /// Evaluates the CDF on a grid of time points.
    ///
    /// Sorts the samples once and answers each grid point by binary
    /// search, so a plot over a dense grid costs `O((h + g) log h)`
    /// instead of rescanning all `h` hits for each of the `g` points.
    #[must_use]
    pub fn series(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        if self.population == 0 {
            return grid.iter().map(|&t| (t, 0.0)).collect();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let pop = self.population as f64;
        grid.iter()
            .map(|&t| (t, sorted.partition_point(|&s| s <= t) as f64 / pop))
            .collect()
    }
}

/// Approximate standard-normal quantile (Acklam's rational
/// approximation; absolute error < 1.15e-9, ample for CI construction).
fn z_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -z_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_contains_mean() {
        let e = estimate(30, 100, 0.95).unwrap();
        assert!((e.mean - 0.3).abs() < 1e-12);
        assert!(e.lower < 0.3 && 0.3 < e.upper);
        assert!(e.lower > 0.2 && e.upper < 0.42);
    }

    #[test]
    fn wilson_and_wald_pinned_on_known_bernoulli_sample() {
        // 30/100 successes at 95%: textbook values for both intervals.
        // Wilson: center (p + z²/2n)/(1 + z²/n), half-width per
        // Wilson (1927); Wald: p ± 1.96·√(0.3·0.7/100).
        let wilson = wilson_interval(30, 100, 0.95).unwrap();
        assert!((wilson.lower - 0.218_94).abs() < 5e-4, "{}", wilson.lower);
        assert!((wilson.upper - 0.395_86).abs() < 5e-4, "{}", wilson.upper);
        let wald = wald_interval(30, 100, 0.95).unwrap();
        assert!((wald.lower - 0.210_18).abs() < 5e-4, "{}", wald.lower);
        assert!((wald.upper - 0.389_82).abs() < 5e-4, "{}", wald.upper);
        // `estimate` is the Wilson construction.
        assert_eq!(estimate(30, 100, 0.95).unwrap(), wilson);

        // Rare-event regime: 0 successes in 10⁶ runs of a p ≈ 1e-9
        // property. Wald collapses to the empty interval [0, 0] —
        // certainty after a million runs is visibly wrong. Wilson keeps
        // a non-degenerate upper bound ≈ z²/(n + z²) ≈ 3.8e-6 that
        // still covers the true probability.
        let wald = wald_interval(0, 1_000_000, 0.95).unwrap();
        assert_eq!((wald.lower, wald.upper), (0.0, 0.0));
        let wilson = wilson_interval(0, 1_000_000, 0.95).unwrap();
        assert_eq!(wilson.lower, 0.0);
        assert!(wilson.upper > 1e-9, "Wilson must still cover p ≈ 1e-9");
        assert!((wilson.upper - 3.84e-6).abs() < 2e-7, "{}", wilson.upper);
    }

    #[test]
    fn zero_and_full_successes() {
        let e = estimate(0, 100, 0.95).unwrap();
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.lower, 0.0);
        assert!(e.upper < 0.05);
        let e = estimate(100, 100, 0.95).unwrap();
        assert_eq!(e.mean, 1.0);
        assert_eq!(e.upper, 1.0);
        assert!(e.lower > 0.95);
    }

    #[test]
    fn chernoff_sample_sizes() {
        // Classic figure: ±0.01 at 95% needs ~18445 runs.
        let n = chernoff_runs(0.01, 0.05);
        assert!((18_400..18_500).contains(&n));
        assert!(chernoff_runs(0.1, 0.05) < n);
    }

    #[test]
    fn mean_estimation() {
        let m = estimate_mean(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((m.mean - 2.5).abs() < 1e-12);
        assert!((m.std_dev - (5.0 / 3.0_f64).sqrt()).abs() < 1e-12);
        let single = estimate_mean(&[7.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn sprt_decides_clear_cases() {
        // True p = 1: H0 (p >= 0.6) should be accepted quickly.
        let mut t = Sprt::new(0.5, 0.1, 0.01, 0.01);
        let mut n = 0;
        while t.verdict() == TestVerdict::Undecided && n < 10_000 {
            t.observe(true);
            n += 1;
        }
        assert_eq!(t.verdict(), TestVerdict::AcceptH0);
        // True p = 0: H1 accepted.
        let mut t = Sprt::new(0.5, 0.1, 0.01, 0.01);
        let mut n = 0;
        while t.verdict() == TestVerdict::Undecided && n < 10_000 {
            t.observe(false);
            n += 1;
        }
        assert_eq!(t.verdict(), TestVerdict::AcceptH1);
    }

    #[test]
    fn empirical_cdf_monotone() {
        let mut cdf = EmpiricalCdf::new(4);
        cdf.add(1.0);
        cdf.add(2.0);
        cdf.add(10.0);
        // One of the 4 runs never hit.
        assert_eq!(cdf.hits(), 3);
        assert!((cdf.at(0.5) - 0.0).abs() < 1e-12);
        assert!((cdf.at(1.5) - 0.25).abs() < 1e-12);
        assert!((cdf.at(2.5) - 0.5).abs() < 1e-12);
        assert!((cdf.at(100.0) - 0.75).abs() < 1e-12);
        let series = cdf.series(&[0.0, 1.0, 2.0, 10.0]);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        assert_eq!(estimate(0, 0, 0.95), Err(StatsError::NoRuns));
        assert_eq!(estimate(1, 2, 1.5), Err(StatsError::InvalidConfidence(1.5)));
        assert_eq!(estimate(1, 2, 0.0), Err(StatsError::InvalidConfidence(0.0)));
        assert_eq!(estimate_mean(&[]), Err(StatsError::NoSamples));
    }

    #[test]
    fn series_matches_pointwise_cdf_on_random_data() {
        // Deterministic LCG so the regression is reproducible offline.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 11) as f64 / (1_u64 << 53) as f64 * 100.0
        };
        let mut cdf = EmpiricalCdf::new(600);
        for _ in 0..500 {
            cdf.add(next());
        }
        let grid: Vec<f64> = (0..200).map(|_| next()).collect();
        let fast = cdf.series(&grid);
        for (i, &t) in grid.iter().enumerate() {
            assert_eq!(fast[i].0, t);
            assert!(
                (fast[i].1 - cdf.at(t)).abs() < 1e-12,
                "series disagrees with at() at t={t}"
            );
        }
    }

    #[test]
    fn z_quantile_sanity() {
        assert!((z_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((z_quantile(0.5)).abs() < 1e-9);
        assert!((z_quantile(0.025) + 1.959_964).abs() < 1e-4);
    }
}
