//! # tempo-smc — statistical model checking for stochastic timed automata
//!
//! The UPPAAL-SMC analogue of the workspace (Bozga et al., DATE 2012,
//! §II): networks of timed automata from [`tempo_ta`] are given the
//! paper's stochastic semantics — exponential delays in invariant-free
//! locations, uniform delays under invariants, shortest-delay race between
//! components — and properties are settled by simulation:
//!
//! * [`StatisticalChecker::probability`] — estimate `Pr[<=T](<> φ)` with a
//!   confidence interval;
//! * [`StatisticalChecker::hypothesis`] — Wald SPRT hypothesis testing;
//! * [`StatisticalChecker::expected`] — expected values of run functionals
//!   (`µ`/`σ` as reported by `modes` in Table I of the paper);
//! * [`StatisticalChecker::cdf`] — empirical CDFs such as Fig. 4.
//!
//! See the crate-level documentation of the items for examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod sim;
mod stats;

pub use checker::{StatisticalChecker, DEFAULT_MAX_STEPS};
pub use sim::{ConcreteState, RatePolicy, Run, RunStep, Simulator};
pub use stats::{
    chernoff_runs, estimate, estimate_mean, wald_interval, wilson_interval, EmpiricalCdf, Estimate,
    MeanEstimate, Sprt, StatsError, TestVerdict,
};
