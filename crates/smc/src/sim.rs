//! Stochastic semantics and run generation for networks of timed
//! automata, following UPPAAL-SMC (Bozga et al., DATE 2012, §II):
//! each component delays according to an exponential distribution when its
//! location is invariant-free, or uniformly over the interval permitted by
//! the invariant; the component with the shortest delay moves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tempo_dbm::Clock;
use tempo_expr::Store;
use tempo_ta::{
    AutomatonId, ChannelKind, Edge, LocationId, LocationKind, Network, StateFormula, SyncDir,
};

/// A concrete state of a network: locations, variable store and
/// real-valued clock valuations (index 0 is the reference clock, always
/// `0.0`).
#[derive(Debug, Clone)]
pub struct ConcreteState {
    /// Location of each automaton.
    pub locs: Vec<LocationId>,
    /// Discrete variable values.
    pub store: Store,
    /// Clock values; `clocks[0] == 0.0`.
    pub clocks: Vec<f64>,
    /// Global elapsed time since the start of the run.
    pub time: f64,
}

impl ConcreteState {
    /// Evaluates a [`StateFormula`] over this concrete state.
    #[must_use]
    pub fn satisfies(&self, net: &Network, f: &StateFormula) -> bool {
        match f {
            StateFormula::True => true,
            StateFormula::False => false,
            StateFormula::At(a, l) => self.locs[a.index()] == *l,
            StateFormula::Data(e) => e.eval_bool(net.decls(), &self.store, &[]).unwrap_or(false),
            StateFormula::Clock(atom) => {
                let d = self.clocks[atom.i.index()] - self.clocks[atom.j.index()];
                if atom.bound.is_inf() {
                    true
                } else if atom.bound.is_strict() {
                    d < atom.bound.constant() as f64
                } else {
                    d <= atom.bound.constant() as f64
                }
            }
            StateFormula::Not(g) => !self.satisfies(net, g),
            StateFormula::And(gs) => gs.iter().all(|g| self.satisfies(net, g)),
            StateFormula::Or(gs) => gs.iter().any(|g| self.satisfies(net, g)),
        }
    }
}

/// One step of a simulated run.
#[derive(Debug, Clone)]
pub struct RunStep {
    /// The delay taken before the action.
    pub delay: f64,
    /// A label describing the action (channel or `tau`).
    pub label: String,
    /// The `(automaton, edge, selects)` triples of the joint move that
    /// fired (sender first for synchronizations). Empty for pure delay
    /// steps, and for runs parsed back from a certificate — the
    /// independent replayer re-derives the move from the label instead
    /// of trusting this field.
    pub participants: Vec<(usize, usize, Vec<i64>)>,
    /// The state reached after the action.
    pub state: ConcreteState,
}

/// A finite prefix of a stochastic run.
#[derive(Debug, Clone)]
pub struct Run {
    /// The initial state.
    pub initial: ConcreteState,
    /// The steps taken.
    pub steps: Vec<RunStep>,
    /// Whether the run ended because no component could move (deadlock).
    pub deadlocked: bool,
}

impl Run {
    /// Total elapsed time at the end of the run.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.steps.last().map_or(0.0, |s| s.state.time)
    }

    /// The earliest time at which a state satisfying `f` is observed, if
    /// any (states are inspected after every action; the initial state
    /// counts at time `0`).
    #[must_use]
    pub fn first_hit(&self, net: &Network, f: &StateFormula) -> Option<f64> {
        if self.initial.satisfies(net, f) {
            return Some(0.0);
        }
        self.steps
            .iter()
            .find(|s| s.state.satisfies(net, f))
            .map(|s| s.state.time)
    }

    /// Whether the run satisfies the time-bounded reachability property
    /// `<>≤bound f` (UPPAAL-SMC's `Pr[<=bound](<> f)` run predicate).
    #[must_use]
    pub fn satisfies_eventually(&self, net: &Network, f: &StateFormula, bound: f64) -> bool {
        self.first_hit(net, f).is_some_and(|t| t <= bound)
    }

    /// Whether `f` holds in every observed state up to `bound`
    /// (the run predicate of `Pr[<=bound]([] f)`).
    #[must_use]
    pub fn satisfies_globally(&self, net: &Network, f: &StateFormula, bound: f64) -> bool {
        if !self.initial.satisfies(net, f) {
            return false;
        }
        self.steps
            .iter()
            .take_while(|s| s.state.time <= bound)
            .all(|s| s.state.satisfies(net, f))
    }
}

/// Network-independent rendering: one line per step with location
/// indices, the action label, the delay taken and the absolute time.
impl std::fmt::Display for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let locs = |s: &ConcreteState| {
            s.locs
                .iter()
                .map(|l| l.index().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(f, "t=0 ({})", locs(&self.initial))?;
        for step in &self.steps {
            writeln!(
                f,
                "  --{} @ +{:.3}--> t={:.3} ({})",
                step.label,
                step.delay,
                step.state.time,
                locs(&step.state)
            )?;
        }
        if self.deadlocked {
            writeln!(f, "  [deadlocked]")?;
        }
        Ok(())
    }
}

/// Exponential-delay rates per automaton location. The paper's train-gate
/// example uses rate `1 + id` for train `id` in the invariant-free `Safe`
/// location.
#[derive(Debug, Clone, Default)]
pub struct RatePolicy {
    default: f64,
    rates: HashMap<(AutomatonId, LocationId), f64>,
}

impl RatePolicy {
    /// Uniform default rate `1.0` for all invariant-free locations.
    #[must_use]
    pub fn new() -> Self {
        RatePolicy {
            default: 1.0,
            rates: HashMap::new(),
        }
    }

    /// Sets the default rate.
    #[must_use]
    pub fn with_default(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "rates must be positive");
        self.default = rate;
        self
    }

    /// Sets the rate of one location.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn set(&mut self, a: AutomatonId, l: LocationId, rate: f64) {
        assert!(rate > 0.0, "rates must be positive");
        self.rates.insert((a, l), rate);
    }

    /// The rate of a location.
    #[must_use]
    pub fn rate(&self, a: AutomatonId, l: LocationId) -> f64 {
        self.rates.get(&(a, l)).copied().unwrap_or(self.default)
    }
}

impl tempo_obs::StableDigest for RatePolicy {
    /// Structural fingerprint of the rate assignment. Explicit entries
    /// equal to the default are dropped first (they are observationally
    /// identical to unset locations) and the rest fold commutatively —
    /// `HashMap` iteration order is meaningless.
    fn digest(&self, h: &mut tempo_obs::StableHasher) {
        h.write_tag("rate-policy");
        h.write_f64(self.default);
        h.write_unordered(
            self.rates
                .iter()
                .filter(|&(_, &r)| r.to_bits() != self.default.to_bits())
                .map(|(&(a, l), &r)| tempo_obs::Fingerprint::of(&(a.index(), l.index(), r))),
        );
    }
}

/// A stochastic simulator for a network of timed automata.
///
/// ```
/// use tempo_ta::NetworkBuilder;
/// use tempo_smc::{Simulator, RatePolicy};
/// let mut b = NetworkBuilder::new();
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// a.edge(l0, l0).done();
/// a.done();
/// let net = b.build();
/// let mut sim = Simulator::new(&net, RatePolicy::new(), 42);
/// let run = sim.simulate(10.0, 1000);
/// assert!(run.duration() <= 10.0 + 1e-9 || run.deadlocked);
/// ```
#[derive(Debug)]
pub struct Simulator<'n> {
    net: &'n Network,
    rates: RatePolicy,
    rng: StdRng,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator with the given rate policy and RNG seed.
    #[must_use]
    pub fn new(net: &'n Network, rates: RatePolicy, seed: u64) -> Self {
        Simulator {
            net,
            rates,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The initial concrete state.
    #[must_use]
    pub fn initial_state(&self) -> ConcreteState {
        ConcreteState {
            locs: self.net.automata().iter().map(|a| a.initial).collect(),
            store: self.net.decls().initial_store(),
            clocks: vec![0.0; self.net.dim()],
            time: 0.0,
        }
    }

    /// Simulates one run up to `time_bound` elapsed time or `max_steps`
    /// actions, whichever comes first.
    pub fn simulate(&mut self, time_bound: f64, max_steps: usize) -> Run {
        let initial = self.initial_state();
        self.simulate_from(initial, time_bound, max_steps)
    }

    /// Simulates one run starting from an arbitrary concrete state,
    /// continuing until the *absolute* horizon `time_bound` (compared
    /// against `start.time`, which need not be zero) or `max_steps`
    /// actions. The importance-splitting engine uses this to continue
    /// trajectories from stored level-entry states; appending the
    /// returned steps to the prefix that produced `start` yields a legal
    /// run of the network from its initial state.
    pub fn simulate_from(
        &mut self,
        start: ConcreteState,
        time_bound: f64,
        max_steps: usize,
    ) -> Run {
        let initial = start;
        let mut state = initial.clone();
        let mut steps = Vec::new();
        let mut deadlocked = false;
        for _ in 0..max_steps {
            if state.time >= time_bound {
                break;
            }
            match self.step(&state, time_bound - state.time) {
                StepOutcome::Action {
                    delay,
                    label,
                    participants,
                    next,
                } => {
                    if state.time + delay > time_bound {
                        // The property horizon is reached during the delay.
                        let mut cut = state.clone();
                        let d = time_bound - state.time;
                        advance(&mut cut, d);
                        steps.push(RunStep {
                            delay: d,
                            label: "delay".to_owned(),
                            participants: Vec::new(),
                            state: cut,
                        });
                        break;
                    }
                    steps.push(RunStep {
                        delay,
                        label,
                        participants,
                        state: next.clone(),
                    });
                    state = next;
                }
                StepOutcome::Quiet { next } => {
                    // Nothing happened until the horizon: record the final
                    // delay so time-indexed properties see the full run.
                    let delay = next.time - state.time;
                    steps.push(RunStep {
                        delay,
                        label: "delay".to_owned(),
                        participants: Vec::new(),
                        state: next,
                    });
                    break;
                }
                StepOutcome::Timelock => {
                    deadlocked = true;
                    break;
                }
            }
        }
        Run {
            initial,
            steps,
            deadlocked,
        }
    }

    /// Samples one stochastic step: the racing delays, the winning
    /// component, and a uniformly chosen enabled move. When the race
    /// winner lands at an instant with no enabled action, the delay is
    /// kept and the race is re-run (UPPAAL-SMC re-samples). Re-racing
    /// stops at `budget` elapsed time ([`StepOutcome::Quiet`]);
    /// [`StepOutcome::Timelock`] signals that time is blocked with no
    /// action enabled.
    fn step(&mut self, state: &ConcreteState, budget: f64) -> StepOutcome {
        let mut current = state.clone();
        let mut total_delay = 0.0_f64;
        let mut stalled = 0_u32;
        loop {
            // Urgency: if any automaton is urgent/committed, force delay 0.
            let urgent = current
                .locs
                .iter()
                .zip(self.net.automata())
                .any(|(&l, a)| a.locations[l.index()].kind != LocationKind::Normal);
            // Sample each automaton's intended delay.
            let mut best: Option<(usize, f64)> = None;
            for (ai, _) in self.net.automata().iter().enumerate() {
                let delay = if urgent {
                    0.0
                } else {
                    match self.max_invariant_delay(&current, ai) {
                        Some(ub) => self.rng.gen_range(0.0..=ub.max(0.0)),
                        None => {
                            let rate = self.rates.rate(AutomatonId(ai), current.locs[ai]);
                            // Inverse-transform sampling of Exp(rate).
                            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                            -u.ln() / rate
                        }
                    }
                };
                if best.is_none_or(|(_, d)| delay < d) {
                    best = Some((ai, delay));
                }
            }
            let Some((winner, delay)) = best else {
                return StepOutcome::Timelock;
            };
            if total_delay + delay >= budget {
                // The horizon passes during this quiet delay: advance
                // exactly to the budget's end.
                let mut cut = current.clone();
                advance(&mut cut, budget - total_delay);
                return StepOutcome::Quiet { next: cut };
            }
            let mut advanced = current.clone();
            advance(&mut advanced, delay);
            // The race winner initiates the next action (the paper: "the
            // train picking the shortest delay moves"); if it has nothing
            // to initiate, any enabled component may move instead.
            let all = self.enabled_moves(&advanced);
            let winners: Vec<Move> = all
                .iter()
                .filter(|m| {
                    m.participants
                        .first()
                        .is_some_and(|(ai, _, _)| *ai == winner)
                })
                .cloned()
                .collect();
            let moves = if winners.is_empty() { all } else { winners };
            if !moves.is_empty() {
                if let Some((label, participants, next)) = self.pick(&moves, &advanced) {
                    return StepOutcome::Action {
                        delay: total_delay + delay,
                        label,
                        participants,
                        next,
                    };
                }
            }
            // No action at this instant: keep the delay and re-race.
            if delay <= f64::EPSILON {
                stalled += 1;
                if stalled > 100 {
                    return StepOutcome::Timelock;
                }
            } else {
                stalled = 0;
            }
            total_delay += delay;
            current = advanced;
        }
    }

    #[allow(clippy::type_complexity)]
    fn pick(
        &mut self,
        moves: &[Move],
        state: &ConcreteState,
    ) -> Option<(String, Vec<(usize, usize, Vec<i64>)>, ConcreteState)> {
        let mv = &moves[self.rng.gen_range(0..moves.len())];
        let next = self.apply(state, mv)?;
        Some((mv.label.clone(), mv.participants.clone(), next))
    }

    /// The maximum delay automaton `ai` may take before violating its own
    /// invariant, or `None` if unbounded.
    fn max_invariant_delay(&self, state: &ConcreteState, ai: usize) -> Option<f64> {
        let a = &self.net.automata()[ai];
        let loc = &a.locations[state.locs[ai].index()];
        let mut ub: Option<f64> = None;
        for atom in &loc.invariant {
            if atom.bound.is_inf() {
                continue;
            }
            // Only upper bounds x - 0 ≺ c constrain delay.
            if !atom.i.is_ref() && atom.j.is_ref() {
                let slack = atom.bound.constant() as f64 - state.clocks[atom.i.index()];
                ub = Some(ub.map_or(slack, |u: f64| u.min(slack)));
            }
        }
        ub.map(|u| u.max(0.0))
    }

    /// All action moves enabled at the given concrete state.
    fn enabled_moves(&self, state: &ConcreteState) -> Vec<Move> {
        let mut moves = Vec::new();
        let committed: Vec<bool> = state
            .locs
            .iter()
            .zip(self.net.automata())
            .map(|(&l, a)| a.locations[l.index()].kind == LocationKind::Committed)
            .collect();
        let any_committed = committed.iter().any(|&c| c);
        for (ai, a) in self.net.automata().iter().enumerate() {
            for (ei, e) in a.edges.iter().enumerate() {
                if e.from != state.locs[ai] {
                    continue;
                }
                for sel in select_values(&e.selects) {
                    if !self.edge_enabled(state, e, &sel) {
                        continue;
                    }
                    match &e.sync {
                        None => {
                            if any_committed && !committed[ai] {
                                continue;
                            }
                            moves.push(Move {
                                label: "tau".to_owned(),
                                participants: vec![(ai, ei, sel.clone())],
                            });
                        }
                        Some(sync) if sync.dir == SyncDir::Send => {
                            let Ok(idx) = sync.index.eval(self.net.decls(), &state.store, &sel)
                            else {
                                continue;
                            };
                            let ch = &self.net.channels()[sync.channel.index()];
                            match ch.kind {
                                ChannelKind::Binary => {
                                    for (bi, ri, rsel) in
                                        self.matching_receivers(state, ai, sync.channel, idx)
                                    {
                                        if any_committed && !committed[ai] && !committed[bi] {
                                            continue;
                                        }
                                        moves.push(Move {
                                            label: format!("{}[{}]", ch.name, idx),
                                            participants: vec![
                                                (ai, ei, sel.clone()),
                                                (bi, ri, rsel),
                                            ],
                                        });
                                    }
                                }
                                ChannelKind::Broadcast => {
                                    if any_committed && !committed[ai] {
                                        continue;
                                    }
                                    let mut participants = vec![(ai, ei, sel.clone())];
                                    for (bi, ri, rsel) in
                                        self.matching_receivers(state, ai, sync.channel, idx)
                                    {
                                        // One receiver edge per automaton
                                        // (first enabled wins; duplicates
                                        // would need combinatorics rarely
                                        // used in SMC models).
                                        if participants.iter().all(|(pi, _, _)| *pi != bi) {
                                            participants.push((bi, ri, rsel));
                                        }
                                    }
                                    moves.push(Move {
                                        label: format!("{}[{}]!!", ch.name, idx),
                                        participants,
                                    });
                                }
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        moves
    }

    fn matching_receivers(
        &self,
        state: &ConcreteState,
        sender: usize,
        channel: tempo_ta::ChannelId,
        idx: i64,
    ) -> Vec<(usize, usize, Vec<i64>)> {
        let mut out = Vec::new();
        for (bi, b) in self.net.automata().iter().enumerate() {
            if bi == sender {
                continue;
            }
            for (ri, r) in b.edges.iter().enumerate() {
                if r.from != state.locs[bi] {
                    continue;
                }
                let Some(rs) = &r.sync else { continue };
                if rs.dir != SyncDir::Recv || rs.channel != channel {
                    continue;
                }
                for rsel in select_values(&r.selects) {
                    if rs.index.eval(self.net.decls(), &state.store, &rsel) == Ok(idx)
                        && self.edge_enabled(state, r, &rsel)
                    {
                        out.push((bi, ri, rsel));
                    }
                }
            }
        }
        out
    }

    fn edge_enabled(&self, state: &ConcreteState, e: &Edge, sel: &[i64]) -> bool {
        if !e
            .guard_data
            .eval_bool(self.net.decls(), &state.store, sel)
            .unwrap_or(false)
        {
            return false;
        }
        e.guard_clocks.iter().all(|atom| {
            let d = state.clocks[atom.i.index()] - state.clocks[atom.j.index()];
            if atom.bound.is_inf() {
                true
            } else if atom.bound.is_strict() {
                d < atom.bound.constant() as f64
            } else {
                d <= atom.bound.constant() as f64 + 1e-12
            }
        })
    }

    /// Applies a joint move, returning the successor state (or `None` if
    /// an update fails, which disables the move).
    fn apply(&self, state: &ConcreteState, mv: &Move) -> Option<ConcreteState> {
        let mut next = state.clone();
        for (ai, ei, sel) in &mv.participants {
            let e = &self.net.automata()[*ai].edges[*ei];
            for (clock, value) in &e.resets {
                let v = value.eval(self.net.decls(), &next.store, sel).ok()?;
                next.clocks[clock.index()] = v as f64;
            }
            e.update
                .execute(self.net.decls(), &mut next.store, sel)
                .ok()?;
            next.locs[*ai] = e.to;
        }
        // Reject moves that violate target invariants.
        for (a, &l) in self.net.automata().iter().zip(&next.locs) {
            for atom in &a.locations[l.index()].invariant {
                let d = next.clocks[atom.i.index()] - next.clocks[atom.j.index()];
                let ok = if atom.bound.is_inf() {
                    true
                } else if atom.bound.is_strict() {
                    d < atom.bound.constant() as f64
                } else {
                    d <= atom.bound.constant() as f64 + 1e-12
                };
                if !ok {
                    return None;
                }
            }
        }
        Some(next)
    }
}

/// Result of sampling one stochastic step.
enum StepOutcome {
    /// An action fired after `delay`.
    Action {
        delay: f64,
        label: String,
        participants: Vec<(usize, usize, Vec<i64>)>,
        next: ConcreteState,
    },
    /// Nothing fired before the time budget ran out; `next` is the state
    /// advanced to the budget's end.
    Quiet { next: ConcreteState },
    /// Time is blocked and no action is enabled.
    Timelock,
}

/// A joint move: the participating `(automaton, edge, selects)` triples
/// (sender first for synchronizations).
#[derive(Debug, Clone)]
struct Move {
    label: String,
    participants: Vec<(usize, usize, Vec<i64>)>,
}

fn advance(state: &mut ConcreteState, d: f64) {
    for (i, c) in state.clocks.iter_mut().enumerate() {
        if i != Clock::REF.index() {
            *c += d;
        }
    }
    state.time += d;
}

fn select_values(ranges: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = vec![Vec::new()];
    for &(lo, hi) in ranges {
        let mut next = Vec::new();
        for prefix in &out {
            for v in lo..=hi {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    fn ping_pong() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let c = b.channel("c");
        let mut p = b.automaton("Ping");
        let p0 = p.location_with_invariant("P0", vec![ClockAtom::le(x, 2)]);
        let p1 = p.location("P1");
        p.edge(p0, p1).send(c).reset(x, 0).done();
        p.edge(p1, p0).recv(c).done();
        p.done();
        let mut q = b.automaton("Pong");
        let q0 = q.location("Q0");
        q.edge(q0, q0).recv(c).done();
        q.edge(q0, q0).send(c).done();
        q.done();
        b.build()
    }

    #[test]
    fn runs_respect_time_bound() {
        let net = ping_pong();
        let mut sim = Simulator::new(&net, RatePolicy::new(), 7);
        for _ in 0..20 {
            let run = sim.simulate(50.0, 10_000);
            assert!(run.duration() <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let net = ping_pong();
        let mut s1 = Simulator::new(&net, RatePolicy::new(), 123);
        let mut s2 = Simulator::new(&net, RatePolicy::new(), 123);
        let r1 = s1.simulate(20.0, 1000);
        let r2 = s2.simulate(20.0, 1000);
        assert_eq!(r1.steps.len(), r2.steps.len());
        assert!((r1.duration() - r2.duration()).abs() < 1e-12);
    }

    #[test]
    fn invariant_bounds_delays() {
        // Single automaton with invariant x <= 3 and a reset loop: the
        // clock must never exceed 3.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 3)]);
        a.edge(l0, l0).reset(x, 0).done();
        a.done();
        let net = b.build();
        let mut sim = Simulator::new(&net, RatePolicy::new(), 5);
        let run = sim.simulate(100.0, 10_000);
        for step in &run.steps {
            assert!(step.state.clocks[1] <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn first_hit_and_eventually() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 1)]);
        let l1 = a.location("L1");
        a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 0)).done();
        let aid = a.done();
        let net = b.build();
        let mut sim = Simulator::new(&net, RatePolicy::new(), 1);
        let run = sim.simulate(10.0, 100);
        let goal = StateFormula::at(aid, l1);
        let hit = run
            .first_hit(&net, &goal)
            .expect("L1 reached within 1 time unit");
        assert!(hit <= 1.0 + 1e-9);
        assert!(run.satisfies_eventually(&net, &goal, 2.0));
        assert!(run.satisfies_globally(&net, &StateFormula::True, 10.0));
    }

    #[test]
    fn exponential_rates_affect_race() {
        // Two automata race to a flag; the one with the much higher rate
        // should win most of the time.
        let mut b = NetworkBuilder::new();
        let winner = b.decls_mut().int("winner", 0, 2);
        let mk = |b: &mut NetworkBuilder, name: &str, id: i64| {
            let mut a = b.automaton(name);
            let l0 = a.location("L0");
            let l1 = a.location("L1");
            a.edge(l0, l1)
                .guard_data(tempo_expr::Expr::var(winner).eq(tempo_expr::Expr::konst(0)))
                .update(tempo_expr::Stmt::assign(
                    winner,
                    tempo_expr::Expr::konst(id),
                ))
                .done();
            (a.done(), l0)
        };
        let (fast, fast_l0) = mk(&mut b, "Fast", 1);
        let (slow, slow_l0) = mk(&mut b, "Slow", 2);
        let net = b.build();
        let mut rates = RatePolicy::new();
        rates.set(fast, fast_l0, 50.0);
        rates.set(slow, slow_l0, 0.5);
        let mut sim = Simulator::new(&net, rates, 99);
        let mut fast_wins = 0;
        for _ in 0..100 {
            let run = sim.simulate(1000.0, 100);
            let final_store = run.steps.last().map(|s| &s.state.store);
            if let Some(st) = final_store {
                if st.get(winner) == 1 {
                    fast_wins += 1;
                }
            }
        }
        assert!(
            fast_wins > 80,
            "fast component won only {fast_wins}/100 races"
        );
    }
}
