//! The statistical model checker: ties the stochastic simulator to the
//! estimators, mirroring UPPAAL-SMC's query interface
//! (`Pr[<=T](<> φ)`, hypothesis tests, expected values, CDF plots).

use crate::sim::{RatePolicy, Run, Simulator};
use crate::stats::{
    estimate, estimate_mean, EmpiricalCdf, Estimate, MeanEstimate, Sprt, TestVerdict,
};
use tempo_conc::{derive_stream_seed, run_workers, split_budget, ParallelConfig};
use tempo_ta::{Network, StateFormula};

/// Default cap on the number of actions per simulated run.
pub const DEFAULT_MAX_STEPS: usize = 100_000;

/// A statistical model checker bound to a network and rate policy.
///
/// ```
/// use tempo_ta::NetworkBuilder;
/// use tempo_smc::{RatePolicy, StatisticalChecker};
/// use tempo_ta::StateFormula;
///
/// let mut b = NetworkBuilder::new();
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// let l1 = a.location("L1");
/// a.edge(l0, l1).done();
/// let aid = a.done();
/// let net = b.build();
///
/// let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 1);
/// let est = smc.probability(&StateFormula::at(aid, l1), 100.0, 200, 0.95);
/// assert!(est.mean > 0.9); // the only move leads to L1
/// ```
#[derive(Debug)]
pub struct StatisticalChecker<'n> {
    net: &'n Network,
    sim: Simulator<'n>,
    rates: RatePolicy,
    seed: u64,
    threads: usize,
    /// Batch counter: parallel estimators derive fresh per-worker RNG
    /// streams for every batch so successive queries stay statistically
    /// independent while remaining reproducible from the base seed.
    epoch: u64,
    max_steps: usize,
}

impl<'n> StatisticalChecker<'n> {
    /// Creates a checker with the given rate policy and RNG seed
    /// (single-threaded simulation).
    #[must_use]
    pub fn new(net: &'n Network, rates: RatePolicy, seed: u64) -> Self {
        StatisticalChecker {
            net,
            sim: Simulator::new(net, rates.clone(), seed),
            rates,
            seed,
            threads: 1,
            epoch: 0,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Overrides the per-run step cap.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Partition fixed-budget estimators (`probability`, `expected`, `cdf`,
    /// `compare`, `count_globally`) across `threads` workers with
    /// per-worker RNG streams derived from the seed.
    ///
    /// Determinism: for a fixed seed, thread count, and query sequence, the
    /// results are bitwise-reproducible — per-worker streams are derived
    /// purely from `(seed, batch, worker)` and merged in worker order. The
    /// sequential SPRT (`hypothesis`) always runs single-threaded.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use the worker count resolved from a [`ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `runs` simulations of horizon `bound` split across the worker
    /// pool, mapping each run through `eval` and collecting per-worker
    /// outputs in worker order.
    fn batch<T, F>(&mut self, bound: f64, runs: usize, eval: F) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(&Run) -> T + std::marker::Sync,
    {
        self.epoch += 1;
        let epoch_seed = self
            .seed
            .wrapping_add(self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let chunks = split_budget(runs, self.threads);
        let (net, rates, max_steps) = (self.net, &self.rates, self.max_steps);
        run_workers(self.threads, |worker| {
            let mut sim =
                Simulator::new(net, rates.clone(), derive_stream_seed(epoch_seed, worker));
            (0..chunks[worker])
                .map(|_| eval(&sim.simulate(bound, max_steps)))
                .collect()
        })
    }

    /// Estimates `Pr[<=bound](<> goal)` from `runs` simulations with a
    /// Wilson confidence interval at level `confidence`.
    pub fn probability(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        runs: usize,
        confidence: f64,
    ) -> Estimate {
        if self.threads > 1 {
            let net = self.net;
            let hits = self.batch(bound, runs, |run| {
                run.satisfies_eventually(net, goal, bound)
            });
            let successes = hits
                .iter()
                .map(|chunk| chunk.iter().filter(|&&hit| hit).count())
                .sum();
            return estimate(successes, runs, confidence);
        }
        let mut successes = 0;
        for _ in 0..runs {
            let run = self.sim.simulate(bound, self.max_steps);
            if run.satisfies_eventually(self.net, goal, bound) {
                successes += 1;
            }
        }
        estimate(successes, runs, confidence)
    }

    /// Sequential hypothesis test of `Pr[<=bound](<> goal) ≥ theta + delta`
    /// vs `≤ theta - delta` with strength `(alpha, beta)`; runs until a
    /// decision or `max_runs`.
    #[allow(clippy::too_many_arguments)]
    pub fn hypothesis(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        theta: f64,
        delta: f64,
        alpha: f64,
        beta: f64,
        max_runs: usize,
    ) -> (TestVerdict, usize) {
        let mut sprt = Sprt::new(theta, delta, alpha, beta);
        while sprt.verdict() == TestVerdict::Undecided && sprt.observations() < max_runs {
            let run = self.sim.simulate(bound, self.max_steps);
            sprt.observe(run.satisfies_eventually(self.net, goal, bound));
        }
        (sprt.verdict(), sprt.observations())
    }

    /// Estimates the expected value of `value(run)` over `runs`
    /// simulations of horizon `bound` (e.g. completion time), as `modes`
    /// reports for `Emax` in Table I of the paper.
    pub fn expected<F>(&mut self, bound: f64, runs: usize, value: F) -> MeanEstimate
    where
        F: Fn(&Run) -> f64 + std::marker::Sync,
    {
        if self.threads > 1 {
            let samples: Vec<f64> = self
                .batch(bound, runs, value)
                .into_iter()
                .flatten()
                .collect();
            return estimate_mean(&samples);
        }
        let samples: Vec<f64> = (0..runs)
            .map(|_| value(&self.sim.simulate(bound, self.max_steps)))
            .collect();
        estimate_mean(&samples)
    }

    /// Builds the empirical CDF of the first time `goal` is reached, over
    /// `runs` simulations of horizon `bound` — the data behind Fig. 4 of
    /// the paper.
    pub fn cdf(&mut self, goal: &StateFormula, bound: f64, runs: usize) -> EmpiricalCdf {
        if self.threads > 1 {
            let net = self.net;
            let hit_times = self.batch(bound, runs, |run| {
                run.first_hit(net, goal).filter(|&t| t <= bound)
            });
            let mut cdf = EmpiricalCdf::new(runs);
            for t in hit_times.into_iter().flatten().flatten() {
                cdf.add(t);
            }
            return cdf;
        }
        let mut cdf = EmpiricalCdf::new(runs);
        for _ in 0..runs {
            let run = self.sim.simulate(bound, self.max_steps);
            if let Some(t) = run.first_hit(self.net, goal) {
                if t <= bound {
                    cdf.add(t);
                }
            }
        }
        cdf
    }

    /// Compares two time-bounded reachability probabilities
    /// (UPPAAL-SMC's `Pr[...](...) >= Pr[...](...)` queries) by paired
    /// sampling: both run predicates are evaluated on the *same*
    /// simulated runs, which cancels run-to-run variance.
    ///
    /// Returns `Ordering::Greater`/`Less` when the difference of the
    /// estimates exceeds the half-width `indifference`, `Ordering::Equal`
    /// otherwise.
    pub fn compare(
        &mut self,
        goal_a: &StateFormula,
        goal_b: &StateFormula,
        bound: f64,
        runs: usize,
        indifference: f64,
    ) -> (std::cmp::Ordering, f64, f64) {
        let mut hits_a = 0_usize;
        let mut hits_b = 0_usize;
        if self.threads > 1 {
            let net = self.net;
            let pairs = self.batch(bound, runs, |run| {
                (
                    run.satisfies_eventually(net, goal_a, bound),
                    run.satisfies_eventually(net, goal_b, bound),
                )
            });
            for (a, b) in pairs.into_iter().flatten() {
                hits_a += usize::from(a);
                hits_b += usize::from(b);
            }
        } else {
            for _ in 0..runs {
                let run = self.sim.simulate(bound, self.max_steps);
                if run.satisfies_eventually(self.net, goal_a, bound) {
                    hits_a += 1;
                }
                if run.satisfies_eventually(self.net, goal_b, bound) {
                    hits_b += 1;
                }
            }
        }
        let pa = hits_a as f64 / runs as f64;
        let pb = hits_b as f64 / runs as f64;
        let ord = if pa - pb > indifference {
            std::cmp::Ordering::Greater
        } else if pb - pa > indifference {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        };
        (ord, pa, pb)
    }

    /// Counts how many of `runs` simulations satisfy the *global*
    /// (safety) run predicate `[]≤bound safe` — used by the paper's
    /// Table I rows TA1/TA2 under `modes` ("all 10k runs satisfied TA1").
    pub fn count_globally(&mut self, safe: &StateFormula, bound: f64, runs: usize) -> usize {
        if self.threads > 1 {
            let net = self.net;
            let safe_runs = self.batch(bound, runs, |run| run.satisfies_globally(net, safe, bound));
            return safe_runs
                .iter()
                .map(|chunk| chunk.iter().filter(|&&ok| ok).count())
                .sum();
        }
        (0..runs)
            .filter(|_| {
                let run = self.sim.simulate(bound, self.max_steps);
                run.satisfies_globally(self.net, safe, bound)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    /// A coin automaton: from Flip, go to Heads or Tails within 1 time
    /// unit, uniformly at random among the two enabled edges.
    fn coin_net() -> (Network, tempo_ta::AutomatonId, tempo_ta::LocationId) {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Coin");
        let flip = a.location_with_invariant("Flip", vec![ClockAtom::le(x, 1)]);
        let heads = a.location("Heads");
        let tails = a.location("Tails");
        a.edge(flip, heads).done();
        a.edge(flip, tails).done();
        let aid = a.done();
        (b.build(), aid, heads)
    }

    #[test]
    fn coin_probability_near_half() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 11);
        let est = smc.probability(&StateFormula::at(aid, heads), 10.0, 2000, 0.99);
        assert!(
            est.lower < 0.5 && 0.5 < est.upper,
            "99% CI {est} should contain 0.5"
        );
    }

    #[test]
    fn hypothesis_testing_decides() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 11);
        // p = 0.5, test vs 0.1: accept H0 (p >= 0.2).
        let (verdict, _) = smc.hypothesis(
            &StateFormula::at(aid, heads),
            10.0,
            0.1,
            0.05,
            0.01,
            0.01,
            10_000,
        );
        assert_eq!(verdict, TestVerdict::AcceptH0);
        // p = 0.5, test vs 0.9: accept H1 (p <= 0.85).
        let (verdict, _) = smc.hypothesis(
            &StateFormula::at(aid, heads),
            10.0,
            0.9,
            0.05,
            0.01,
            0.01,
            10_000,
        );
        assert_eq!(verdict, TestVerdict::AcceptH1);
    }

    #[test]
    fn expected_duration_bounded_by_invariant() {
        let (net, _, _) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 3);
        let m = smc.expected(100.0, 500, |run| run.steps.first().map_or(0.0, |s| s.delay));
        // First delay is uniform on [0,1]: mean 0.5.
        assert!((m.mean - 0.5).abs() < 0.08, "mean first delay {m}");
    }

    #[test]
    fn cdf_reaches_one_for_certain_events() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 4);
        let done = StateFormula::or(vec![
            StateFormula::at(aid, heads),
            StateFormula::not(StateFormula::at(aid, heads)),
        ]);
        // Trivial property: CDF hits 1 at time 0.
        let cdf = smc.cdf(&done, 5.0, 100);
        assert!((cdf.at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_orders_probabilities() {
        // Reaching "flipped at all" is more likely than reaching heads.
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 6);
        let done = StateFormula::or(vec![
            StateFormula::at(aid, heads),
            StateFormula::at(aid, tempo_ta::LocationId(2)),
        ]);
        let (ord, pa, pb) = smc.compare(&done, &StateFormula::at(aid, heads), 10.0, 600, 0.1);
        assert_eq!(ord, std::cmp::Ordering::Greater, "pa={pa} pb={pb}");
        // A property against itself is Equal.
        let (ord, _, _) = smc.compare(&done, &done, 10.0, 200, 0.05);
        assert_eq!(ord, std::cmp::Ordering::Equal);
    }

    #[test]
    fn globally_counts_safe_runs() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 5);
        // "Not heads" globally holds for about half of the runs.
        let safe = StateFormula::not(StateFormula::at(aid, heads));
        let n = smc.count_globally(&safe, 10.0, 400);
        assert!((120..=280).contains(&n), "safe runs: {n}/400");
    }
}
