//! The statistical model checker: ties the stochastic simulator to the
//! estimators, mirroring UPPAAL-SMC's query interface
//! (`Pr[<=T](<> φ)`, hypothesis tests, expected values, CDF plots).

use crate::sim::{RatePolicy, Run, Simulator};
use crate::stats::{
    estimate, estimate_mean, EmpiricalCdf, Estimate, MeanEstimate, Sprt, StatsError, TestVerdict,
};
use tempo_conc::{derive_stream_seed, run_workers, split_budget, ParallelConfig};
use tempo_obs::{Budget, Governor, Outcome, RunReport};
use tempo_ta::flow::FlowMetrics;
use tempo_ta::{ClockReduction, Network, StateFormula};

/// [`RunReport`] for a simulation batch: the run counter, the clock-space
/// dimensions and wall time are the meaningful fields for statistical
/// engines.
fn sim_report(gov: &Governor, completed: usize, dim: usize, model_dim: usize) -> RunReport {
    RunReport {
        runs_simulated: completed as u64,
        dbm_dim: dim as u64,
        dbm_dim_model: model_dim as u64,
        wall_time: gov.elapsed(),
        ..RunReport::default()
    }
}

/// Resolves a per-query active-clock reduction: the network to simulate
/// and the property mapped into its clock space.
///
/// Dead clocks gate no delay bound and no guard, so simulators driven by
/// the same seeds produce identical discrete trajectories over the
/// reduced network — estimates are byte-identical while each state
/// carries fewer clocks. Only the parallel batch path uses this (it
/// builds fresh per-worker simulators every batch); the sequential path
/// keeps the checker's persistent simulator, and thus its RNG stream, on
/// the full network.
fn reduced_query<'a>(
    reduction: &'a ClockReduction,
    full: &'a Network,
    prop: &StateFormula,
) -> (&'a Network, StateFormula) {
    if reduction.is_reduced() {
        // `reduced_with` keeps every clock read by any template or by the
        // atoms it was given, so a property mapped against the reduction
        // computed from its own atoms always survives. A `None` here
        // means the reduction was computed for a *different* atom set
        // (caller mismatch); simulating the full network is always
        // correct, so fall back instead of panicking.
        if let Some(mapped) = reduction.map_formula(prop) {
            return (reduction.network(), mapped);
        }
    }
    (full, prop.clone())
}

/// Default cap on the number of actions per simulated run.
pub const DEFAULT_MAX_STEPS: usize = 100_000;

/// A statistical model checker bound to a network and rate policy.
///
/// ```
/// use tempo_ta::NetworkBuilder;
/// use tempo_smc::{RatePolicy, StatisticalChecker};
/// use tempo_ta::StateFormula;
///
/// let mut b = NetworkBuilder::new();
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// let l1 = a.location("L1");
/// a.edge(l0, l1).done();
/// let aid = a.done();
/// let net = b.build();
///
/// let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 1);
/// let est = smc.probability(&StateFormula::at(aid, l1), 100.0, 200, 0.95);
/// assert!(est.mean > 0.9); // the only move leads to L1
/// ```
#[derive(Debug)]
pub struct StatisticalChecker<'n> {
    net: &'n Network,
    sim: Simulator<'n>,
    rates: RatePolicy,
    seed: u64,
    threads: usize,
    /// Batch counter: parallel estimators derive fresh per-worker RNG
    /// streams for every batch so successive queries stay statistically
    /// independent while remaining reproducible from the base seed.
    epoch: u64,
    max_steps: usize,
    flow: bool,
}

impl<'n> StatisticalChecker<'n> {
    /// Creates a checker with the given rate policy and RNG seed
    /// (single-threaded simulation).
    #[must_use]
    pub fn new(net: &'n Network, rates: RatePolicy, seed: u64) -> Self {
        StatisticalChecker {
            net,
            sim: Simulator::new(net, rates.clone(), seed),
            rates,
            seed,
            threads: 1,
            epoch: 0,
            max_steps: DEFAULT_MAX_STEPS,
            flow: true,
        }
    }

    /// Disables query-directed slicing on the parallel batch path,
    /// simulating the unsliced network. Estimates are byte-identical
    /// either way — this switch exists for differential testing.
    #[must_use]
    pub fn without_flow(mut self) -> Self {
        self.flow = false;
        self
    }

    /// Query-directed slicing for the parallel batch path: provably
    /// disabled edges are never enabled, so per-batch simulators on the
    /// sliced network enumerate identical enabled-move lists, consume
    /// identical RNG streams and produce byte-identical trajectories,
    /// while active-clock reduction gets to remove the clocks those
    /// edges guarded. The sequential path keeps the checker's
    /// persistent full-network simulator, exactly as it does for the
    /// clock reduction itself.
    fn sliced_base(&self) -> (Option<tempo_ta::Slice>, FlowMetrics) {
        let mut metrics = FlowMetrics::default();
        let sliced = (self.flow && self.threads > 1).then(|| tempo_ta::slice(self.net));
        if let Some(s) = &sliced {
            metrics.sliced_edges = s.disabled_edges;
            metrics.vars_narrowed = s.vars_narrowed;
            metrics.sliced_vars = s.dead_vars.len() as u64;
        }
        (sliced, metrics)
    }

    /// Overrides the per-run step cap.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Statically checks a network before simulating it: the lint rules
    /// of `tempo-lint` plus the digital-clocks closedness requirements
    /// of the simulator. On success returns the non-blocking findings
    /// (warnings) for display.
    ///
    /// # Errors
    ///
    /// Returns a typed [`LintError`](tempo_lint::LintError) — never
    /// panics — when the model has error-level findings (or any
    /// finding under [`LintConfig::strict`](tempo_lint::LintConfig)).
    pub fn check_first(
        net: &Network,
        config: &tempo_lint::LintConfig,
    ) -> Result<tempo_lint::LintReport, tempo_lint::LintError> {
        let mut report = tempo_lint::check_network(net);
        if let Err(e) = tempo_ta::DigitalExplorer::try_new(net) {
            let lint: tempo_lint::LintError = e.into();
            report.diagnostics.extend(lint.diagnostics);
        }
        report.into_result(config)
    }

    /// Partition fixed-budget estimators (`probability`, `expected`, `cdf`,
    /// `compare`, `count_globally`) across `threads` workers with
    /// per-worker RNG streams derived from the seed.
    ///
    /// Determinism: for a fixed seed, thread count, and query sequence, the
    /// results are bitwise-reproducible — per-worker streams are derived
    /// purely from `(seed, batch, worker)` and merged in worker order. The
    /// sequential SPRT (`hypothesis`) always runs single-threaded.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use the worker count resolved from a [`ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `runs` simulations of horizon `bound` split across the worker
    /// pool, mapping each run through `eval` and collecting per-worker
    /// outputs in worker order.
    /// Runs are cut off mid-batch only by the wall-clock deadline; the run
    /// budget is applied upfront (see [`Self::effective_runs`]) so that a
    /// fixed `(seed, threads, query)` triple stays bitwise-reproducible.
    fn batch<T, F>(
        &mut self,
        net: &Network,
        bound: f64,
        runs: usize,
        gov: &Governor,
        eval: F,
    ) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(&Run) -> T + std::marker::Sync,
    {
        self.epoch += 1;
        let epoch_seed = self
            .seed
            .wrapping_add(self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let chunks = split_budget(runs, self.threads);
        let (rates, max_steps) = (&self.rates, self.max_steps);
        run_workers(self.threads, |worker| {
            let mut sim =
                Simulator::new(net, rates.clone(), derive_stream_seed(epoch_seed, worker));
            let mut out = Vec::with_capacity(chunks[worker]);
            for _ in 0..chunks[worker] {
                if !gov.check_time() {
                    break;
                }
                out.push(eval(&sim.simulate(bound, max_steps)));
                let _ = gov.charge_run();
            }
            out
        })
    }

    /// Caps a requested run count by the governor's remaining run budget.
    fn effective_runs(runs: usize, gov: &Governor) -> usize {
        runs.min(usize::try_from(gov.runs_remaining()).unwrap_or(usize::MAX))
    }

    /// Latches run-budget exhaustion when fewer runs completed than were
    /// requested and no other limit already tripped.
    fn settle_runs(gov: &Governor, completed: usize, requested: usize) {
        if completed < requested && !gov.is_exhausted() {
            let _ = gov.charge_run();
        }
    }

    /// Estimates `Pr[<=bound](<> goal)` from `runs` simulations with a
    /// Wilson confidence interval at level `confidence`.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0` or `confidence` is outside `(0, 1)`; use
    /// [`Self::probability_governed`] for the non-panicking API.
    pub fn probability(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        runs: usize,
        confidence: f64,
    ) -> Estimate {
        self.probability_governed(goal, bound, runs, confidence, &Budget::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
            .expect("an unlimited budget without a cancel token cannot stop short")
    }

    /// Estimates `Pr[<=bound](<> goal)` under a resource [`Budget`].
    ///
    /// On run-budget or deadline exhaustion the partial answer is the
    /// Wilson estimate over the runs that did complete, or `None` when no
    /// run completed. With an unlimited budget the result is
    /// bit-identical to [`Self::probability`].
    ///
    /// # Errors
    ///
    /// Returns a [`StatsError`] when `runs == 0` or `confidence` is
    /// outside `(0, 1)`, and [`StatsError::Cancelled`] when the budget's
    /// cancellation token trips before the first run completes.
    pub fn probability_governed(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        runs: usize,
        confidence: f64,
        budget: &Budget,
    ) -> Result<Outcome<Option<Estimate>>, StatsError> {
        if runs == 0 {
            return Err(StatsError::NoRuns);
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(StatsError::InvalidConfidence(confidence));
        }
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        let mut successes = 0_usize;
        let mut completed = 0_usize;
        let (sliced, metrics) = self.sliced_base();
        let base: &Network = sliced.as_ref().map_or(self.net, |s| &s.net);
        let reduction = base.reduced_with(&goal.clock_atoms());
        let mut dim = self.net.dim();
        if self.threads > 1 {
            let (net, goal) = reduced_query(&reduction, base, goal);
            dim = net.dim();
            let hits = self.batch(net, bound, effective, &gov, |run| {
                run.satisfies_eventually(net, &goal, bound)
            });
            for chunk in &hits {
                completed += chunk.len();
                successes += chunk.iter().filter(|&&hit| hit).count();
            }
        } else {
            for _ in 0..effective {
                if !gov.check_time() || !gov.charge_run() {
                    break;
                }
                let run = self.sim.simulate(bound, self.max_steps);
                completed += 1;
                if run.satisfies_eventually(self.net, goal, bound) {
                    successes += 1;
                }
            }
        }
        Self::settle_runs(&gov, completed, runs);
        let est = if completed > 0 {
            Some(estimate(successes, completed, confidence)?)
        } else {
            Self::check_cancelled(&gov)?;
            None
        };
        let report = metrics.stamp(sim_report(&gov, completed, dim, self.net.dim()));
        Ok(gov.finish(est, report))
    }

    /// Surfaces cancellation-before-any-data as the typed
    /// [`StatsError::Cancelled`] — callers holding the [`CancelToken`]
    /// (job runners, service shutdown) asked for the abort, so an empty
    /// `Exhausted` outcome would only make them second-guess the
    /// estimator. Mid-batch cancellation still yields a partial estimate
    /// via the ordinary `Exhausted` path.
    ///
    /// [`CancelToken`]: tempo_obs::CancelToken
    fn check_cancelled(gov: &Governor) -> Result<(), StatsError> {
        if gov.exhausted() == Some(tempo_obs::ExhaustionReason::Cancelled) {
            return Err(StatsError::Cancelled);
        }
        Ok(())
    }

    /// Sequential hypothesis test of `Pr[<=bound](<> goal) ≥ theta + delta`
    /// vs `≤ theta - delta` with strength `(alpha, beta)`; runs until a
    /// decision or `max_runs`.
    #[allow(clippy::too_many_arguments)]
    pub fn hypothesis(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        theta: f64,
        delta: f64,
        alpha: f64,
        beta: f64,
        max_runs: usize,
    ) -> (TestVerdict, usize) {
        self.hypothesis_governed(
            goal,
            bound,
            theta,
            delta,
            alpha,
            beta,
            max_runs,
            &Budget::unlimited(),
        )
        .into_value()
    }

    /// Sequential hypothesis test under a resource [`Budget`]: the SPRT
    /// stops early when the run budget or deadline is exhausted, in which
    /// case the partial verdict is whatever the test had accumulated
    /// (usually [`TestVerdict::Undecided`]). A decision reached within
    /// the budget is definitive.
    #[allow(clippy::too_many_arguments)]
    pub fn hypothesis_governed(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        theta: f64,
        delta: f64,
        alpha: f64,
        beta: f64,
        max_runs: usize,
        budget: &Budget,
    ) -> Outcome<(TestVerdict, usize)> {
        let gov = budget.governor();
        let mut sprt = Sprt::new(theta, delta, alpha, beta);
        while sprt.verdict() == TestVerdict::Undecided && sprt.observations() < max_runs {
            if !gov.check_time() || !gov.charge_run() {
                break;
            }
            let run = self.sim.simulate(bound, self.max_steps);
            sprt.observe(run.satisfies_eventually(self.net, goal, bound));
        }
        let verdict = sprt.verdict();
        let report = sim_report(&gov, sprt.observations(), self.net.dim(), self.net.dim());
        if verdict == TestVerdict::Undecided {
            gov.finish((verdict, sprt.observations()), report)
        } else {
            // A decided SPRT is a definitive answer at the requested
            // strength, however the loop was cut short.
            gov.finish_complete((verdict, sprt.observations()), report)
        }
    }

    /// Estimates the expected value of `value(run)` over `runs`
    /// simulations of horizon `bound` (e.g. completion time), as `modes`
    /// reports for `Emax` in Table I of the paper.
    /// # Panics
    ///
    /// Panics if `runs == 0`; use [`Self::expected_governed`] for the
    /// non-panicking API.
    pub fn expected<F>(&mut self, bound: f64, runs: usize, value: F) -> MeanEstimate
    where
        F: Fn(&Run) -> f64 + std::marker::Sync,
    {
        self.expected_governed(bound, runs, value, &Budget::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
            .expect("an unlimited budget without a cancel token cannot stop short")
    }

    /// Expected-value estimation under a resource [`Budget`]: on
    /// exhaustion the partial answer is the mean over the completed runs,
    /// or `None` when no run completed.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NoRuns`] when `runs == 0`, and
    /// [`StatsError::Cancelled`] when the budget's cancellation token
    /// trips before the first run completes.
    pub fn expected_governed<F>(
        &mut self,
        bound: f64,
        runs: usize,
        value: F,
        budget: &Budget,
    ) -> Result<Outcome<Option<MeanEstimate>>, StatsError>
    where
        F: Fn(&Run) -> f64 + std::marker::Sync,
    {
        if runs == 0 {
            return Err(StatsError::NoRuns);
        }
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        // `value` is an arbitrary run observer (it may read any clock),
        // so expected-value estimation never reduces the network.
        let samples: Vec<f64> = if self.threads > 1 {
            self.batch(self.net, bound, effective, &gov, value)
                .into_iter()
                .flatten()
                .collect()
        } else {
            let mut out = Vec::with_capacity(effective);
            for _ in 0..effective {
                if !gov.check_time() || !gov.charge_run() {
                    break;
                }
                out.push(value(&self.sim.simulate(bound, self.max_steps)));
            }
            out
        };
        Self::settle_runs(&gov, samples.len(), runs);
        let est = if samples.is_empty() {
            Self::check_cancelled(&gov)?;
            None
        } else {
            Some(estimate_mean(&samples)?)
        };
        let report = sim_report(&gov, samples.len(), self.net.dim(), self.net.dim());
        Ok(gov.finish(est, report))
    }

    /// Builds the empirical CDF of the first time `goal` is reached, over
    /// `runs` simulations of horizon `bound` — the data behind Fig. 4 of
    /// the paper.
    pub fn cdf(&mut self, goal: &StateFormula, bound: f64, runs: usize) -> EmpiricalCdf {
        self.cdf_governed(goal, bound, runs, &Budget::unlimited())
            .into_value()
    }

    /// Empirical-CDF construction under a resource [`Budget`]: on
    /// exhaustion the partial CDF covers the runs that completed (its
    /// population is the completed-run count, so it stays a valid CDF).
    pub fn cdf_governed(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        runs: usize,
        budget: &Budget,
    ) -> Outcome<EmpiricalCdf> {
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        let (sliced, metrics) = self.sliced_base();
        let base: &Network = sliced.as_ref().map_or(self.net, |s| &s.net);
        let reduction = base.reduced_with(&goal.clock_atoms());
        let mut dim = self.net.dim();
        let hit_times: Vec<Option<f64>> = if self.threads > 1 {
            let (net, goal) = reduced_query(&reduction, base, goal);
            dim = net.dim();
            self.batch(net, bound, effective, &gov, |run| {
                run.first_hit(net, &goal).filter(|&t| t <= bound)
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            let net = self.net;
            let mut out = Vec::with_capacity(effective);
            for _ in 0..effective {
                if !gov.check_time() || !gov.charge_run() {
                    break;
                }
                let run = self.sim.simulate(bound, self.max_steps);
                out.push(run.first_hit(net, goal).filter(|&t| t <= bound));
            }
            out
        };
        Self::settle_runs(&gov, hit_times.len(), runs);
        let completed = hit_times.len();
        let mut cdf = EmpiricalCdf::new(completed);
        for t in hit_times.into_iter().flatten() {
            cdf.add(t);
        }
        let report = metrics.stamp(sim_report(&gov, completed, dim, self.net.dim()));
        gov.finish(cdf, report)
    }

    /// Compares two time-bounded reachability probabilities
    /// (UPPAAL-SMC's `Pr[...](...) >= Pr[...](...)` queries) by paired
    /// sampling: both run predicates are evaluated on the *same*
    /// simulated runs, which cancels run-to-run variance.
    ///
    /// Returns `Ordering::Greater`/`Less` when the difference of the
    /// estimates exceeds the half-width `indifference`, `Ordering::Equal`
    /// otherwise.
    pub fn compare(
        &mut self,
        goal_a: &StateFormula,
        goal_b: &StateFormula,
        bound: f64,
        runs: usize,
        indifference: f64,
    ) -> (std::cmp::Ordering, f64, f64) {
        self.compare_governed(
            goal_a,
            goal_b,
            bound,
            runs,
            indifference,
            &Budget::unlimited(),
        )
        .into_value()
    }

    /// Paired comparison under a resource [`Budget`]: on exhaustion the
    /// partial ordering is computed over the completed runs (and is
    /// `Equal` with zero estimates when no run completed).
    pub fn compare_governed(
        &mut self,
        goal_a: &StateFormula,
        goal_b: &StateFormula,
        bound: f64,
        runs: usize,
        indifference: f64,
        budget: &Budget,
    ) -> Outcome<(std::cmp::Ordering, f64, f64)> {
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        let mut hits_a = 0_usize;
        let mut hits_b = 0_usize;
        let mut completed = 0_usize;
        let mut atoms = goal_a.clock_atoms();
        atoms.extend(goal_b.clock_atoms());
        let (sliced, metrics) = self.sliced_base();
        let base: &Network = sliced.as_ref().map_or(self.net, |s| &s.net);
        let reduction = base.reduced_with(&atoms);
        let mut dim = self.net.dim();
        if self.threads > 1 {
            let (net, goal_a) = reduced_query(&reduction, base, goal_a);
            let (_, goal_b) = reduced_query(&reduction, base, goal_b);
            dim = net.dim();
            let pairs = self.batch(net, bound, effective, &gov, |run| {
                (
                    run.satisfies_eventually(net, &goal_a, bound),
                    run.satisfies_eventually(net, &goal_b, bound),
                )
            });
            for (a, b) in pairs.into_iter().flatten() {
                completed += 1;
                hits_a += usize::from(a);
                hits_b += usize::from(b);
            }
        } else {
            for _ in 0..effective {
                if !gov.check_time() || !gov.charge_run() {
                    break;
                }
                let run = self.sim.simulate(bound, self.max_steps);
                completed += 1;
                if run.satisfies_eventually(self.net, goal_a, bound) {
                    hits_a += 1;
                }
                if run.satisfies_eventually(self.net, goal_b, bound) {
                    hits_b += 1;
                }
            }
        }
        Self::settle_runs(&gov, completed, runs);
        let (pa, pb) = if completed == 0 {
            (0.0, 0.0)
        } else {
            (
                hits_a as f64 / completed as f64,
                hits_b as f64 / completed as f64,
            )
        };
        let ord = if pa - pb > indifference {
            std::cmp::Ordering::Greater
        } else if pb - pa > indifference {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        };
        let report = metrics.stamp(sim_report(&gov, completed, dim, self.net.dim()));
        gov.finish((ord, pa, pb), report)
    }

    /// Counts how many of `runs` simulations satisfy the *global*
    /// (safety) run predicate `[]≤bound safe` — used by the paper's
    /// Table I rows TA1/TA2 under `modes` ("all 10k runs satisfied TA1").
    pub fn count_globally(&mut self, safe: &StateFormula, bound: f64, runs: usize) -> usize {
        self.count_globally_governed(safe, bound, runs, &Budget::unlimited())
            .into_value()
    }

    /// Safe-run counting under a resource [`Budget`]: on exhaustion the
    /// partial count covers the completed runs only.
    pub fn count_globally_governed(
        &mut self,
        safe: &StateFormula,
        bound: f64,
        runs: usize,
        budget: &Budget,
    ) -> Outcome<usize> {
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        let mut safe_count = 0_usize;
        let mut completed = 0_usize;
        let (sliced, metrics) = self.sliced_base();
        let base: &Network = sliced.as_ref().map_or(self.net, |s| &s.net);
        let reduction = base.reduced_with(&safe.clock_atoms());
        let mut dim = self.net.dim();
        if self.threads > 1 {
            let (net, safe) = reduced_query(&reduction, base, safe);
            dim = net.dim();
            let safe_runs = self.batch(net, bound, effective, &gov, |run| {
                run.satisfies_globally(net, &safe, bound)
            });
            for chunk in &safe_runs {
                completed += chunk.len();
                safe_count += chunk.iter().filter(|&&ok| ok).count();
            }
        } else {
            for _ in 0..effective {
                if !gov.check_time() || !gov.charge_run() {
                    break;
                }
                let run = self.sim.simulate(bound, self.max_steps);
                completed += 1;
                if run.satisfies_globally(self.net, safe, bound) {
                    safe_count += 1;
                }
            }
        }
        Self::settle_runs(&gov, completed, runs);
        let report = metrics.stamp(sim_report(&gov, completed, dim, self.net.dim()));
        gov.finish(safe_count, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    /// A coin automaton: from Flip, go to Heads or Tails within 1 time
    /// unit, uniformly at random among the two enabled edges.
    fn coin_net() -> (Network, tempo_ta::AutomatonId, tempo_ta::LocationId) {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Coin");
        let flip = a.location_with_invariant("Flip", vec![ClockAtom::le(x, 1)]);
        let heads = a.location("Heads");
        let tails = a.location("Tails");
        a.edge(flip, heads).done();
        a.edge(flip, tails).done();
        let aid = a.done();
        (b.build(), aid, heads)
    }

    #[test]
    fn coin_probability_near_half() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 11);
        let est = smc.probability(&StateFormula::at(aid, heads), 10.0, 2000, 0.99);
        assert!(
            est.lower < 0.5 && 0.5 < est.upper,
            "99% CI {est} should contain 0.5"
        );
    }

    #[test]
    fn hypothesis_testing_decides() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 11);
        // p = 0.5, test vs 0.1: accept H0 (p >= 0.2).
        let (verdict, _) = smc.hypothesis(
            &StateFormula::at(aid, heads),
            10.0,
            0.1,
            0.05,
            0.01,
            0.01,
            10_000,
        );
        assert_eq!(verdict, TestVerdict::AcceptH0);
        // p = 0.5, test vs 0.9: accept H1 (p <= 0.85).
        let (verdict, _) = smc.hypothesis(
            &StateFormula::at(aid, heads),
            10.0,
            0.9,
            0.05,
            0.01,
            0.01,
            10_000,
        );
        assert_eq!(verdict, TestVerdict::AcceptH1);
    }

    #[test]
    fn expected_duration_bounded_by_invariant() {
        let (net, _, _) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 3);
        let m = smc.expected(100.0, 500, |run| run.steps.first().map_or(0.0, |s| s.delay));
        // First delay is uniform on [0,1]: mean 0.5.
        assert!((m.mean - 0.5).abs() < 0.08, "mean first delay {m}");
    }

    #[test]
    fn cdf_reaches_one_for_certain_events() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 4);
        let done = StateFormula::or(vec![
            StateFormula::at(aid, heads),
            StateFormula::not(StateFormula::at(aid, heads)),
        ]);
        // Trivial property: CDF hits 1 at time 0.
        let cdf = smc.cdf(&done, 5.0, 100);
        assert!((cdf.at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_orders_probabilities() {
        // Reaching "flipped at all" is more likely than reaching heads.
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 6);
        let done = StateFormula::or(vec![
            StateFormula::at(aid, heads),
            StateFormula::at(aid, tempo_ta::LocationId(2)),
        ]);
        let (ord, pa, pb) = smc.compare(&done, &StateFormula::at(aid, heads), 10.0, 600, 0.1);
        assert_eq!(ord, std::cmp::Ordering::Greater, "pa={pa} pb={pb}");
        // A property against itself is Equal.
        let (ord, _, _) = smc.compare(&done, &done, 10.0, 200, 0.05);
        assert_eq!(ord, std::cmp::Ordering::Equal);
    }

    #[test]
    fn zero_run_budget_is_exhausted_not_a_panic() {
        let (net, aid, heads) = coin_net();
        let goal = StateFormula::at(aid, heads);
        let budget = Budget::unlimited().with_max_runs(0);
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 9);
        let out = smc
            .probability_governed(&goal, 10.0, 100, 0.95, &budget)
            .expect("inputs are valid");
        assert!(out.is_exhausted());
        assert_eq!(*out.value(), None, "no runs completed, no estimate");
        assert_eq!(out.report().runs_simulated, 0);
        let out = smc
            .expected_governed(10.0, 50, |run| run.steps.len() as f64, &budget)
            .expect("inputs are valid");
        assert!(out.is_exhausted() && out.value().is_none());
        let out = smc.cdf_governed(&goal, 10.0, 50, &budget);
        assert!(out.is_exhausted());
        assert_eq!(out.value().hits(), 0);
        let out = smc.count_globally_governed(&goal, 10.0, 50, &budget);
        assert!(out.is_exhausted());
        assert_eq!(*out.value(), 0);
        let out = smc.hypothesis_governed(&goal, 10.0, 0.5, 0.1, 0.05, 0.05, 1000, &budget);
        assert!(out.is_exhausted());
        assert_eq!(out.value().0, TestVerdict::Undecided);
    }

    #[test]
    fn mismatched_reduction_falls_back_to_full_network() {
        // Regression: a property whose clock the reduction removed (the
        // reduction was computed for a different query's atoms) used to
        // panic in `reduced_query`. It now simulates the full network.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let d = b.clock("d");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 5)]);
        let l1 = a.location("L1");
        a.edge(l0, l1)
            .guard_clock(ClockAtom::ge(x, 2))
            .reset(d, 0)
            .done();
        a.done();
        let net = b.build();
        // Computed with no keep-alive atoms: `d` is gone.
        let reduction = net.reduced();
        assert!(reduction.is_reduced());
        let prop = StateFormula::clock(ClockAtom::le(d, 10));
        assert!(reduction.map_formula(&prop).is_none(), "d was removed");
        let (sim_net, mapped) = reduced_query(&reduction, &net, &prop);
        assert_eq!(sim_net.dim(), net.dim(), "fell back to the full network");
        assert_eq!(mapped, prop);
        // The matched pairing still uses the reduced network.
        let matched = net.reduced_with(&prop.clock_atoms());
        let (sim_net, _) = reduced_query(&matched, &net, &prop);
        assert_eq!(sim_net.dim(), matched.dim());
    }

    #[test]
    fn cancellation_is_a_typed_error_not_a_panic() {
        // Regression: a `CancelToken` cancelled before the first run used
        // to leave the estimator with an empty `Exhausted` outcome that
        // downstream `.expect("unlimited budget completes every requested
        // run")` calls turned into a panic. It is a typed error now.
        let (net, aid, heads) = coin_net();
        let goal = StateFormula::at(aid, heads);
        let token = tempo_obs::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 9);
        let err = smc
            .probability_governed(&goal, 10.0, 100, 0.95, &budget)
            .unwrap_err();
        assert_eq!(err, StatsError::Cancelled);
        let err = smc
            .expected_governed(10.0, 100, |run| run.steps.len() as f64, &budget)
            .unwrap_err();
        assert_eq!(err, StatsError::Cancelled);
        // The parallel batch path takes the same typed exit.
        let mut par = StatisticalChecker::new(&net, RatePolicy::new(), 9).with_threads(3);
        let err = par
            .probability_governed(&goal, 10.0, 100, 0.95, &budget)
            .unwrap_err();
        assert_eq!(err, StatsError::Cancelled);
    }

    #[test]
    fn run_budget_caps_but_keeps_partial_estimate() {
        let (net, aid, heads) = coin_net();
        let goal = StateFormula::at(aid, heads);
        let budget = Budget::unlimited().with_max_runs(40);
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 9);
        let out = smc
            .probability_governed(&goal, 10.0, 1000, 0.95, &budget)
            .expect("inputs are valid");
        assert!(out.is_exhausted());
        let est = out.value().expect("40 runs completed");
        assert_eq!(est.runs, 40);
        assert_eq!(out.report().runs_simulated, 40);
    }

    #[test]
    fn zero_requested_runs_is_a_typed_error() {
        let (net, aid, heads) = coin_net();
        let goal = StateFormula::at(aid, heads);
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 9);
        let err = smc
            .probability_governed(&goal, 10.0, 0, 0.95, &Budget::unlimited())
            .unwrap_err();
        assert_eq!(err, crate::stats::StatsError::NoRuns);
    }

    #[test]
    fn governed_unlimited_matches_legacy_probability() {
        let (net, aid, heads) = coin_net();
        let goal = StateFormula::at(aid, heads);
        let mut a = StatisticalChecker::new(&net, RatePolicy::new(), 17).with_threads(3);
        let mut b = StatisticalChecker::new(&net, RatePolicy::new(), 17).with_threads(3);
        let legacy = a.probability(&goal, 10.0, 300, 0.95);
        let governed = b
            .probability_governed(&goal, 10.0, 300, 0.95, &Budget::unlimited())
            .expect("inputs are valid");
        assert!(!governed.is_exhausted());
        assert_eq!(legacy, governed.value().expect("complete"));
    }

    #[test]
    fn globally_counts_safe_runs() {
        let (net, aid, heads) = coin_net();
        let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 5);
        // "Not heads" globally holds for about half of the runs.
        let safe = StateFormula::not(StateFormula::at(aid, heads));
        let n = smc.count_globally(&safe, 10.0, 400);
        assert!((120..=280).contains(&n), "safe runs: {n}/400");
    }
}
