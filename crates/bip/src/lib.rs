//! # tempo-bip — the BIP component framework (Behaviour, Interaction, Priority)
//!
//! A reproduction of the BIP framework surveyed in Bozga et al. (DATE
//! 2012, §IV): hierarchically composed systems built from atomic
//! components (behaviour + ports), glued by *interactions* (rendezvous
//! and broadcast connectors) filtered by *priorities*, with
//!
//! * a centralized execution [`Engine`] implementing the operational
//!   semantics,
//! * explicit-state exploration and deadlock search,
//! * **D-Finder-style compositional deadlock detection**
//!   ([`check_deadlock_freedom`]): component invariants + trap-based
//!   interaction invariants refute candidate deadlocks without composing
//!   the state space,
//! * **safety-controller synthesis** ([`synthesize_safety_controller`])
//!   and a fault-injection harness reproducing the paper's DALA rover
//!   experiment ("the controller successfully stops the robot from
//!   reaching undesired/unsafe states").
//!
//! ## Example
//!
//! ```
//! use tempo_bip::BipSystemBuilder;
//! let mut b = BipSystemBuilder::new();
//! let mut ping = b.component("Ping");
//! let p0 = ping.state("P0");
//! let hello = ping.port("hello");
//! ping.transition(p0, p0, hello);
//! ping.done();
//! let mut pong = b.component("Pong");
//! let q0 = pong.state("Q0");
//! let world = pong.port("world");
//! pong.transition(q0, q0, world);
//! pong.done();
//! b.rendezvous("greet", &[hello, world]);
//! let sys = b.build();
//! assert!(sys.find_deadlock(100).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod composite;
mod controller;
mod dfinder;
mod digest;
mod por;
mod system;

pub use component::{Component, ComponentId, PortId, StateId, Transition};
pub use composite::{AtomBuilder, CPort, Composite};
pub use controller::{
    fault_injection_campaign, synthesize_safety_controller, FaultInjectionReport, SafetyController,
    SynthesisResult,
};
pub use dfinder::{
    check_deadlock_freedom, check_deadlock_freedom_governed, component_invariants, DfinderVerdict,
};
pub use por::BipPor;
pub use system::{
    BipState, BipSystem, BipSystemBuilder, ComponentBuilder, Engine, Interaction, InteractionId,
    InteractionKind, Priority,
};
