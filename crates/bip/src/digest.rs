//! Stable structural fingerprints for BIP systems, keying the analysis
//! service's verdict cache.
//!
//! Names (components, ports, control locations, interactions) are
//! diagnostics and excluded — two systems differing only in labels share
//! cache entries. Everything indexed hashes in order: component, port
//! and interaction indices are the identities the glue refers to, and a
//! broadcast's first port is its trigger. The priority *rules* fold
//! commutatively — a priority relation is a set.

use crate::component::{Component, Transition};
use crate::system::{BipSystem, Interaction, InteractionKind, Priority};
use tempo_obs::{Fingerprint, StableDigest, StableHasher};

impl StableDigest for Transition {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("transition");
        h.write_usize(self.from.0);
        h.write_usize(self.to.0);
        h.write_usize(self.port.0);
        self.guard.digest(h);
        self.update.digest(h);
    }
}

impl StableDigest for Component {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("component");
        h.write_usize(self.states.len());
        h.write_usize(self.ports.len());
        for p in &self.ports {
            h.write_usize(p.0);
        }
        self.transitions.digest(h);
        h.write_usize(self.initial.0);
    }
}

impl StableDigest for Interaction {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("interaction");
        h.write_usize(self.ports.len());
        for p in &self.ports {
            h.write_usize(p.0);
        }
        h.write_u8(match self.kind {
            InteractionKind::Rendezvous => 0,
            InteractionKind::Broadcast => 1,
        });
        self.guard.digest(h);
        self.update.digest(h);
        h.write_bool(self.controllable);
    }
}

impl StableDigest for Priority {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("priority");
        h.write_usize(self.low.0);
        h.write_usize(self.high.0);
        self.condition.digest(h);
    }
}

impl StableDigest for BipSystem {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("bip-system");
        self.decls.digest(h);
        self.components.digest(h);
        h.write_usize(self.port_owner.len());
        for owner in &self.port_owner {
            h.write_usize(owner.0);
        }
        self.interactions.digest(h);
        h.write_unordered(self.priorities.iter().map(Fingerprint::of));
    }
}

#[cfg(test)]
mod tests {
    use crate::BipSystemBuilder;
    use tempo_obs::Fingerprint;

    fn ping_pong(name_a: &str, name_b: &str) -> crate::BipSystem {
        let mut b = BipSystemBuilder::new();
        let mut ping = b.component(name_a);
        let p0 = ping.state("P0");
        let hello = ping.port("hello");
        ping.transition(p0, p0, hello);
        ping.done();
        let mut pong = b.component(name_b);
        let q0 = pong.state("Q0");
        let world = pong.port("world");
        pong.transition(q0, q0, world);
        pong.done();
        b.rendezvous("greet", &[hello, world]);
        b.build()
    }

    #[test]
    fn renaming_preserves_fingerprint_and_structure_changes_it() {
        assert_eq!(
            Fingerprint::of(&ping_pong("Ping", "Pong")),
            Fingerprint::of(&ping_pong("Left", "Right"))
        );

        let mut b = BipSystemBuilder::new();
        let mut ping = b.component("Ping");
        let p0 = ping.state("P0");
        let p1 = ping.state("P1"); // extra location: different structure
        let hello = ping.port("hello");
        ping.transition(p0, p1, hello);
        ping.done();
        let mut pong = b.component("Pong");
        let q0 = pong.state("Q0");
        let world = pong.port("world");
        pong.transition(q0, q0, world);
        pong.done();
        b.rendezvous("greet", &[hello, world]);
        assert_ne!(
            Fingerprint::of(&b.build()),
            Fingerprint::of(&ping_pong("Ping", "Pong"))
        );
    }
}
