//! Safety-controller synthesis for BIP systems.
//!
//! The paper's DALA experiment (§IV) synthesizes "an execution controller
//! that encodes and enforces safety properties by construction" and
//! validates it by fault injection: faults are *uncontrollable*
//! interactions the controller cannot block. Synthesis computes the
//! largest controllable-invariant set `W` of reachable states — states
//! from which every uncontrollable step stays in `W` and the controller
//! can keep the run inside `W` — and restricts the engine to
//! `W`-preserving controllable interactions.

use crate::system::{BipState, BipSystem, Engine, InteractionId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A synthesized safety controller: per state, the controllable
/// interactions the engine may fire.
#[derive(Debug, Clone, Default)]
pub struct SafetyController {
    allowed: HashMap<BipState, Vec<InteractionId>>,
    winning: HashSet<BipState>,
}

impl SafetyController {
    /// The allowed controllable interactions in a state.
    #[must_use]
    pub fn allowed(&self, state: &BipState) -> Option<&[InteractionId]> {
        self.allowed.get(state).map(Vec::as_slice)
    }

    /// Whether the state is in the controllable-invariant (winning) set.
    #[must_use]
    pub fn is_safe(&self, state: &BipState) -> bool {
        self.winning.contains(state)
    }

    /// Number of states with a prescription.
    #[must_use]
    pub fn size(&self) -> usize {
        self.allowed.len()
    }

    /// The allow-map, in the form [`Engine::install_controller`] expects.
    #[must_use]
    pub fn to_engine_map(&self) -> HashMap<BipState, Vec<InteractionId>> {
        self.allowed.clone()
    }
}

/// Result of controller synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The controller (empty if the initial state is not controllable).
    pub controller: SafetyController,
    /// Whether the initial state is in the winning set.
    pub initial_safe: bool,
    /// Number of reachable states examined.
    pub states: usize,
}

/// Synthesizes a safety controller that keeps the system away from
/// states satisfying `bad`, treating uncontrollable interactions
/// (faults) as unstoppable.
///
/// # Panics
///
/// Panics if more than `limit` states are reachable.
#[must_use]
pub fn synthesize_safety_controller<F>(sys: &BipSystem, bad: F, limit: usize) -> SynthesisResult
where
    F: Fn(&BipState) -> bool,
{
    // Build the reachable graph with labelled edges.
    let mut states: Vec<BipState> = Vec::new();
    let mut index: HashMap<BipState, usize> = HashMap::new();
    let mut edges: Vec<Vec<(InteractionId, usize)>> = Vec::new();
    let init = sys.initial_state();
    index.insert(init.clone(), 0);
    states.push(init);
    edges.push(Vec::new());
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    while let Some(i) = queue.pop_front() {
        assert!(states.len() <= limit, "state limit {limit} exceeded");
        let state = states[i].clone();
        for inter in sys.enabled_interactions(&state) {
            if let Some(next) = sys.execute(&state, inter) {
                let j = *index.entry(next.clone()).or_insert_with(|| {
                    states.push(next);
                    edges.push(Vec::new());
                    queue.push_back(states.len() - 1);
                    states.len() - 1
                });
                edges[i].push((inter, j));
            }
        }
    }
    let n = states.len();
    // Greatest fixpoint of the controllable-invariant condition.
    let mut winning: Vec<bool> = states.iter().map(|s| !bad(s)).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if !winning[i] {
                continue;
            }
            let violated = edges[i]
                .iter()
                .any(|&(inter, j)| !sys.interactions()[inter.0].controllable && !winning[j]);
            if violated {
                winning[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut controller = SafetyController::default();
    for i in 0..n {
        if !winning[i] {
            continue;
        }
        controller.winning.insert(states[i].clone());
        let allowed: Vec<InteractionId> = edges[i]
            .iter()
            .filter(|&&(inter, j)| sys.interactions()[inter.0].controllable && winning[j])
            .map(|&(inter, _)| inter)
            .collect();
        controller.allowed.insert(states[i].clone(), allowed);
    }
    SynthesisResult {
        initial_safe: winning[0],
        controller,
        states: n,
    }
}

/// Outcome of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjectionReport {
    /// Number of runs executed.
    pub runs: usize,
    /// Runs that reached a bad state.
    pub unsafe_runs: usize,
    /// Total interactions fired over all runs.
    pub total_steps: usize,
}

/// Runs a fault-injection campaign: `runs` random engine executions of
/// `steps` interactions each, counting runs that reach a `bad` state.
/// With `controller = Some(..)` the engine is restricted; uncontrollable
/// (fault) interactions are never blocked, so the campaign measures
/// exactly the paper's claim — "the controller successfully stops the
/// robot from reaching undesired/unsafe states" *despite* injected
/// faults.
pub fn fault_injection_campaign<F>(
    sys: &BipSystem,
    controller: Option<&SafetyController>,
    bad: F,
    runs: usize,
    steps: usize,
    seed: u64,
) -> FaultInjectionReport
where
    F: Fn(&BipState) -> bool,
{
    let mut unsafe_runs = 0;
    let mut total_steps = 0;
    for r in 0..runs {
        let mut engine = Engine::new(sys, seed.wrapping_add(r as u64));
        if let Some(c) = controller {
            engine.install_controller(c.to_engine_map());
        }
        let mut hit = bad(engine.state());
        for _ in 0..steps {
            if engine.step().is_none() {
                break;
            }
            total_steps += 1;
            if bad(engine.state()) {
                hit = true;
                break;
            }
        }
        if hit {
            unsafe_runs += 1;
        }
    }
    FaultInjectionReport {
        runs,
        unsafe_runs,
        total_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BipSystemBuilder;
    use tempo_expr::{Expr, Stmt};

    /// A rover that may `drive` or `stop`; a fault (`glitch`,
    /// uncontrollable) puts the sensor in a degraded mode. Driving while
    /// degraded is unsafe; the controller must refuse `drive` once the
    /// glitch has occurred (it can still `reset` the sensor).
    fn rover() -> (BipSystem, tempo_expr::VarId) {
        let mut b = BipSystemBuilder::new();
        let degraded = b.decls_mut().int("degraded", 0, 1);
        let danger = b.decls_mut().int("danger", 0, 1);
        let mut r = b.component("Rover");
        let idle = r.state("Idle");
        let moving = r.state("Moving");
        let pdrive = r.port("drive");
        let pstop = r.port("stop");
        r.transition(idle, moving, pdrive);
        r.transition(moving, idle, pstop);
        r.done();
        let mut s = b.component("Sensor");
        let ok = s.state("Ok");
        let bad_s = s.state("Degraded");
        let pglitch = s.port("glitch");
        let preset = s.port("reset");
        s.transition(ok, bad_s, pglitch);
        s.transition(bad_s, ok, preset);
        s.done();
        let drive = b.rendezvous("drive", &[pdrive]);
        // Driving while degraded raises the danger flag.
        b.set_update(
            drive,
            Stmt::if_then(
                Expr::var(degraded).eq(Expr::konst(1)),
                Stmt::assign(danger, Expr::konst(1)),
            ),
        );
        b.rendezvous("stop", &[pstop]);
        let glitch = b.rendezvous("glitch", &[pglitch]);
        b.set_update(glitch, Stmt::assign(degraded, Expr::konst(1)));
        b.set_uncontrollable(glitch);
        let reset = b.rendezvous("reset", &[preset]);
        b.set_update(reset, Stmt::assign(degraded, Expr::konst(0)));
        (b.build(), danger)
    }

    #[test]
    fn synthesis_finds_safe_controller() {
        let (sys, danger) = rover();
        let bad = move |s: &BipState| s.store.get(danger) == 1;
        let res = synthesize_safety_controller(&sys, bad, 10_000);
        assert!(res.initial_safe, "the rover is controllable");
        assert!(res.controller.size() > 0);
    }

    #[test]
    fn fault_injection_with_and_without_controller() {
        let (sys, danger) = rover();
        let bad = |s: &BipState| s.store.get(danger) == 1;
        let res = synthesize_safety_controller(&sys, bad, 10_000);
        let uncontrolled = fault_injection_campaign(&sys, None, bad, 50, 100, 99);
        assert!(
            uncontrolled.unsafe_runs > 0,
            "without the controller, random execution eventually drives while degraded"
        );
        let controlled = fault_injection_campaign(&sys, Some(&res.controller), bad, 50, 100, 99);
        assert_eq!(
            controlled.unsafe_runs, 0,
            "the synthesized controller blocks unsafe drives"
        );
        assert!(
            controlled.total_steps > 0,
            "the controller does not freeze the system"
        );
    }

    #[test]
    fn uncontrollable_losses_detected() {
        // A fault that *directly* causes the bad state from the initial
        // state cannot be controlled away.
        let mut b = BipSystemBuilder::new();
        let boom = b.decls_mut().int("boom", 0, 1);
        let mut c = b.component("C");
        let s = c.state("S");
        let pf = c.port("fault");
        c.transition(s, s, pf);
        c.done();
        let fault = b.rendezvous("fault", &[pf]);
        b.set_update(fault, Stmt::assign(boom, Expr::konst(1)));
        b.set_uncontrollable(fault);
        let sys = b.build();
        let res = synthesize_safety_controller(&sys, |st| st.store.get(boom) == 1, 100);
        assert!(!res.initial_safe);
    }
}
