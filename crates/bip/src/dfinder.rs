//! Compositional deadlock detection in the style of D-Finder
//! (Bensalem et al., CAV'09; surveyed in Bozga et al., DATE 2012, §IV).
//!
//! Instead of exploring the composed state space, the check combines
//!
//! * **component invariants** — per-component over-approximations of the
//!   locally reachable control states, and
//! * **interaction invariants** — trap-based global invariants of the
//!   1-safe Petri net induced by the interactions,
//!
//! to show that no *candidate deadlock* control configuration is
//! reachable. The method is conservative: [`DfinderVerdict::DeadlockFree`]
//! is a proof, while [`DfinderVerdict::Unknown`] lists the surviving
//! suspects (which an explicit search can then examine).

use crate::component::{ComponentId, PortId, StateId};
use crate::system::{BipSystem, InteractionKind};
use std::collections::HashSet;
use tempo_expr::Expr;
use tempo_obs::{Budget, Outcome, RunReport};

/// The verdict of the compositional check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfinderVerdict {
    /// Every candidate deadlock configuration was refuted by the
    /// invariants: the system is deadlock-free.
    DeadlockFree {
        /// Number of candidate configurations examined.
        candidates: usize,
        /// How many were eliminated by trap invariants (the rest were
        /// eliminated by component invariants).
        eliminated_by_traps: usize,
    },
    /// Some candidates could not be refuted; they are returned for
    /// explicit examination.
    Unknown {
        /// Surviving candidate control configurations.
        suspects: Vec<Vec<StateId>>,
    },
}

/// A firing mode of an interaction: the control places it consumes and
/// produces (one pair per participating component).
#[derive(Debug, Clone)]
struct Mode {
    takes: Vec<(usize, usize)>, // (component, state)
    puts: Vec<(usize, usize)>,
}

/// Runs the compositional deadlock-freedom check.
///
/// `max_candidates` bounds the candidate enumeration (the product of
/// component invariants); exceeding it yields `Unknown` with no suspects
/// listed.
#[must_use]
pub fn check_deadlock_freedom(sys: &BipSystem, max_candidates: usize) -> DfinderVerdict {
    check_deadlock_freedom_governed(sys, max_candidates, &Budget::unlimited()).into_value()
}

/// Compositional deadlock-freedom check under a resource [`Budget`]:
/// each enumeration step charges one iteration. On exhaustion the
/// partial verdict is [`DfinderVerdict::Unknown`] with the suspects
/// found so far — the method is conservative, so an interrupted run
/// never claims deadlock freedom.
pub fn check_deadlock_freedom_governed(
    sys: &BipSystem,
    max_candidates: usize,
    budget: &Budget,
) -> Outcome<DfinderVerdict> {
    let gov = budget.governor();
    let local = component_invariants(sys);
    let modes = firing_modes(sys);
    let initial_places: Vec<(usize, usize)> = sys
        .components()
        .iter()
        .enumerate()
        .map(|(ci, c)| (ci, c.initial.0))
        .collect();

    // Enumerate candidate deadlock configurations: products of locally
    // reachable control states where no interaction is *surely* enabled.
    let mut suspects = Vec::new();
    let mut candidates = 0_usize;
    let mut eliminated_by_traps = 0_usize;
    let mut work = 0_usize;
    let mut stack: Vec<Vec<StateId>> = vec![Vec::new()];
    let mut exhausted = false;
    while let Some(partial) = stack.pop() {
        if !gov.charge_iteration() || !gov.check_time() {
            exhausted = true;
            break;
        }
        work += 1;
        if work > max_candidates {
            let report = dfinder_report(&gov, candidates, work);
            return gov.finish_complete(
                DfinderVerdict::Unknown {
                    suspects: Vec::new(),
                },
                report,
            );
        }
        if partial.len() == sys.components().len() {
            if surely_enabled_exists(sys, &partial) {
                continue;
            }
            candidates += 1;
            if trap_refutes(sys, &modes, &initial_places, &partial) {
                eliminated_by_traps += 1;
            } else {
                suspects.push(partial);
            }
            continue;
        }
        let ci = partial.len();
        for &s in &local[ci] {
            let mut next = partial.clone();
            next.push(s);
            stack.push(next);
        }
    }
    let report = dfinder_report(&gov, candidates, work);
    if exhausted {
        // The enumeration did not finish: freedom cannot be claimed.
        return gov.finish(DfinderVerdict::Unknown { suspects }, report);
    }
    gov.finish_complete(
        if suspects.is_empty() {
            DfinderVerdict::DeadlockFree {
                candidates,
                eliminated_by_traps,
            }
        } else {
            DfinderVerdict::Unknown { suspects }
        },
        report,
    )
}

/// [`RunReport`] for the candidate enumeration: candidates examined map
/// to explored states, enumeration steps to sweeps.
fn dfinder_report(gov: &tempo_obs::Governor, candidates: usize, work: usize) -> RunReport {
    RunReport {
        states_explored: candidates as u64,
        sweeps: work as u64,
        wall_time: gov.elapsed(),
        ..RunReport::default()
    }
}

/// Per-component control-state reachability, assuming every port may
/// always fire (an over-approximation of the component's behaviour in
/// any context).
#[must_use]
pub fn component_invariants(sys: &BipSystem) -> Vec<Vec<StateId>> {
    sys.components()
        .iter()
        .map(|c| {
            let mut seen = vec![false; c.states.len()];
            let mut stack = vec![c.initial];
            seen[c.initial.0] = true;
            while let Some(s) = stack.pop() {
                for t in c.transitions.iter().filter(|t| t.from == s) {
                    if !seen[t.to.0] {
                        seen[t.to.0] = true;
                        stack.push(t.to);
                    }
                }
            }
            (0..c.states.len())
                .filter(|&i| seen[i])
                .map(StateId)
                .collect()
        })
        .collect()
}

/// Whether some interaction is *surely* enabled in the control
/// configuration: control-ready on every required port and free of data
/// guards (data-guarded interactions might be blocked, so they cannot
/// refute a deadlock candidate).
fn surely_enabled_exists(sys: &BipSystem, control: &[StateId]) -> bool {
    sys.interactions().iter().any(|inter| {
        if inter.guard != Expr::truth() {
            return false;
        }
        let mut ports = inter.ports.iter();
        let check = |p: &PortId| -> bool {
            let cid: ComponentId = sys.port_owner(*p);
            let comp = &sys.components()[cid.0];
            comp.transitions
                .iter()
                .any(|t| t.from == control[cid.0] && t.port == *p && t.guard == Expr::truth())
        };
        match inter.kind {
            InteractionKind::Rendezvous => ports.all(&check),
            InteractionKind::Broadcast => ports.next().is_some_and(check),
        }
    })
}

/// All firing modes of all interactions (choices of one transition per
/// participating port; broadcasts enumerate subsets of ready synchrons).
fn firing_modes(sys: &BipSystem) -> Vec<Mode> {
    let mut modes = Vec::new();
    for inter in sys.interactions() {
        // Per port: the list of (component, from, to) choices.
        let per_port: Vec<Vec<(usize, usize, usize)>> = inter
            .ports
            .iter()
            .map(|&p| {
                let cid = sys.port_owner(p);
                sys.components()[cid.0]
                    .transitions
                    .iter()
                    .filter(|t| t.port == p)
                    .map(|t| (cid.0, t.from.0, t.to.0))
                    .collect()
            })
            .collect();
        match inter.kind {
            InteractionKind::Rendezvous => {
                product_modes(&per_port, &mut modes);
            }
            InteractionKind::Broadcast => {
                // Trigger + every subset of synchron ports.
                let trigger = &per_port[0];
                let synchrons = &per_port[1..];
                let subset_count = 1_usize << synchrons.len();
                for mask in 0..subset_count {
                    let mut chosen: Vec<Vec<(usize, usize, usize)>> = vec![trigger.clone()];
                    for (k, s) in synchrons.iter().enumerate() {
                        if mask & (1 << k) != 0 {
                            chosen.push(s.clone());
                        }
                    }
                    product_modes(&chosen, &mut modes);
                }
            }
        }
    }
    modes
}

fn product_modes(per_port: &[Vec<(usize, usize, usize)>], modes: &mut Vec<Mode>) {
    if per_port.iter().any(Vec::is_empty) {
        return;
    }
    let mut idx = vec![0_usize; per_port.len()];
    loop {
        let mut takes = Vec::new();
        let mut puts = Vec::new();
        for (k, options) in per_port.iter().enumerate() {
            let (c, from, to) = options[idx[k]];
            takes.push((c, from));
            puts.push((c, to));
        }
        modes.push(Mode { takes, puts });
        let mut pos = 0;
        loop {
            if pos == per_port.len() {
                return;
            }
            idx[pos] += 1;
            if idx[pos] < per_port[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Whether a trap invariant refutes the candidate: there is a trap
/// (computed as the maximal trap avoiding the candidate's places) that is
/// initially marked — so it must stay marked, but the candidate leaves it
/// empty, hence the candidate is unreachable.
fn trap_refutes(
    sys: &BipSystem,
    modes: &[Mode],
    initial_places: &[(usize, usize)],
    candidate: &[StateId],
) -> bool {
    // Q = all places except the candidate's.
    let mut trap: HashSet<(usize, usize)> = HashSet::new();
    for (ci, c) in sys.components().iter().enumerate() {
        for s in 0..c.states.len() {
            if candidate[ci].0 != s {
                trap.insert((ci, s));
            }
        }
    }
    // Maximal trap within Q: repeatedly remove places whose removal is
    // forced (a mode takes from the trap but puts nothing back).
    loop {
        let mut to_remove: HashSet<(usize, usize)> = HashSet::new();
        for m in modes {
            let takes_from_trap: Vec<_> = m.takes.iter().filter(|p| trap.contains(*p)).collect();
            if takes_from_trap.is_empty() {
                continue;
            }
            let puts_back = m.puts.iter().any(|p| trap.contains(p));
            if !puts_back {
                for p in takes_from_trap {
                    to_remove.insert(*p);
                }
            }
        }
        if to_remove.is_empty() {
            break;
        }
        for p in to_remove {
            trap.remove(&p);
        }
    }
    // Refuted iff the maximal trap avoiding the candidate contains an
    // initially marked place.
    initial_places.iter().any(|p| trap.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BipSystemBuilder;

    /// A token ring of `n` components: each passes a token to the next.
    /// Deadlock-free, and provable compositionally (pure control).
    fn token_ring(n: usize) -> BipSystem {
        let mut b = BipSystemBuilder::new();
        let mut gives = Vec::new();
        let mut takes = Vec::new();
        for k in 0..n {
            let mut c = b.component(&format!("N{k}"));
            let has = c.state("Has");
            let idle = c.state("Idle");
            if k != 0 {
                c.set_initial(idle);
            }
            let give = c.port("give");
            let take = c.port("take");
            c.transition(has, idle, give);
            c.transition(idle, has, take);
            c.done();
            gives.push(give);
            takes.push(take);
        }
        for k in 0..n {
            b.rendezvous(&format!("pass{k}"), &[gives[k], takes[(k + 1) % n]]);
        }
        b.build()
    }

    #[test]
    fn token_ring_certified_deadlock_free() {
        let sys = token_ring(4);
        let verdict = check_deadlock_freedom(&sys, 100_000);
        match verdict {
            DfinderVerdict::DeadlockFree { candidates, .. } => {
                assert!(candidates > 0, "the all-idle configurations are candidates");
            }
            DfinderVerdict::Unknown { suspects } => {
                panic!("expected a proof, got suspects {suspects:?}")
            }
        }
        // Cross-check with the explicit engine.
        assert!(sys.find_deadlock(10_000).is_none());
    }

    #[test]
    fn genuine_deadlock_reported_as_suspect() {
        // Two components that each wait for the other: classic deadlock.
        let mut b = BipSystemBuilder::new();
        let mut p = b.component("P");
        let p0 = p.state("P0");
        let p1 = p.state("P1");
        let pa = p.port("a");
        let pb = p.port("b");
        p.transition(p0, p1, pa);
        p.transition(p1, p0, pb);
        p.done();
        let mut q = b.component("Q");
        let q0 = q.state("Q0");
        let q1 = q.state("Q1");
        let qa = q.port("a");
        let qb = q.port("b");
        // Q offers a only from Q1 but needs b to get there.
        q.transition(q1, q0, qa);
        q.transition(q0, q1, qb);
        q.done();
        b.rendezvous("sync_a", &[pa, qa]);
        b.rendezvous("sync_b", &[pb, qb]);
        let sys = b.build();
        // (P0, Q0): sync_a needs Q at Q1; sync_b needs P at P1 → deadlock.
        let verdict = check_deadlock_freedom(&sys, 10_000);
        assert!(matches!(verdict, DfinderVerdict::Unknown { .. }));
        assert!(sys.find_deadlock(100).is_some(), "explicit check agrees");
    }

    #[test]
    fn component_invariants_are_local_reachability() {
        let sys = token_ring(3);
        let ci = component_invariants(&sys);
        for states in &ci {
            assert_eq!(states.len(), 2, "both Has and Idle locally reachable");
        }
    }

    #[test]
    fn candidate_pruning_with_sure_interactions() {
        // A single component with an always-enabled self-loop is never a
        // deadlock candidate.
        let mut b = BipSystemBuilder::new();
        let mut c = b.component("Live");
        let s = c.state("S");
        let p = c.port("p");
        c.transition(s, s, p);
        c.done();
        b.rendezvous("tick", &[p]);
        let sys = b.build();
        match check_deadlock_freedom(&sys, 100) {
            DfinderVerdict::DeadlockFree { candidates, .. } => assert_eq!(candidates, 0),
            v => panic!("unexpected verdict {v:?}"),
        }
    }
}
