//! Atomic BIP components: behaviour (control locations + transitions
//! labelled by ports) and interface (the ports themselves).

use tempo_expr::{Expr, Stmt};

/// Identifier of a port in a [`BipSystem`](crate::BipSystem). Ports are
/// the interaction points of atomic components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Identifier of an atomic component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub usize);

/// Identifier of a control location within a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// A transition of an atomic component: fires when its port participates
/// in an executed interaction and its guard holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source control location.
    pub from: StateId,
    /// Target control location.
    pub to: StateId,
    /// The port this transition offers.
    pub port: PortId,
    /// Data guard over the (global) store.
    pub guard: Expr,
    /// Update executed when the transition fires.
    pub update: Stmt,
}

/// An atomic BIP component: named control locations, ports and
/// port-labelled transitions (Bozga et al., DATE 2012, §IV:
/// "atomic components characterized by their behavior and their
/// interface").
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name (e.g. the DALA modules of Fig. 6).
    pub name: String,
    /// Control location names.
    pub states: Vec<String>,
    /// Ports owned by this component (global ids).
    pub ports: Vec<PortId>,
    /// Transitions.
    pub transitions: Vec<Transition>,
    /// Initial control location.
    pub initial: StateId,
}

impl Component {
    /// Looks up a control location by name.
    #[must_use]
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s == name).map(StateId)
    }

    /// The transitions offering `port` from control location `from`.
    pub fn transitions_on(
        &self,
        from: StateId,
        port: PortId,
    ) -> impl Iterator<Item = &Transition> + '_ {
        self.transitions
            .iter()
            .filter(move |t| t.from == from && t.port == port)
    }

    /// Whether some transition from `from` offers `port` (ignoring data
    /// guards) — the control-level readiness used by D-Finder's
    /// over-approximations.
    #[must_use]
    pub fn offers(&self, from: StateId, port: PortId) -> bool {
        self.transitions
            .iter()
            .any(|t| t.from == from && t.port == port)
    }
}
