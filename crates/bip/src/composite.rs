//! Hierarchical (composite) BIP components and the flattening
//! transformation.
//!
//! BIP "allows the construction of composite hierarchically structured
//! systems from atomic components" and relies on "source-to-source
//! transformers that allow progressive refinement" (Bozga et al., DATE
//! 2012, §IV). A [`Composite`] nests atomic components and other
//! composites, wires the ports visible at its level with interactions,
//! and *exports* a subset of ports upward; [`Composite::flatten`] is the
//! source-to-source transformation producing the equivalent flat
//! [`BipSystem`] that the engine and the analyses run on.

use crate::component::{PortId, StateId};
use crate::system::{BipSystem, BipSystemBuilder, InteractionKind};
use tempo_expr::{Decls, Expr, Stmt};

/// A port handle at one composite level: either a port of a local atomic
/// component or a port exported by a nested composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CPort {
    level_tag: usize,
    index: usize,
}

/// Specification of an atomic component inside a composite.
#[derive(Debug, Clone)]
struct AtomSpec {
    name: String,
    states: Vec<String>,
    initial: usize,
    ports: Vec<String>,
    /// (from, to, port index, guard, update)
    transitions: Vec<(usize, usize, usize, Expr, Stmt)>,
}

/// Where a level-local port handle points.
#[derive(Debug, Clone, Copy)]
enum PortTarget {
    /// Port `port_ix` of local atom `atom_ix`.
    Atom { atom_ix: usize, port_ix: usize },
    /// Export `export_ix` of child composite `child_ix`.
    Child { child_ix: usize, export_ix: usize },
}

/// An interaction declared at one composite level.
#[derive(Debug, Clone)]
struct InteractionSpec {
    name: String,
    ports: Vec<CPort>,
    kind: InteractionKind,
    guard: Expr,
    update: Stmt,
    controllable: bool,
}

/// A hierarchical BIP component.
///
/// ```
/// use tempo_bip::{Composite, InteractionKind};
///
/// // Leaf: a worker with start/finish ports.
/// let mut worker = Composite::new("Worker");
/// let mut cell = worker.atom("Cell");
/// let idle = cell.state("Idle");
/// let busy = cell.state("Busy");
/// let start = cell.port("start");
/// let finish = cell.port("finish");
/// cell.transition(idle, busy, start);
/// cell.transition(busy, idle, finish);
/// let (start, finish) = {
///     let ports = cell.done();
///     (ports[0], ports[1])
/// };
/// worker.export("start", start);
/// worker.export("finish", finish);
///
/// // Parent: two workers in lockstep.
/// let mut plant = Composite::new("Plant");
/// let w1 = plant.child(worker.clone());
/// let w2 = plant.child(worker);
/// let s1 = plant.child_port(w1, "start").unwrap();
/// let s2 = plant.child_port(w2, "start").unwrap();
/// plant.interaction("both_start", &[s1, s2], InteractionKind::Rendezvous);
/// let flat = plant.flatten();
/// assert_eq!(flat.components().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Composite {
    name: String,
    level_tag: usize,
    atoms: Vec<AtomSpec>,
    children: Vec<Composite>,
    ports: Vec<PortTarget>,
    port_names: Vec<String>,
    exports: Vec<(String, CPort)>,
    interactions: Vec<InteractionSpec>,
    priorities: Vec<(usize, usize, Expr)>,
    decls: Decls,
}

impl Composite {
    /// Creates an empty composite.
    #[must_use]
    pub fn new(name: &str) -> Self {
        // A pseudo-unique tag guards against mixing handles across
        // composites (checked when the handle is used).
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);
        Composite {
            name: name.to_owned(),
            level_tag: COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            atoms: Vec::new(),
            children: Vec::new(),
            ports: Vec::new(),
            port_names: Vec::new(),
            exports: Vec::new(),
            interactions: Vec::new(),
            priorities: Vec::new(),
            decls: Decls::new(),
        }
    }

    /// The composite's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Access to data declarations (flattening merges every level's
    /// declarations; names are prefixed with the composite's path).
    pub fn decls_mut(&mut self) -> &mut Decls {
        &mut self.decls
    }

    /// Starts defining a local atomic component; finish with
    /// [`AtomBuilder::done`], which returns the component's port handles.
    pub fn atom(&mut self, name: &str) -> AtomBuilder<'_> {
        AtomBuilder {
            composite: self,
            spec: AtomSpec {
                name: name.to_owned(),
                states: Vec::new(),
                initial: 0,
                ports: Vec::new(),
                transitions: Vec::new(),
            },
        }
    }

    /// Nests a child composite, returning its index.
    pub fn child(&mut self, child: Composite) -> usize {
        self.children.push(child);
        self.children.len() - 1
    }

    /// The handle for a port exported by child `child_ix` under `name`.
    #[must_use]
    pub fn child_port(&mut self, child_ix: usize, name: &str) -> Option<CPort> {
        let export_ix = self
            .children
            .get(child_ix)?
            .exports
            .iter()
            .position(|(n, _)| n == name)?;
        self.ports.push(PortTarget::Child {
            child_ix,
            export_ix,
        });
        self.port_names
            .push(format!("{}.{}", self.children[child_ix].name, name));
        Some(CPort {
            level_tag: self.level_tag,
            index: self.ports.len() - 1,
        })
    }

    /// Exports a visible port upward under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different composite.
    pub fn export(&mut self, name: &str, port: CPort) {
        assert_eq!(port.level_tag, self.level_tag, "foreign port handle");
        self.exports.push((name.to_owned(), port));
    }

    /// Adds an interaction over visible ports, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if a handle belongs to a different composite.
    pub fn interaction(&mut self, name: &str, ports: &[CPort], kind: InteractionKind) -> usize {
        for p in ports {
            assert_eq!(p.level_tag, self.level_tag, "foreign port handle");
        }
        self.interactions.push(InteractionSpec {
            name: name.to_owned(),
            ports: ports.to_vec(),
            kind,
            guard: Expr::truth(),
            update: Stmt::skip(),
            controllable: true,
        });
        self.interactions.len() - 1
    }

    /// Sets the guard of a local interaction.
    pub fn set_guard(&mut self, interaction: usize, guard: Expr) {
        self.interactions[interaction].guard = guard;
    }

    /// Sets the data transfer of a local interaction.
    pub fn set_update(&mut self, interaction: usize, update: Stmt) {
        self.interactions[interaction].update = update;
    }

    /// Marks a local interaction uncontrollable (a fault).
    pub fn set_uncontrollable(&mut self, interaction: usize) {
        self.interactions[interaction].controllable = false;
    }

    /// Adds the priority `low < high` between two local interactions.
    pub fn priority(&mut self, low: usize, high: usize) {
        self.priorities.push((low, high, Expr::truth()));
    }

    /// The flattening source-to-source transformation: produces the
    /// equivalent flat [`BipSystem`]. Component names are prefixed with
    /// their hierarchical path (`Plant.Worker.Cell`).
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy is malformed (dangling exports).
    #[must_use]
    pub fn flatten(&self) -> BipSystem {
        let mut b = BipSystemBuilder::new();
        let mut flat = Flattened::default();
        self.flatten_into(&mut b, &mut flat, "");
        for (low, high, cond, guard, update, controllable, name, ports, kind) in
            flat.pending_interactions
        {
            let _ = (low, high, cond);
            let id = b.interaction(&name, &ports, kind);
            b.set_guard(id, guard);
            b.set_update(id, update);
            if !controllable {
                b.set_uncontrollable(id);
            }
        }
        for (low, high, cond) in flat.pending_priorities {
            b.priority_when(
                crate::system::InteractionId(low),
                crate::system::InteractionId(high),
                cond,
            );
        }
        b.build()
    }

    /// Recursively registers atoms and collects interactions. Returns the
    /// flat `PortId` of each of this composite's exports.
    fn flatten_into(
        &self,
        b: &mut BipSystemBuilder,
        flat: &mut Flattened,
        prefix: &str,
    ) -> Vec<PortId> {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}.{}", self.name)
        };
        // Hoist this level's declarations (names prefixed by the path).
        let mut var_map = Vec::new();
        for info in self.decls.vars().to_vec() {
            let id = if info.is_array {
                b.decls_mut()
                    .array(&format!("{path}.{}", info.name), info.len, info.lo, info.hi)
            } else {
                b.decls_mut()
                    .int(&format!("{path}.{}", info.name), info.lo, info.hi)
            };
            var_map.push(id);
        }
        let _ = var_map; // expressions refer to VarIds minted on `decls_mut`
                         // Local atoms.
        let mut atom_ports: Vec<Vec<PortId>> = Vec::new();
        for atom in &self.atoms {
            let mut cb = b.component(&format!("{path}.{}", atom.name));
            let states: Vec<StateId> = atom.states.iter().map(|s| cb.state(s)).collect();
            cb.set_initial(states[atom.initial]);
            let ports: Vec<PortId> = atom.ports.iter().map(|p| cb.port(p)).collect();
            for (from, to, port_ix, guard, update) in &atom.transitions {
                cb.transition_full(
                    states[*from],
                    states[*to],
                    ports[*port_ix],
                    guard.clone(),
                    update.clone(),
                );
            }
            cb.done();
            atom_ports.push(ports);
        }
        // Children (recursively), collecting their export tables.
        let child_exports: Vec<Vec<PortId>> = self
            .children
            .iter()
            .map(|c| c.flatten_into(b, flat, &path))
            .collect();
        // Resolve this level's visible ports to flat ports.
        let resolve = |p: &CPort| -> PortId {
            match self.ports[p.index] {
                PortTarget::Atom { atom_ix, port_ix } => atom_ports[atom_ix][port_ix],
                PortTarget::Child {
                    child_ix,
                    export_ix,
                } => child_exports[child_ix][export_ix],
            }
        };
        // Queue interactions (all levels' interactions are global after
        // flattening; indices are assigned in emission order).
        let base = flat.pending_interactions.len();
        for spec in &self.interactions {
            let ports: Vec<PortId> = spec.ports.iter().map(&resolve).collect();
            flat.pending_interactions.push((
                0,
                0,
                Expr::truth(),
                spec.guard.clone(),
                spec.update.clone(),
                spec.controllable,
                format!("{path}.{}", spec.name),
                ports,
                spec.kind,
            ));
        }
        for (low, high, cond) in &self.priorities {
            flat.pending_priorities
                .push((base + low, base + high, cond.clone()));
        }
        // Export table.
        self.exports.iter().map(|(_, p)| resolve(p)).collect()
    }
}

#[derive(Default)]
#[allow(clippy::type_complexity)]
struct Flattened {
    pending_interactions: Vec<(
        usize,
        usize,
        Expr,
        Expr,
        Stmt,
        bool,
        String,
        Vec<PortId>,
        InteractionKind,
    )>,
    pending_priorities: Vec<(usize, usize, Expr)>,
}

/// Builder for an atomic component inside a [`Composite`].
#[derive(Debug)]
pub struct AtomBuilder<'a> {
    composite: &'a mut Composite,
    spec: AtomSpec,
}

impl AtomBuilder<'_> {
    /// Adds a control location.
    pub fn state(&mut self, name: &str) -> usize {
        self.spec.states.push(name.to_owned());
        self.spec.states.len() - 1
    }

    /// Sets the initial location (defaults to the first).
    pub fn set_initial(&mut self, state: usize) {
        self.spec.initial = state;
    }

    /// Declares a port; its index doubles as the handle position in the
    /// vector returned by [`AtomBuilder::done`].
    pub fn port(&mut self, name: &str) -> usize {
        self.spec.ports.push(name.to_owned());
        self.spec.ports.len() - 1
    }

    /// Adds an unguarded transition.
    pub fn transition(&mut self, from: usize, to: usize, port: usize) {
        self.spec
            .transitions
            .push((from, to, port, Expr::truth(), Stmt::skip()));
    }

    /// Adds a guarded transition with update.
    pub fn transition_full(
        &mut self,
        from: usize,
        to: usize,
        port: usize,
        guard: Expr,
        update: Stmt,
    ) {
        self.spec.transitions.push((from, to, port, guard, update));
    }

    /// Finalizes the atom, returning level-local handles for its ports
    /// (in declaration order).
    pub fn done(self) -> Vec<CPort> {
        let atom_ix = self.composite.atoms.len();
        let mut handles = Vec::new();
        for port_ix in 0..self.spec.ports.len() {
            self.composite
                .ports
                .push(PortTarget::Atom { atom_ix, port_ix });
            self.composite
                .port_names
                .push(format!("{}.{}", self.spec.name, self.spec.ports[port_ix]));
            handles.push(CPort {
                level_tag: self.composite.level_tag,
                index: self.composite.ports.len() - 1,
            });
        }
        self.composite.atoms.push(self.spec);
        handles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A worker composite with an internal watchdog: the worker's start
    /// and finish are exported; internally, finish also resets the
    /// watchdog (a local interaction invisible from outside).
    fn worker() -> Composite {
        let mut w = Composite::new("Worker");
        let mut cell = w.atom("Cell");
        let idle = cell.state("Idle");
        let busy = cell.state("Busy");
        let p_start = cell.port("start");
        let p_finish = cell.port("finish");
        cell.transition(idle, busy, p_start);
        cell.transition(busy, idle, p_finish);
        let cell_ports = cell.done();
        w.export("start", cell_ports[0]);
        w.export("finish", cell_ports[1]);
        w
    }

    #[test]
    fn flatten_names_follow_hierarchy() {
        let mut plant = Composite::new("Plant");
        let w1 = plant.child(worker());
        let w2 = plant.child(worker());
        let s1 = plant.child_port(w1, "start").unwrap();
        let s2 = plant.child_port(w2, "start").unwrap();
        let f1 = plant.child_port(w1, "finish").unwrap();
        let f2 = plant.child_port(w2, "finish").unwrap();
        plant.interaction("both_start", &[s1, s2], InteractionKind::Rendezvous);
        plant.interaction("f1", &[f1], InteractionKind::Rendezvous);
        plant.interaction("f2", &[f2], InteractionKind::Rendezvous);
        let flat = plant.flatten();
        let names: Vec<&str> = flat.components().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["Plant.Worker.Cell", "Plant.Worker.Cell"]);
        assert_eq!(flat.interactions().len(), 3);
        assert!(flat.interactions()[0].name.starts_with("Plant.both_start"));
    }

    #[test]
    fn flattened_semantics_synchronize_across_levels() {
        let mut plant = Composite::new("Plant");
        let w1 = plant.child(worker());
        let w2 = plant.child(worker());
        let s1 = plant.child_port(w1, "start").unwrap();
        let s2 = plant.child_port(w2, "start").unwrap();
        let f1 = plant.child_port(w1, "finish").unwrap();
        let f2 = plant.child_port(w2, "finish").unwrap();
        plant.interaction("both_start", &[s1, s2], InteractionKind::Rendezvous);
        plant.interaction("both_finish", &[f1, f2], InteractionKind::Rendezvous);
        let flat = plant.flatten();
        // Lockstep: exactly two reachable states (both idle / both busy).
        let states = flat.reachable_states(100);
        assert_eq!(states.len(), 2);
        assert!(flat.find_deadlock(100).is_none());
    }

    #[test]
    fn three_level_hierarchy() {
        // Cluster contains two Plants, each containing two Workers.
        let mut plant = Composite::new("Plant");
        let w1 = plant.child(worker());
        let w2 = plant.child(worker());
        let s1 = plant.child_port(w1, "start").unwrap();
        let s2 = plant.child_port(w2, "start").unwrap();
        let f1 = plant.child_port(w1, "finish").unwrap();
        let f2 = plant.child_port(w2, "finish").unwrap();
        plant.interaction("both_start", &[s1, s2], InteractionKind::Rendezvous);
        plant.interaction("both_finish", &[f1, f2], InteractionKind::Rendezvous);
        plant.export("go", s1); // re-export: the joint start is triggered via w1's port
        let mut cluster = Composite::new("Cluster");
        let p1 = cluster.child(plant.clone());
        let p2 = cluster.child(plant);
        assert!(cluster.child_port(p1, "go").is_some());
        assert!(cluster.child_port(p2, "go").is_some());
        let flat = cluster.flatten();
        assert_eq!(flat.components().len(), 4);
        let names: Vec<&str> = flat.components().iter().map(|c| c.name.as_str()).collect();
        assert!(names.iter().all(|n| n.starts_with("Cluster.Plant.Worker")));
    }

    #[test]
    #[should_panic(expected = "foreign port handle")]
    fn foreign_handles_rejected() {
        let mut a = Composite::new("A");
        let mut atom = a.atom("X");
        let s = atom.state("S");
        let p = atom.port("p");
        atom.transition(s, s, p);
        let ports = atom.done();
        let mut b = Composite::new("B");
        b.interaction("bad", &[ports[0]], InteractionKind::Rendezvous);
    }

    #[test]
    fn priorities_survive_flattening() {
        let mut c = Composite::new("C");
        let mut atom = c.atom("X");
        let s = atom.state("S");
        let p1 = atom.port("p1");
        let p2 = atom.port("p2");
        atom.transition(s, s, p1);
        atom.transition(s, s, p2);
        let ports = atom.done();
        let low = c.interaction("low", &[ports[0]], InteractionKind::Rendezvous);
        let high = c.interaction("high", &[ports[1]], InteractionKind::Rendezvous);
        c.priority(low, high);
        let flat = c.flatten();
        let enabled = flat.enabled_interactions(&flat.initial_state());
        assert_eq!(enabled.len(), 1, "priority masks the low interaction");
        assert!(flat.interactions()[enabled[0].0].name.ends_with("high"));
    }
}
