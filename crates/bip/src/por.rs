//! Persistent-set reduction for the BIP deadlock search.
//!
//! A *persistent set* at a global state is a subset of its enabled
//! interactions such that nothing outside the set can affect the set's
//! interactions before one of them fires. Selective search expanding
//! only a persistent set at each state reaches every deadlock of the
//! full graph (Godefroid's persistent-set theorem — deadlock
//! preservation needs no cycle proviso, unlike safety or liveness).
//!
//! The analysis here is deliberately structural and conservative. A
//! component is a *persistent candidate* when:
//!
//! - every interaction touching one of its ports is **local**: all the
//!   interaction's ports belong to this component, so firing it can
//!   never move another component's control location;
//! - the variables its transitions and local interactions read or write
//!   are **disjoint** from the variables accessed anywhere else, so
//!   enabledness cannot flow between the candidate and the rest of the
//!   system through data; and
//! - **no priority rule** mentions any of its local interactions, so
//!   enabledness cannot flow through priorities either.
//!
//! Under those conditions the candidate's enabled local interactions
//! commute with every other interaction and stay enabled until fired —
//! exactly a persistent set. States where no candidate has an enabled
//! local interaction (or where it would not actually shrink the
//! expansion) fall back to the full set, making the reduction
//! conservative by construction.

use crate::component::ComponentId;
use crate::system::{BipSystem, InteractionId};
use std::collections::BTreeSet;
use tempo_expr::{Expr, Stmt, VarId};

/// The statically computed persistent-set oracle for one system.
#[derive(Debug, Clone)]
pub struct BipPor {
    /// Per candidate component: its local interactions (sorted).
    candidates: Vec<(ComponentId, Vec<InteractionId>)>,
}

impl BipPor {
    /// Statically analyzes the system for persistent candidates.
    #[must_use]
    pub fn analyze(sys: &BipSystem) -> BipPor {
        let n = sys.components().len();
        // Variables accessed by each component's transitions.
        let comp_vars: Vec<BTreeSet<VarId>> = sys
            .components()
            .iter()
            .map(|c| {
                let mut out = BTreeSet::new();
                for t in &c.transitions {
                    expr_vars(&t.guard, &mut out);
                    stmt_vars(&t.update, &mut out);
                }
                out
            })
            .collect();
        // Variables accessed by each interaction's guard and update.
        let inter_vars: Vec<BTreeSet<VarId>> = sys
            .interactions()
            .iter()
            .map(|i| {
                let mut out = BTreeSet::new();
                expr_vars(&i.guard, &mut out);
                stmt_vars(&i.update, &mut out);
                out
            })
            .collect();

        let mut candidates = Vec::new();
        for ci in 0..n {
            // The interactions touching any of this component's ports.
            let touching: Vec<usize> = (0..sys.interactions().len())
                .filter(|&ix| {
                    sys.interactions()[ix]
                        .ports
                        .iter()
                        .any(|&p| sys.port_owner(p).0 == ci)
                })
                .collect();
            if touching.is_empty() {
                continue; // inert component: nothing to defer to
            }
            // Local-only: every touching interaction stays inside ci.
            if !touching.iter().all(|&ix| {
                sys.interactions()[ix]
                    .ports
                    .iter()
                    .all(|&p| sys.port_owner(p).0 == ci)
            }) {
                continue;
            }
            // Priorities must not mention the local interactions.
            if sys
                .priorities()
                .iter()
                .any(|p| touching.contains(&p.low.0) || touching.contains(&p.high.0))
            {
                continue;
            }
            // Data independence: the candidate's variable footprint is
            // disjoint from everything else's.
            let mut mine = comp_vars[ci].clone();
            for &ix in &touching {
                mine.extend(inter_vars[ix].iter().copied());
            }
            let mut disjoint = true;
            for (cj, vars) in comp_vars.iter().enumerate() {
                if cj != ci && !mine.is_disjoint(vars) {
                    disjoint = false;
                    break;
                }
            }
            if disjoint {
                for (ix, vars) in inter_vars.iter().enumerate() {
                    if !touching.contains(&ix) && !mine.is_disjoint(vars) {
                        disjoint = false;
                        break;
                    }
                }
            }
            if !disjoint {
                continue;
            }
            candidates.push((
                ComponentId(ci),
                touching.into_iter().map(InteractionId).collect(),
            ));
        }
        BipPor { candidates }
    }

    /// Whether any candidate exists (otherwise the search skips the
    /// per-state lookups entirely).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.candidates.is_empty()
    }

    /// The persistent subset of `enabled` to expand, or `None` when no
    /// candidate strictly shrinks the expansion (full fallback).
    #[must_use]
    pub fn persistent(&self, enabled: &[InteractionId]) -> Option<Vec<InteractionId>> {
        for (_, local) in &self.candidates {
            let mine: Vec<InteractionId> = enabled
                .iter()
                .copied()
                .filter(|i| local.contains(i))
                .collect();
            if !mine.is_empty() && mine.len() < enabled.len() {
                return Some(mine);
            }
        }
        None
    }
}

fn expr_vars(e: &Expr, out: &mut BTreeSet<VarId>) {
    match e {
        Expr::Const(_) | Expr::Select(_) => {}
        Expr::Var(v) => {
            out.insert(*v);
        }
        Expr::Index(v, i) => {
            out.insert(*v);
            expr_vars(i, out);
        }
        Expr::Unary(_, a) => expr_vars(a, out),
        Expr::Binary(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
    }
}

fn stmt_vars(s: &Stmt, out: &mut BTreeSet<VarId>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(v, e) => {
            out.insert(*v);
            expr_vars(e, out);
        }
        Stmt::AssignIndex(v, i, e) => {
            out.insert(*v);
            expr_vars(i, out);
            expr_vars(e, out);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                stmt_vars(s, out);
            }
        }
        Stmt::If(c, t, e) => {
            expr_vars(c, out);
            stmt_vars(t, out);
            stmt_vars(e, out);
        }
        Stmt::While(c, b) => {
            expr_vars(c, out);
            stmt_vars(b, out);
        }
    }
}
