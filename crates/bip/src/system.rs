//! The composed BIP system: components glued by interactions and
//! priorities, with a centralized execution engine and an explicit-state
//! explorer.

use crate::component::{Component, ComponentId, PortId, StateId, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use tempo_expr::{Decls, Expr, Stmt, Store};
use tempo_obs::{Budget, ExploreConfig, Outcome, RunReport};

/// Identifier of an interaction (connector) in a [`BipSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InteractionId(pub usize);

/// The synchronization type of an interaction (Bozga et al., DATE 2012,
/// §IV: "rendez-vous, to express strong symmetric synchronization and
/// broadcast, to express triggered asymmetric synchronization").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionKind {
    /// All ports must be ready; all fire together.
    Rendezvous,
    /// The trigger port (the first port of the interaction) initiates;
    /// every *ready* synchron port joins (maximal progress).
    Broadcast,
}

/// An interaction: a set of ports, a kind, an optional guard and a data
/// transfer update executed before the participants' own updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Interaction {
    /// Name for diagnostics.
    pub name: String,
    /// Participating ports (at most one per component). For broadcasts
    /// the first port is the trigger.
    pub ports: Vec<PortId>,
    /// Rendezvous or broadcast.
    pub kind: InteractionKind,
    /// Guard over the global store.
    pub guard: Expr,
    /// Data transfer executed when the interaction fires.
    pub update: Stmt,
    /// Whether the engine's safety controller may block this interaction
    /// (`false` models faults and other environment events).
    pub controllable: bool,
}

/// A priority rule `low < high`: when both interactions are enabled (and
/// the condition holds), the low one is blocked.
#[derive(Debug, Clone, PartialEq)]
pub struct Priority {
    /// The interaction that yields.
    pub low: InteractionId,
    /// The interaction that dominates.
    pub high: InteractionId,
    /// The rule applies only when this condition holds.
    pub condition: Expr,
}

/// A global state of a BIP system: one control location per component
/// plus the data store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BipState {
    /// Control location of each component.
    pub control: Vec<StateId>,
    /// Data store.
    pub store: Store,
}

/// A composed BIP system.
///
/// Build with [`BipSystemBuilder`]; execute with [`Engine`](crate::Engine)
/// or explore with [`BipSystem::reachable_states`].
#[derive(Debug, Clone)]
pub struct BipSystem {
    pub(crate) decls: Decls,
    pub(crate) components: Vec<Component>,
    pub(crate) port_owner: Vec<ComponentId>,
    pub(crate) port_names: Vec<String>,
    pub(crate) interactions: Vec<Interaction>,
    pub(crate) priorities: Vec<Priority>,
}

impl BipSystem {
    /// The data declarations.
    #[must_use]
    pub fn decls(&self) -> &Decls {
        &self.decls
    }

    /// The atomic components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The interactions.
    #[must_use]
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// The priority rules.
    #[must_use]
    pub fn priorities(&self) -> &[Priority] {
        &self.priorities
    }

    /// The component owning a port.
    #[must_use]
    pub fn port_owner(&self, p: PortId) -> ComponentId {
        self.port_owner[p.0]
    }

    /// The name of a port.
    #[must_use]
    pub fn port_name(&self, p: PortId) -> &str {
        &self.port_names[p.0]
    }

    /// Looks up a component by name.
    #[must_use]
    pub fn component_by_name(&self, name: &str) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|c| c.name == name)
            .map(ComponentId)
    }

    /// The initial global state.
    #[must_use]
    pub fn initial_state(&self) -> BipState {
        BipState {
            control: self.components.iter().map(|c| c.initial).collect(),
            store: self.decls.initial_store(),
        }
    }

    /// The participants of interaction `i` in `state`: for each port, the
    /// component and a guard-enabled transition. Returns `None` if the
    /// interaction is not enabled (a rendezvous port not ready, broadcast
    /// trigger not ready, or the interaction guard false).
    #[must_use]
    pub fn enabled_participants(
        &self,
        state: &BipState,
        i: InteractionId,
    ) -> Option<Vec<(ComponentId, usize)>> {
        let inter = &self.interactions[i.0];
        if !inter
            .guard
            .eval_bool(&self.decls, &state.store, &[])
            .unwrap_or(false)
        {
            return None;
        }
        let mut participants = Vec::new();
        for (k, &port) in inter.ports.iter().enumerate() {
            let cid = self.port_owner[port.0];
            let comp = &self.components[cid.0];
            let choice = comp.transitions.iter().position(|t| {
                t.from == state.control[cid.0]
                    && t.port == port
                    && t.guard
                        .eval_bool(&self.decls, &state.store, &[])
                        .unwrap_or(false)
            });
            match (choice, inter.kind, k) {
                (Some(tix), _, _) => participants.push((cid, tix)),
                (None, InteractionKind::Rendezvous, _) => return None,
                (None, InteractionKind::Broadcast, 0) => return None, // trigger
                (None, InteractionKind::Broadcast, _) => {}           // synchron skips
            }
        }
        Some(participants)
    }

    /// All interactions enabled in `state` *after* applying priorities.
    #[must_use]
    pub fn enabled_interactions(&self, state: &BipState) -> Vec<InteractionId> {
        let raw: Vec<InteractionId> = (0..self.interactions.len())
            .map(InteractionId)
            .filter(|&i| self.enabled_participants(state, i).is_some())
            .collect();
        // Priorities filter among simultaneously enabled interactions.
        raw.iter()
            .copied()
            .filter(|&low| {
                !self.priorities.iter().any(|p| {
                    p.low == low
                        && raw.contains(&p.high)
                        && p.condition
                            .eval_bool(&self.decls, &state.store, &[])
                            .unwrap_or(false)
                })
            })
            .collect()
    }

    /// Executes interaction `i` from `state`.
    ///
    /// Returns `None` if the interaction is not enabled or an update
    /// fails. The interaction's data transfer runs first, then each
    /// participant's transition update in port order.
    #[must_use]
    pub fn execute(&self, state: &BipState, i: InteractionId) -> Option<BipState> {
        let participants = self.enabled_participants(state, i)?;
        let inter = &self.interactions[i.0];
        let mut next = state.clone();
        inter
            .update
            .execute(&self.decls, &mut next.store, &[])
            .ok()?;
        for (cid, tix) in participants {
            let t: &Transition = &self.components[cid.0].transitions[tix];
            t.update.execute(&self.decls, &mut next.store, &[]).ok()?;
            next.control[cid.0] = t.to;
        }
        Some(next)
    }

    /// Explores all reachable global states; `limit` bounds the search.
    ///
    /// Exceeding `limit` is not an error: the returned vector is then
    /// truncated at `limit` states. Use
    /// [`BipSystem::reachable_states_governed`] to distinguish a complete
    /// exploration from a truncated one.
    #[must_use]
    pub fn reachable_states(&self, limit: usize) -> Vec<BipState> {
        self.reachable_states_governed(&Budget::unlimited().with_max_states(limit as u64))
            .into_value()
    }

    /// Explores the reachable global states under a resource [`Budget`].
    ///
    /// On exhaustion the partial answer is the (genuinely reachable)
    /// states stored so far.
    pub fn reachable_states_governed(&self, budget: &Budget) -> Outcome<Vec<BipState>> {
        let gov = budget.governor();
        let mut seen: HashSet<BipState> = HashSet::new();
        let mut queue: VecDeque<BipState> = VecDeque::new();
        let mut peak = 0_usize;
        if gov.charge_state() {
            let init = self.initial_state();
            seen.insert(init.clone());
            queue.push_back(init);
            peak = 1;
        }
        let mut out = Vec::new();
        'explore: while let Some(state) = queue.pop_front() {
            if !gov.check_time() {
                break;
            }
            // Record on pop, so a budget trip mid-expansion still keeps
            // this (genuinely reachable) state in the partial answer.
            out.push(state);
            let state = out.last().expect("just pushed");
            for i in self.enabled_interactions(state) {
                if let Some(next) = self.execute(state, i) {
                    if !seen.contains(&next) {
                        if !gov.charge_state() {
                            break 'explore;
                        }
                        seen.insert(next.clone());
                        queue.push_back(next);
                    }
                }
            }
            peak = peak.max(queue.len());
        }
        let report = RunReport {
            states_explored: out.len() as u64,
            states_stored: seen.len() as u64,
            peak_waiting: peak as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        };
        gov.finish(out, report)
    }

    /// Explicit-state deadlock check: a reachable state with no enabled
    /// interaction. Returns a witness if one exists within the first
    /// `limit` stored states ([`BipSystem::find_deadlock_governed`]
    /// distinguishes "no deadlock" from "search truncated").
    #[must_use]
    pub fn find_deadlock(&self, limit: usize) -> Option<BipState> {
        self.find_deadlock_governed(&Budget::unlimited().with_max_states(limit as u64))
            .into_value()
    }

    /// Deadlock search under a resource [`Budget`]: a witness found
    /// within the budget is definitive; exhaustion yields `None` as the
    /// partial answer ("no deadlock in the explored portion").
    ///
    /// Applies the default [`ExploreConfig`] — see
    /// [`BipSystem::find_deadlock_with`] for the knobs.
    pub fn find_deadlock_governed(&self, budget: &Budget) -> Outcome<Option<BipState>> {
        self.find_deadlock_with(ExploreConfig::default(), budget)
    }

    /// [`BipSystem::find_deadlock_governed`] with explicit reduction
    /// knobs. The `por` knob enables the persistent-set reduction of
    /// [`crate::BipPor`] — sound for deadlock search by Godefroid's
    /// theorem, and conservative: states where no persistent candidate
    /// shrinks the expansion are expanded in full. The `symmetry` knob
    /// is currently ignored by the BIP engine (interactions are wired to
    /// concrete ports, so there is no template identity to fold on).
    pub fn find_deadlock_with(
        &self,
        config: ExploreConfig,
        budget: &Budget,
    ) -> Outcome<Option<BipState>> {
        let por = config
            .por
            .then(|| crate::BipPor::analyze(self))
            .filter(crate::BipPor::is_active);
        let gov = budget.governor();
        let mut seen: HashSet<BipState> = HashSet::new();
        let mut queue: VecDeque<BipState> = VecDeque::new();
        let mut peak = 0_usize;
        let mut explored = 0_usize;
        let mut por_ample = 0_usize;
        let mut por_fallback = 0_usize;
        if gov.charge_state() {
            let init = self.initial_state();
            seen.insert(init.clone());
            queue.push_back(init);
            peak = 1;
        }
        'explore: while let Some(state) = queue.pop_front() {
            if !gov.check_time() {
                break;
            }
            explored += 1;
            let enabled = self.enabled_interactions(&state);
            if enabled.is_empty() {
                let report = RunReport {
                    states_explored: explored as u64,
                    states_stored: seen.len() as u64,
                    peak_waiting: peak as u64,
                    por_ample_states: por_ample as u64,
                    por_fallback_states: por_fallback as u64,
                    wall_time: gov.elapsed(),
                    ..RunReport::default()
                };
                return gov.finish_complete(Some(state), report);
            }
            let expand = match por.as_ref().and_then(|p| p.persistent(&enabled)) {
                Some(mine) => {
                    por_ample += 1;
                    mine
                }
                None => {
                    if por.is_some() {
                        por_fallback += 1;
                    }
                    enabled
                }
            };
            for i in expand {
                if let Some(next) = self.execute(&state, i) {
                    if !seen.contains(&next) {
                        if !gov.charge_state() {
                            break 'explore;
                        }
                        seen.insert(next.clone());
                        queue.push_back(next);
                    }
                }
            }
            peak = peak.max(queue.len());
        }
        let report = RunReport {
            states_explored: explored as u64,
            states_stored: seen.len() as u64,
            peak_waiting: peak as u64,
            por_ample_states: por_ample as u64,
            por_fallback_states: por_fallback as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        };
        gov.finish(None, report)
    }
}

/// Builder for [`BipSystem`] models.
///
/// ```
/// use tempo_bip::BipSystemBuilder;
/// let mut b = BipSystemBuilder::new();
/// let mut c = b.component("Worker");
/// let idle = c.state("Idle");
/// let busy = c.state("Busy");
/// let start = c.port("start");
/// let finish = c.port("finish");
/// c.transition(idle, busy, start);
/// c.transition(busy, idle, finish);
/// c.done();
/// b.rendezvous("go", &[start]);
/// b.rendezvous("rest", &[finish]);
/// let sys = b.build();
/// assert_eq!(sys.reachable_states(100).len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct BipSystemBuilder {
    decls: Decls,
    components: Vec<Component>,
    port_owner: Vec<ComponentId>,
    port_names: Vec<String>,
    interactions: Vec<Interaction>,
    priorities: Vec<Priority>,
}

impl BipSystemBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        BipSystemBuilder::default()
    }

    /// Access to data declarations.
    pub fn decls_mut(&mut self) -> &mut Decls {
        &mut self.decls
    }

    /// Starts building an atomic component.
    pub fn component(&mut self, name: &str) -> ComponentBuilder<'_> {
        ComponentBuilder {
            parent: self,
            component: Component {
                name: name.to_owned(),
                states: Vec::new(),
                ports: Vec::new(),
                transitions: Vec::new(),
                initial: StateId(0),
            },
        }
    }

    /// Adds a rendezvous interaction over the given ports.
    pub fn rendezvous(&mut self, name: &str, ports: &[PortId]) -> InteractionId {
        self.interaction(name, ports, InteractionKind::Rendezvous)
    }

    /// Adds a broadcast interaction (first port is the trigger).
    pub fn broadcast(&mut self, name: &str, ports: &[PortId]) -> InteractionId {
        self.interaction(name, ports, InteractionKind::Broadcast)
    }

    /// Adds an interaction with explicit kind.
    ///
    /// # Panics
    ///
    /// Panics if two ports belong to the same component or `ports` is
    /// empty.
    pub fn interaction(
        &mut self,
        name: &str,
        ports: &[PortId],
        kind: InteractionKind,
    ) -> InteractionId {
        assert!(!ports.is_empty(), "interaction {name} has no ports");
        let mut owners: Vec<ComponentId> = ports.iter().map(|p| self.port_owner[p.0]).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(
            owners.len(),
            ports.len(),
            "interaction {name} uses two ports of one component"
        );
        self.interactions.push(Interaction {
            name: name.to_owned(),
            ports: ports.to_vec(),
            kind,
            guard: Expr::truth(),
            update: Stmt::skip(),
            controllable: true,
        });
        InteractionId(self.interactions.len() - 1)
    }

    /// Sets the guard of an interaction.
    pub fn set_guard(&mut self, i: InteractionId, guard: Expr) {
        self.interactions[i.0].guard = guard;
    }

    /// Sets the data transfer of an interaction.
    pub fn set_update(&mut self, i: InteractionId, update: Stmt) {
        self.interactions[i.0].update = update;
    }

    /// Marks an interaction as uncontrollable (a fault/environment event
    /// the safety controller cannot block).
    pub fn set_uncontrollable(&mut self, i: InteractionId) {
        self.interactions[i.0].controllable = false;
    }

    /// Adds the priority rule `low < high` (unconditional).
    pub fn priority(&mut self, low: InteractionId, high: InteractionId) {
        self.priorities.push(Priority {
            low,
            high,
            condition: Expr::truth(),
        });
    }

    /// Adds a conditional priority rule.
    pub fn priority_when(&mut self, low: InteractionId, high: InteractionId, condition: Expr) {
        self.priorities.push(Priority {
            low,
            high,
            condition,
        });
    }

    /// Finalizes the system.
    ///
    /// # Panics
    ///
    /// Panics if a priority rule references out-of-range interactions.
    #[must_use]
    pub fn build(self) -> BipSystem {
        for p in &self.priorities {
            assert!(
                p.low.0 < self.interactions.len() && p.high.0 < self.interactions.len(),
                "priority references unknown interaction"
            );
        }
        BipSystem {
            decls: self.decls,
            components: self.components,
            port_owner: self.port_owner,
            port_names: self.port_names,
            interactions: self.interactions,
            priorities: self.priorities,
        }
    }
}

/// Builder for one atomic component.
#[derive(Debug)]
pub struct ComponentBuilder<'a> {
    parent: &'a mut BipSystemBuilder,
    component: Component,
}

impl ComponentBuilder<'_> {
    /// Adds a control location.
    pub fn state(&mut self, name: &str) -> StateId {
        self.component.states.push(name.to_owned());
        StateId(self.component.states.len() - 1)
    }

    /// Sets the initial control location (defaults to the first).
    pub fn set_initial(&mut self, s: StateId) {
        self.component.initial = s;
    }

    /// Declares a port on this component.
    pub fn port(&mut self, name: &str) -> PortId {
        let pid = PortId(self.parent.port_owner.len());
        self.parent
            .port_owner
            .push(ComponentId(self.parent.components.len()));
        self.parent
            .port_names
            .push(format!("{}.{}", self.component.name, name));
        self.component.ports.push(pid);
        pid
    }

    /// Adds an unguarded transition.
    pub fn transition(&mut self, from: StateId, to: StateId, port: PortId) {
        self.transition_full(from, to, port, Expr::truth(), Stmt::skip());
    }

    /// Adds a transition with guard and update.
    pub fn transition_full(
        &mut self,
        from: StateId,
        to: StateId,
        port: PortId,
        guard: Expr,
        update: Stmt,
    ) {
        self.component.transitions.push(Transition {
            from,
            to,
            port,
            guard,
            update,
        });
    }

    /// Finalizes the component.
    pub fn done(self) -> ComponentId {
        self.parent.components.push(self.component);
        ComponentId(self.parent.components.len() - 1)
    }
}

/// The centralized BIP execution engine: repeatedly picks one enabled
/// interaction (uniformly at random among the maximal-priority enabled
/// set) and executes it — the operational semantics implemented by BIP's
/// engines (Bozga et al., DATE 2012, §IV).
#[derive(Debug)]
pub struct Engine<'s> {
    sys: &'s BipSystem,
    state: BipState,
    rng: StdRng,
    /// Optional filter applied before choosing (the safety controller).
    allowed: Option<HashMap<BipState, Vec<InteractionId>>>,
    /// Log of executed interaction names.
    pub trace: Vec<String>,
}

impl<'s> Engine<'s> {
    /// Creates an engine at the initial state.
    #[must_use]
    pub fn new(sys: &'s BipSystem, seed: u64) -> Self {
        Engine {
            sys,
            state: sys.initial_state(),
            rng: StdRng::seed_from_u64(seed),
            allowed: None,
            trace: Vec::new(),
        }
    }

    /// Installs a controller: in states present in the map, only the
    /// listed controllable interactions may fire (uncontrollable ones are
    /// never blocked).
    pub fn install_controller(&mut self, allowed: HashMap<BipState, Vec<InteractionId>>) {
        self.allowed = Some(allowed);
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> &BipState {
        &self.state
    }

    /// Executes one engine step. Returns the fired interaction, or `None`
    /// on deadlock (or full controller blockage).
    pub fn step(&mut self) -> Option<InteractionId> {
        let mut enabled = self.sys.enabled_interactions(&self.state);
        if let Some(ctrl) = &self.allowed {
            if let Some(ok) = ctrl.get(&self.state) {
                enabled.retain(|i| !self.sys.interactions[i.0].controllable || ok.contains(i));
            }
        }
        if enabled.is_empty() {
            return None;
        }
        let i = enabled[self.rng.gen_range(0..enabled.len())];
        let next = self.sys.execute(&self.state, i)?;
        self.trace.push(self.sys.interactions[i.0].name.clone());
        self.state = next;
        Some(i)
    }

    /// Runs up to `steps` engine steps, returning how many fired.
    pub fn run(&mut self, steps: usize) -> usize {
        (0..steps).take_while(|_| self.step().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Producer/consumer through a 1-place buffer variable.
    fn producer_consumer() -> (BipSystem, InteractionId, InteractionId) {
        let mut b = BipSystemBuilder::new();
        let full = b.decls_mut().int("full", 0, 1);
        let mut p = b.component("Producer");
        let idle = p.state("Idle");
        let put = p.port("put");
        p.transition(idle, idle, put);
        p.done();
        let mut c = b.component("Consumer");
        let waiting = c.state("Waiting");
        let get = c.port("get");
        c.transition(waiting, waiting, get);
        c.done();
        let produce = b.rendezvous("produce", &[put]);
        b.set_guard(produce, Expr::var(full).eq(Expr::konst(0)));
        b.set_update(produce, Stmt::assign(full, Expr::konst(1)));
        let consume = b.rendezvous("consume", &[get]);
        b.set_guard(consume, Expr::var(full).eq(Expr::konst(1)));
        b.set_update(consume, Stmt::assign(full, Expr::konst(0)));
        (b.build(), produce, consume)
    }

    #[test]
    fn engine_alternates_producer_consumer() {
        let (sys, produce, consume) = producer_consumer();
        let mut engine = Engine::new(&sys, 42);
        for step in 0..10 {
            let fired = engine.step().expect("never deadlocks");
            // The buffer forces strict alternation.
            if step % 2 == 0 {
                assert_eq!(fired, produce);
            } else {
                assert_eq!(fired, consume);
            }
        }
    }

    #[test]
    fn reachability_and_deadlock() {
        let (sys, _, _) = producer_consumer();
        let states = sys.reachable_states(100);
        assert_eq!(states.len(), 2, "full = 0 and full = 1");
        assert!(sys.find_deadlock(100).is_none());
    }

    #[test]
    fn rendezvous_requires_all_ports() {
        let mut b = BipSystemBuilder::new();
        let mut p = b.component("A");
        let a0 = p.state("S0");
        let a1 = p.state("S1");
        let pa = p.port("a");
        p.transition(a0, a1, pa);
        p.done();
        let mut q = b.component("B");
        let b0 = q.state("T0");
        let b1 = q.state("T1");
        let pb = q.port("b");
        // B only offers b from T1, which is unreachable.
        q.transition(b1, b0, pb);
        q.done();
        b.rendezvous("ab", &[pa, pb]);
        let sys = b.build();
        let init = sys.initial_state();
        assert!(sys.enabled_interactions(&init).is_empty());
        assert!(sys.find_deadlock(10).is_some());
    }

    #[test]
    fn broadcast_takes_ready_synchrons() {
        let mut b = BipSystemBuilder::new();
        let mut t = b.component("Trigger");
        let t0 = t.state("T0");
        let t1 = t.state("T1");
        let fire = t.port("fire");
        t.transition(t0, t1, fire);
        t.done();
        let mut r1 = b.component("Ready");
        let r1s = r1.state("S");
        let r1p = r1.port("hear");
        r1.transition(r1s, r1s, r1p);
        let r1_id = r1.done();
        let mut r2 = b.component("NotReady");
        let r2a = r2.state("A");
        let r2b = r2.state("B");
        let r2p = r2.port("hear");
        // Offers hear only from B (unreachable initially).
        r2.transition(r2b, r2a, r2p);
        r2.done();
        b.broadcast("alarm", &[fire, r1p, r2p]);
        let sys = b.build();
        let init = sys.initial_state();
        let parts = sys
            .enabled_participants(&init, InteractionId(0))
            .expect("trigger ready");
        // Trigger + the one ready synchron.
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, ComponentId(0));
        assert_eq!(parts[1].0, r1_id);
    }

    #[test]
    fn priorities_filter_enabled_set() {
        let mut b = BipSystemBuilder::new();
        let mut c = b.component("C");
        let s = c.state("S");
        let p1 = c.port("p1");
        let p2 = c.port("p2");
        c.transition(s, s, p1);
        c.transition(s, s, p2);
        c.done();
        let low = b.rendezvous("low", &[p1]);
        let high = b.rendezvous("high", &[p2]);
        b.priority(low, high);
        let sys = b.build();
        let enabled = sys.enabled_interactions(&sys.initial_state());
        assert_eq!(enabled, vec![high], "low is masked by high");
    }

    #[test]
    fn conditional_priority() {
        let mut b = BipSystemBuilder::new();
        let gate = b.decls_mut().int("gate", 0, 1);
        let mut c = b.component("C");
        let s = c.state("S");
        let p1 = c.port("p1");
        let p2 = c.port("p2");
        c.transition(s, s, p1);
        c.transition(s, s, p2);
        c.done();
        let low = b.rendezvous("low", &[p1]);
        let high = b.rendezvous("high", &[p2]);
        b.priority_when(low, high, Expr::var(gate).eq(Expr::konst(1)));
        let sys = b.build();
        // gate == 0: both enabled.
        assert_eq!(sys.enabled_interactions(&sys.initial_state()).len(), 2);
    }

    /// Two independent bounded counters: each component owns a local
    /// interaction incrementing its own variable up to 3. The only
    /// deadlock is (3, 3).
    fn independent_counters(shared_guard: bool) -> BipSystem {
        let mut b = BipSystemBuilder::new();
        let x0 = b.decls_mut().int("x0", 0, 3);
        let x1 = b.decls_mut().int("x1", 0, 3);
        let mut ports = Vec::new();
        for name in ["C0", "C1"] {
            let mut c = b.component(name);
            let s = c.state("S");
            let p = c.port("inc");
            c.transition(s, s, p);
            c.done();
            ports.push(p);
        }
        for (k, (&p, var)) in ports.iter().zip([x0, x1]).enumerate() {
            let i = b.rendezvous(if k == 0 { "inc0" } else { "inc1" }, &[p]);
            let guard = Expr::var(var).lt(Expr::konst(3));
            b.set_guard(
                i,
                if shared_guard {
                    // Reading the *other* counter couples the components.
                    guard & Expr::var(if k == 0 { x1 } else { x0 }).ge(Expr::konst(0))
                } else {
                    guard
                },
            );
            b.set_update(i, Stmt::assign(var, Expr::var(var) + Expr::konst(1)));
        }
        b.build()
    }

    #[test]
    fn persistent_set_reduces_independent_counters() {
        let sys = independent_counters(false);
        let full = sys.find_deadlock_with(ExploreConfig::unreduced(), &Budget::unlimited());
        let reduced = sys.find_deadlock_with(ExploreConfig::default(), &Budget::unlimited());
        assert!(full.value().is_some(), "the (3, 3) deadlock exists");
        assert!(
            reduced.value().is_some(),
            "reduction preserves the deadlock"
        );
        assert_eq!(full.value(), reduced.value(), "same unique witness");
        assert!(
            reduced.report().states_explored < full.report().states_explored,
            "reduced {} vs full {}",
            reduced.report().states_explored,
            full.report().states_explored
        );
        assert!(reduced.report().por_ample_states > 0);
        assert_eq!(full.report().por_ample_states, 0);
    }

    #[test]
    fn persistent_set_falls_back_on_shared_data() {
        let sys = independent_counters(true);
        assert!(
            !crate::BipPor::analyze(&sys).is_active(),
            "cross-component guard reads defeat the candidate analysis"
        );
        let reduced = sys.find_deadlock_with(ExploreConfig::default(), &Budget::unlimited());
        let full = sys.find_deadlock_with(ExploreConfig::unreduced(), &Budget::unlimited());
        assert_eq!(full.value(), reduced.value());
        assert_eq!(
            full.report().states_explored,
            reduced.report().states_explored,
            "inactive reduction must not change the exploration"
        );
    }

    #[test]
    fn persistent_set_ignores_prioritized_interactions() {
        // Like the independent counters, but a priority rule couples the
        // two local interactions: the analysis must refuse both.
        let mut b = BipSystemBuilder::new();
        let x0 = b.decls_mut().int("x0", 0, 3);
        let x1 = b.decls_mut().int("x1", 0, 3);
        let mut ports = Vec::new();
        for name in ["C0", "C1"] {
            let mut c = b.component(name);
            let s = c.state("S");
            let p = c.port("inc");
            c.transition(s, s, p);
            c.done();
            ports.push(p);
        }
        let i0 = b.rendezvous("inc0", &[ports[0]]);
        b.set_guard(i0, Expr::var(x0).lt(Expr::konst(3)));
        b.set_update(i0, Stmt::assign(x0, Expr::var(x0) + Expr::konst(1)));
        let i1 = b.rendezvous("inc1", &[ports[1]]);
        b.set_guard(i1, Expr::var(x1).lt(Expr::konst(3)));
        b.set_update(i1, Stmt::assign(x1, Expr::var(x1) + Expr::konst(1)));
        b.priority(i0, i1);
        let sys = b.build();
        assert!(!crate::BipPor::analyze(&sys).is_active());
        let full = sys.find_deadlock_with(ExploreConfig::unreduced(), &Budget::unlimited());
        let reduced = sys.find_deadlock_with(ExploreConfig::default(), &Budget::unlimited());
        assert_eq!(full.value(), reduced.value());
    }

    #[test]
    fn interaction_data_transfer_runs_first() {
        let mut b = BipSystemBuilder::new();
        let x = b.decls_mut().int("x", 0, 10);
        let y = b.decls_mut().int("y", 0, 10);
        let mut c = b.component("C");
        let s = c.state("S");
        let p = c.port("p");
        // The component's update reads x (already set by the connector).
        c.transition_full(s, s, p, Expr::truth(), Stmt::assign(y, Expr::var(x)));
        c.done();
        let i = b.rendezvous("go", &[p]);
        b.set_update(i, Stmt::assign(x, Expr::konst(7)));
        let sys = b.build();
        let next = sys.execute(&sys.initial_state(), i).unwrap();
        assert_eq!(next.store.get(y), 7);
    }
}
