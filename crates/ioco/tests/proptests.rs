//! Property-based tests for the ioco theory on randomly generated LTSs.

use proptest::prelude::*;
use tempo_ioco::{
    check_ioco, Label, Lts, LtsIut, LtsStateId, SuspensionAutomaton, TestGenerator, TestVerdict,
};

const STATES: usize = 4;
const INPUTS: [&str; 2] = ["a", "b"];
const OUTPUTS: [&str; 2] = ["x", "y"];

#[derive(Debug, Clone)]
struct Tr {
    from: usize,
    kind: u8, // 0 input, 1 output, 2 tau
    name: usize,
    to: usize,
}

/// Random *strongly convergent* LTSs (the ioco testing hypothesis):
/// τ edges only go to strictly larger state indices, so no τ-cycles.
fn arb_lts() -> impl Strategy<Value = Lts> {
    prop::collection::vec(
        (0..STATES, 0..3_u8, 0..2_usize, 0..STATES).prop_map(|(from, kind, name, to)| Tr {
            from,
            kind,
            name,
            to,
        }),
        1..10,
    )
    .prop_map(|trs| {
        let mut l = Lts::new();
        for i in 0..STATES {
            l.state(&format!("s{i}"));
        }
        for t in trs {
            let label = match t.kind {
                0 => Label::input(INPUTS[t.name]),
                1 => Label::output(OUTPUTS[t.name]),
                _ => {
                    if t.to <= t.from {
                        continue; // would create a τ-cycle: drop
                    }
                    Label::Tau
                }
            };
            l.transition(LtsStateId(t.from), label, LtsStateId(t.to));
        }
        l
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ioco_is_reflexive(l in arb_lts()) {
        prop_assert!(check_ioco(&l, &l).is_ok());
    }

    #[test]
    fn fresh_output_always_violates(l in arb_lts()) {
        // Adding an output the specification never produces from the
        // initial state is observable after the empty trace.
        let mut mutant = l.clone();
        mutant.transition(LtsStateId(0), Label::output("zzz"), LtsStateId(0));
        let v = check_ioco(&mutant, &l).unwrap_err();
        prop_assert!(
            v.trace.is_empty(),
            "the fresh output is caught immediately, got trace {:?}",
            v.trace
        );
    }

    #[test]
    fn testing_is_sound_against_self(l in arb_lts(), seed in 0_u64..1000) {
        let mut gen = TestGenerator::new(&l, seed);
        let mut iut = LtsIut::new(l.clone(), seed.wrapping_add(1));
        for _ in 0..20 {
            let v = gen.online_test(&mut iut, 12);
            prop_assert!(
                !matches!(v, TestVerdict::Fail(_, _)),
                "an implementation never fails tests from its own model: {v:?}"
            );
        }
    }

    #[test]
    fn suspension_automaton_is_trace_equivalent(l in arb_lts()) {
        let sa = SuspensionAutomaton::build(&l);
        // Walk a few suspension traces of the SA and compare the state
        // sets with the direct computation.
        let mut stack = vec![(sa.initial(), Vec::new())];
        let mut visited = 0;
        while let Some((s, trace)) = stack.pop() {
            visited += 1;
            if visited > 200 || trace.len() > 4 {
                continue;
            }
            prop_assert_eq!(sa.state_set(s), &l.after_trace(&trace));
            for (from, e, to) in sa.transitions() {
                if from == s {
                    let mut t = trace.clone();
                    t.push(e.clone());
                    stack.push((to, t));
                }
            }
        }
    }

    #[test]
    fn out_sets_never_empty_on_sa_states(l in arb_lts()) {
        // Every suspension-automaton state offers at least one output or
        // quiescence — the ioco totality property `out(q) ≠ ∅` (a state
        // without outputs is quiescent, which is itself an observation).
        let sa = SuspensionAutomaton::build(&l);
        for s in 0..sa.num_states() {
            // States reached by δ only contain quiescent states, which
            // stay quiescent: out contains δ. States with outputs have
            // them. Either way, non-empty — unless the state set has a
            // τ-divergence... which finite LTSs model as a τ-loop, whose
            // states are not quiescent but may lack outputs entirely.
            // On convergent models, out(q) is never empty: a state with
            // no outputs is quiescent, which is itself an observation.
            prop_assert!(!sa.outputs_of(s).is_empty());
        }
    }
}
