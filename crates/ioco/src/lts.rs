//! Labelled transition systems with inputs, outputs and internal steps:
//! the models of the ioco testing theory (Tretmans; surveyed in Bozga et
//! al., DATE 2012, §V).
//!
//! As in the ioco literature, models are assumed *strongly convergent*
//! (no infinite τ-runs): a τ-divergent state without outputs has an
//! empty `out` set, which makes quiescence unobservable there and the
//! theory's verdicts arbitrary. The builders do not forbid τ-cycles, but
//! the conformance checker and testers are only meaningful on convergent
//! models.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an LTS state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LtsStateId(pub usize);

/// A transition label: input (`?a`), output (`!x`) or internal (`τ`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// An input action (controlled by the tester/environment).
    Input(String),
    /// An output action (controlled by the system).
    Output(String),
    /// An internal, unobservable step.
    Tau,
}

impl Label {
    /// Input label.
    #[must_use]
    pub fn input(name: &str) -> Label {
        Label::Input(name.to_owned())
    }

    /// Output label.
    #[must_use]
    pub fn output(name: &str) -> Label {
        Label::Output(name.to_owned())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Input(a) => write!(f, "?{a}"),
            Label::Output(x) => write!(f, "!{x}"),
            Label::Tau => write!(f, "τ"),
        }
    }
}

/// An observable event of a suspension trace: an input, an output, or
/// quiescence (`δ`, the observable absence of outputs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Event {
    /// An input action.
    Input(String),
    /// An output action.
    Output(String),
    /// Quiescence.
    Delta,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Input(a) => write!(f, "?{a}"),
            Event::Output(x) => write!(f, "!{x}"),
            Event::Delta => write!(f, "δ"),
        }
    }
}

/// A labelled transition system with designated input and output
/// alphabets.
///
/// ```
/// use tempo_ioco::{Lts, Label};
/// let mut l = Lts::new();
/// let s0 = l.state("s0");
/// let s1 = l.state("s1");
/// l.transition(s0, Label::input("coin"), s1);
/// l.transition(s1, Label::output("coffee"), s0);
/// assert_eq!(l.inputs().count(), 1);
/// assert_eq!(l.outputs().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lts {
    state_names: Vec<String>,
    transitions: Vec<(LtsStateId, Label, LtsStateId)>,
    initial: LtsStateId,
}

impl Default for Lts {
    fn default() -> Self {
        Lts::new()
    }
}

impl Lts {
    /// Creates an empty LTS (the first added state becomes initial).
    #[must_use]
    pub fn new() -> Self {
        Lts {
            state_names: Vec::new(),
            transitions: Vec::new(),
            initial: LtsStateId(0),
        }
    }

    /// Adds a state.
    pub fn state(&mut self, name: &str) -> LtsStateId {
        self.state_names.push(name.to_owned());
        LtsStateId(self.state_names.len() - 1)
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, s: LtsStateId) {
        self.initial = s;
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> LtsStateId {
        self.initial
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// The name of a state.
    #[must_use]
    pub fn state_name(&self, s: LtsStateId) -> &str {
        &self.state_names[s.0]
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn transition(&mut self, from: LtsStateId, label: Label, to: LtsStateId) {
        assert!(
            from.0 < self.state_names.len() && to.0 < self.state_names.len(),
            "transition references unknown state"
        );
        self.transitions.push((from, label, to));
    }

    /// All transitions.
    #[must_use]
    pub fn transitions(&self) -> &[(LtsStateId, Label, LtsStateId)] {
        &self.transitions
    }

    /// The input alphabet (names occurring on input transitions).
    pub fn inputs(&self) -> impl Iterator<Item = &str> + '_ {
        let mut seen: Vec<&str> = self
            .transitions
            .iter()
            .filter_map(|(_, l, _)| match l {
                Label::Input(a) => Some(a.as_str()),
                _ => None,
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// The output alphabet.
    pub fn outputs(&self) -> impl Iterator<Item = &str> + '_ {
        let mut seen: Vec<&str> = self
            .transitions
            .iter()
            .filter_map(|(_, l, _)| match l {
                Label::Output(x) => Some(x.as_str()),
                _ => None,
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// The τ-closure of a set of states.
    #[must_use]
    pub fn tau_closure(&self, states: &BTreeSet<LtsStateId>) -> BTreeSet<LtsStateId> {
        let mut closed = states.clone();
        let mut stack: Vec<LtsStateId> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (from, l, to) in &self.transitions {
                if *from == s && *l == Label::Tau && !closed.contains(to) {
                    closed.insert(*to);
                    stack.push(*to);
                }
            }
        }
        closed
    }

    /// The τ-closed initial state set.
    #[must_use]
    pub fn initial_set(&self) -> BTreeSet<LtsStateId> {
        self.tau_closure(&BTreeSet::from([self.initial]))
    }

    /// `states after label`: τ-closed successors under a visible label.
    #[must_use]
    pub fn step(&self, states: &BTreeSet<LtsStateId>, label: &Label) -> BTreeSet<LtsStateId> {
        let mut next = BTreeSet::new();
        for s in states {
            for (from, l, to) in &self.transitions {
                if from == s && l == label {
                    next.insert(*to);
                }
            }
        }
        self.tau_closure(&next)
    }

    /// Whether a state is quiescent: no output and no τ transition.
    #[must_use]
    pub fn is_quiescent(&self, s: LtsStateId) -> bool {
        !self
            .transitions
            .iter()
            .any(|(from, l, _)| *from == s && matches!(l, Label::Output(_) | Label::Tau))
    }

    /// `out(states)`: the set of observable "outputs" — output actions
    /// enabled in some state, plus `δ` if some state is quiescent.
    #[must_use]
    pub fn out_set(&self, states: &BTreeSet<LtsStateId>) -> BTreeSet<Event> {
        let mut out = BTreeSet::new();
        for s in states {
            for (from, l, _) in &self.transitions {
                if from == s {
                    if let Label::Output(x) = l {
                        out.insert(Event::Output(x.clone()));
                    }
                }
            }
            if self.is_quiescent(*s) {
                out.insert(Event::Delta);
            }
        }
        out
    }

    /// The inputs enabled in some state of the set.
    #[must_use]
    pub fn enabled_inputs(&self, states: &BTreeSet<LtsStateId>) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in states {
            for (from, l, _) in &self.transitions {
                if from == s {
                    if let Label::Input(a) = l {
                        out.insert(a.clone());
                    }
                }
            }
        }
        out
    }

    /// `states after event` in the suspension automaton: inputs/outputs
    /// step; `δ` keeps exactly the quiescent states.
    #[must_use]
    pub fn after_event(
        &self,
        states: &BTreeSet<LtsStateId>,
        event: &Event,
    ) -> BTreeSet<LtsStateId> {
        match event {
            Event::Input(a) => self.step(states, &Label::Input(a.clone())),
            Event::Output(x) => self.step(states, &Label::Output(x.clone())),
            Event::Delta => states
                .iter()
                .copied()
                .filter(|&s| self.is_quiescent(s))
                .collect(),
        }
    }

    /// `initial after σ` for a suspension trace σ.
    #[must_use]
    pub fn after_trace(&self, trace: &[Event]) -> BTreeSet<LtsStateId> {
        let mut set = self.initial_set();
        for e in trace {
            set = self.after_event(&set, e);
            if set.is_empty() {
                break;
            }
        }
        set
    }

    /// Whether every state is input-enabled for every input of `alphabet`
    /// (the ioco *testing hypothesis* on implementations).
    #[must_use]
    pub fn is_input_enabled(&self, alphabet: &[&str]) -> bool {
        (0..self.state_names.len()).all(|s| {
            let set = self.tau_closure(&BTreeSet::from([LtsStateId(s)]));
            alphabet.iter().all(|a| {
                set.iter().any(|t| {
                    self.transitions
                        .iter()
                        .any(|(from, l, _)| from == t && *l == Label::Input((*a).to_owned()))
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A coffee machine: coin? then (coffee! or tea!); a τ branch models
    /// an internal choice.
    fn machine() -> Lts {
        let mut l = Lts::new();
        let s0 = l.state("idle");
        let s1 = l.state("paid");
        let s2 = l.state("brewing");
        l.transition(s0, Label::input("coin"), s1);
        l.transition(s1, Label::Tau, s2);
        l.transition(s1, Label::output("tea"), s0);
        l.transition(s2, Label::output("coffee"), s0);
        l
    }

    #[test]
    fn tau_closure_and_steps() {
        let l = machine();
        let init = l.initial_set();
        assert_eq!(init.len(), 1);
        let paid = l.step(&init, &Label::input("coin"));
        // paid τ-closes into brewing.
        assert_eq!(paid.len(), 2);
    }

    #[test]
    fn out_sets_and_quiescence() {
        let l = machine();
        let init = l.initial_set();
        let out = l.out_set(&init);
        assert_eq!(out, BTreeSet::from([Event::Delta]), "idle is quiescent");
        let paid = l.step(&init, &Label::input("coin"));
        let out = l.out_set(&paid);
        assert!(out.contains(&Event::Output("tea".to_owned())));
        assert!(out.contains(&Event::Output("coffee".to_owned())));
        assert!(
            !out.contains(&Event::Delta),
            "an output or τ is always possible"
        );
    }

    #[test]
    fn suspension_traces() {
        let l = machine();
        let after = l.after_trace(&[
            Event::Delta,
            Event::Input("coin".to_owned()),
            Event::Output("coffee".to_owned()),
        ]);
        assert_eq!(after, l.initial_set());
        let dead = l.after_trace(&[Event::Output("coffee".to_owned())]);
        assert!(dead.is_empty(), "no coffee without a coin");
    }

    #[test]
    fn input_enabledness() {
        let l = machine();
        assert!(!l.is_input_enabled(&["coin"]), "paid does not accept coin");
        let mut ie = machine();
        // Make it input-enabled by adding self-loops.
        let s1 = LtsStateId(1);
        let s2 = LtsStateId(2);
        ie.transition(s1, Label::input("coin"), s1);
        ie.transition(s2, Label::input("coin"), s2);
        assert!(ie.is_input_enabled(&["coin"]));
    }

    #[test]
    fn alphabets() {
        let l = machine();
        assert_eq!(l.inputs().collect::<Vec<_>>(), vec!["coin"]);
        assert_eq!(l.outputs().collect::<Vec<_>>(), vec!["coffee", "tea"]);
    }
}
