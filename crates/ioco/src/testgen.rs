//! Test-case generation and execution: the TorX-style algorithm that is
//! *sound* (only non-conforming implementations fail) and *exhaustive in
//! the limit* (every non-conforming implementation fails some generated
//! test).

use crate::lts::{Event, Lts, LtsStateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The verdict of a test execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestVerdict {
    /// No non-conformance observed.
    Pass,
    /// The implementation produced an observation the specification does
    /// not allow; carries the trace executed so far and the observation.
    Fail(Vec<Event>, Event),
    /// The test could not be completed (e.g. the implementation refused
    /// an input, violating the testing hypothesis).
    Inconclusive(Vec<Event>),
}

impl TestVerdict {
    /// Whether the verdict is `Pass`.
    #[must_use]
    pub fn is_pass(&self) -> bool {
        matches!(self, TestVerdict::Pass)
    }
}

/// A test case: a finite decision tree over stimuli and observations, as
/// generated from a specification. Leaves are verdicts; `Observe` nodes
/// map every possible observation to a subtree (observations absent from
/// the map are specification violations, i.e. immediate `Fail`).
#[derive(Debug, Clone, PartialEq)]
pub enum TestCase {
    /// Stop testing with `Pass`.
    Stop,
    /// Apply an input, then continue.
    Stimulate(String, Box<TestCase>),
    /// Observe the implementation: allowed observations continue with
    /// their subtree, all others fail.
    Observe(Vec<(Event, TestCase)>),
}

impl TestCase {
    /// The depth (longest stimulus/observation path) of the test.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            TestCase::Stop => 0,
            TestCase::Stimulate(_, t) => 1 + t.depth(),
            TestCase::Observe(branches) => {
                1 + branches.iter().map(|(_, t)| t.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            TestCase::Stop => 1,
            TestCase::Stimulate(_, t) => 1 + t.size(),
            TestCase::Observe(branches) => {
                1 + branches.iter().map(|(_, t)| t.size()).sum::<usize>()
            }
        }
    }
}

/// An implementation under test, accessed as a black box (the ioco
/// *testing hypothesis*: it behaves like some input-enabled LTS).
pub trait Iut {
    /// Resets the IUT to its initial state.
    fn reset(&mut self);
    /// Offers an input; returns `false` if refused (hypothesis
    /// violation).
    fn input(&mut self, action: &str) -> bool;
    /// Observes: returns the next output, or `None` for quiescence.
    fn observe(&mut self) -> Option<String>;
}

/// A reference IUT adapter wrapping an explicit LTS with an internal
/// scheduler: useful for testing the tester and as the paper's "models as
/// implementations" baseline.
#[derive(Debug)]
pub struct LtsIut {
    lts: Lts,
    current: BTreeSet<LtsStateId>,
    rng: StdRng,
    seed: u64,
}

impl LtsIut {
    /// Wraps an LTS as an executable implementation.
    #[must_use]
    pub fn new(lts: Lts, seed: u64) -> Self {
        let current = lts.initial_set();
        LtsIut {
            lts,
            current,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl Iut for LtsIut {
    fn reset(&mut self) {
        self.current = self.lts.initial_set();
        self.seed = self.seed.wrapping_add(1);
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn input(&mut self, action: &str) -> bool {
        let next = self
            .lts
            .step(&self.current, &crate::lts::Label::Input(action.to_owned()));
        if next.is_empty() {
            return false;
        }
        // Resolve nondeterminism: commit to one concrete state.
        let pick = self.rng.gen_range(0..next.len());
        self.current = BTreeSet::from([*next.iter().nth(pick).expect("non-empty")]);
        self.current = self.lts.tau_closure(&self.current);
        true
    }

    fn observe(&mut self) -> Option<String> {
        // Gather outputs enabled in the current (committed) state set.
        let outs: Vec<String> = self
            .lts
            .out_set(&self.current)
            .into_iter()
            .filter_map(|e| match e {
                Event::Output(x) => Some(x),
                _ => None,
            })
            .collect();
        let quiescent: BTreeSet<LtsStateId> = self
            .current
            .iter()
            .copied()
            .filter(|&s| self.lts.is_quiescent(s))
            .collect();
        if outs.is_empty() {
            // No output anywhere: observing quiescence commits the IUT to
            // its quiescent states (if any; a pure τ-divergence keeps the
            // set as is).
            if !quiescent.is_empty() {
                self.current = quiescent;
            }
            return None;
        }
        if !quiescent.is_empty() && self.rng.gen_bool(0.3) {
            // The IUT resolves its internal choice towards staying silent:
            // reporting δ is only honest from a quiescent state, so commit
            // to the quiescent members.
            self.current = quiescent;
            return None;
        }
        let x = outs[self.rng.gen_range(0..outs.len())].clone();
        let next = self
            .lts
            .step(&self.current, &crate::lts::Label::Output(x.clone()));
        let pick = self.rng.gen_range(0..next.len().max(1));
        if let Some(&s) = next.iter().nth(pick) {
            self.current = self.lts.tau_closure(&BTreeSet::from([s]));
        }
        Some(x)
    }
}

/// The TorX-style test generator: derives randomized test cases from a
/// specification and executes tests on-the-fly against an [`Iut`].
#[derive(Debug)]
pub struct TestGenerator<'s> {
    spec: &'s Lts,
    rng: StdRng,
}

impl<'s> TestGenerator<'s> {
    /// Creates a generator over the specification.
    #[must_use]
    pub fn new(spec: &'s Lts, seed: u64) -> Self {
        TestGenerator {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one randomized test case of at most `depth` steps
    /// (offline generation; sound by construction: allowed observations
    /// follow the specification, everything else fails).
    pub fn generate(&mut self, depth: usize) -> TestCase {
        self.gen_from(self.spec.initial_set(), depth)
    }

    fn gen_from(&mut self, set: BTreeSet<LtsStateId>, depth: usize) -> TestCase {
        if depth == 0 || set.is_empty() {
            return TestCase::Stop;
        }
        let inputs: Vec<String> = self.spec.enabled_inputs(&set).into_iter().collect();
        // Choose: stimulate (if possible) or observe.
        let stimulate = !inputs.is_empty() && self.rng.gen_bool(0.5);
        if stimulate {
            let a = inputs[self.rng.gen_range(0..inputs.len())].clone();
            let next = self.spec.after_event(&set, &Event::Input(a.clone()));
            TestCase::Stimulate(a, Box::new(self.gen_from(next, depth - 1)))
        } else {
            let allowed = self.spec.out_set(&set);
            let branches = allowed
                .into_iter()
                .map(|e| {
                    let next = self.spec.after_event(&set, &e);
                    let sub = self.gen_from(next, depth - 1);
                    (e, sub)
                })
                .collect();
            TestCase::Observe(branches)
        }
    }

    /// Executes a test case against an implementation.
    pub fn execute(test: &TestCase, iut: &mut dyn Iut) -> TestVerdict {
        let mut trace = Vec::new();
        Self::exec_rec(test, iut, &mut trace)
    }

    fn exec_rec(test: &TestCase, iut: &mut dyn Iut, trace: &mut Vec<Event>) -> TestVerdict {
        match test {
            TestCase::Stop => TestVerdict::Pass,
            TestCase::Stimulate(a, rest) => {
                if !iut.input(a) {
                    return TestVerdict::Inconclusive(trace.clone());
                }
                trace.push(Event::Input(a.clone()));
                Self::exec_rec(rest, iut, trace)
            }
            TestCase::Observe(branches) => {
                let obs = match iut.observe() {
                    Some(x) => Event::Output(x),
                    None => Event::Delta,
                };
                trace.push(obs.clone());
                match branches.iter().find(|(e, _)| *e == obs) {
                    Some((_, rest)) => Self::exec_rec(rest, iut, trace),
                    None => {
                        let mut t = trace.clone();
                        t.pop();
                        TestVerdict::Fail(t, obs)
                    }
                }
            }
        }
    }

    /// Runs an on-the-fly (online) test session of `steps` events
    /// directly against the IUT, as TorX does: at each step the tester
    /// randomly stimulates or observes, tracking the specification state
    /// set.
    pub fn online_test(&mut self, iut: &mut dyn Iut, steps: usize) -> TestVerdict {
        iut.reset();
        let mut set = self.spec.initial_set();
        let mut trace: Vec<Event> = Vec::new();
        for _ in 0..steps {
            if set.is_empty() {
                // The implementation left the specified behaviour via an
                // allowed path that the spec does not continue: stop.
                return TestVerdict::Pass;
            }
            let inputs: Vec<String> = self.spec.enabled_inputs(&set).into_iter().collect();
            let stimulate = !inputs.is_empty() && self.rng.gen_bool(0.5);
            if stimulate {
                let a = inputs[self.rng.gen_range(0..inputs.len())].clone();
                if !iut.input(&a) {
                    return TestVerdict::Inconclusive(trace);
                }
                set = self.spec.after_event(&set, &Event::Input(a.clone()));
                trace.push(Event::Input(a));
            } else {
                let obs = match iut.observe() {
                    Some(x) => Event::Output(x),
                    None => Event::Delta,
                };
                let allowed = self.spec.out_set(&set);
                if !allowed.contains(&obs) {
                    return TestVerdict::Fail(trace, obs);
                }
                set = self.spec.after_event(&set, &obs);
                trace.push(obs);
            }
        }
        TestVerdict::Pass
    }

    /// A full campaign: `tests` online sessions of length `steps`;
    /// returns the number of failures and the first failing verdict.
    pub fn campaign(
        &mut self,
        iut: &mut dyn Iut,
        tests: usize,
        steps: usize,
    ) -> (usize, Option<TestVerdict>) {
        let mut failures = 0;
        let mut first = None;
        for _ in 0..tests {
            let v = self.online_test(iut, steps);
            if let TestVerdict::Fail(_, _) = &v {
                failures += 1;
                if first.is_none() {
                    first = Some(v);
                }
            }
        }
        (failures, first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::Label;

    fn spec() -> Lts {
        let mut l = Lts::new();
        let s0 = l.state("idle");
        let s1 = l.state("paid");
        l.transition(s0, Label::input("coin"), s1);
        l.transition(s1, Label::output("coffee"), s0);
        l
    }

    fn good_impl() -> Lts {
        let mut l = Lts::new();
        let s0 = l.state("idle");
        let s1 = l.state("paid");
        l.transition(s0, Label::input("coin"), s1);
        l.transition(s1, Label::input("coin"), s1);
        l.transition(s1, Label::output("coffee"), s0);
        l
    }

    fn tea_mutant() -> Lts {
        let mut l = good_impl();
        l.transition(LtsStateId(1), Label::output("tea"), LtsStateId(0));
        l
    }

    #[test]
    fn generated_tests_have_bounded_depth() {
        let s = spec();
        let mut g = TestGenerator::new(&s, 1);
        for _ in 0..10 {
            let t = g.generate(5);
            assert!(t.depth() <= 5);
            assert!(t.size() >= 1);
        }
    }

    #[test]
    fn correct_implementation_passes_campaign() {
        let s = spec();
        let mut g = TestGenerator::new(&s, 2);
        let mut iut = LtsIut::new(good_impl(), 7);
        let (failures, _) = g.campaign(&mut iut, 50, 20);
        assert_eq!(failures, 0, "sound: conforming implementations never fail");
    }

    #[test]
    fn mutant_fails_campaign() {
        let s = spec();
        let mut g = TestGenerator::new(&s, 3);
        let mut iut = LtsIut::new(tea_mutant(), 8);
        let (failures, first) = g.campaign(&mut iut, 100, 20);
        assert!(
            failures > 0,
            "exhaustive in the limit: the tea mutant is caught"
        );
        match first {
            Some(TestVerdict::Fail(_, Event::Output(x))) => assert_eq!(x, "tea"),
            v => panic!("unexpected first failure {v:?}"),
        }
    }

    #[test]
    fn offline_tests_catch_mutants_too() {
        let s = spec();
        let mut g = TestGenerator::new(&s, 4);
        let mut caught = false;
        for _ in 0..100 {
            let t = g.generate(6);
            let mut iut = LtsIut::new(tea_mutant(), 9);
            iut.reset();
            if let TestVerdict::Fail(_, _) = TestGenerator::execute(&t, &mut iut) {
                caught = true;
                break;
            }
        }
        assert!(caught);
    }

    #[test]
    fn offline_tests_sound_for_good_impl() {
        let s = spec();
        let mut g = TestGenerator::new(&s, 5);
        for _ in 0..50 {
            let t = g.generate(6);
            let mut iut = LtsIut::new(good_impl(), 10);
            iut.reset();
            let v = TestGenerator::execute(&t, &mut iut);
            assert!(
                !matches!(v, TestVerdict::Fail(_, _)),
                "sound tests never fail a conforming IUT: {v:?}"
            );
        }
    }
}
