//! Stable structural fingerprints for labelled transition systems.
//!
//! Lets the analysis service key its verdict cache by model content:
//! two builds of the same LTS fingerprint identically, and renaming
//! states does not change the fingerprint (state names are diagnostics;
//! conformance depends only on structure). Label names *do* hash — they
//! are the observable alphabet, so renaming an action changes which
//! implementations conform. Transitions hash in order because state
//! indices are the identity the system refers to.

use crate::lts::{Label, Lts};
use tempo_obs::{StableDigest, StableHasher};

impl StableDigest for Label {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            Label::Input(a) => {
                h.write_u8(0);
                h.write_str(a);
            }
            Label::Output(a) => {
                h.write_u8(1);
                h.write_str(a);
            }
            Label::Tau => h.write_u8(2),
        }
    }
}

impl StableDigest for Lts {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("lts");
        // States are identified by index; only their count is structure.
        h.write_usize(self.num_states());
        let ts = self.transitions();
        h.write_usize(ts.len());
        for (from, label, to) in ts {
            h.write_usize(from.0);
            label.digest(h);
            h.write_usize(to.0);
        }
        h.write_usize(self.initial().0);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Label, Lts};
    use tempo_obs::Fingerprint;

    fn vending(names: [&str; 2], coffee: &str) -> Lts {
        let mut l = Lts::new();
        let idle = l.state(names[0]);
        let busy = l.state(names[1]);
        l.set_initial(idle);
        l.transition(idle, Label::input("coin"), busy);
        l.transition(busy, Label::output(coffee), idle);
        l
    }

    #[test]
    fn state_names_are_diagnostics_but_labels_are_structure() {
        assert_eq!(
            Fingerprint::of(&vending(["Idle", "Busy"], "coffee")),
            Fingerprint::of(&vending(["S0", "S1"], "coffee"))
        );
        assert_ne!(
            Fingerprint::of(&vending(["Idle", "Busy"], "coffee")),
            Fingerprint::of(&vending(["Idle", "Busy"], "tea"))
        );
    }
}
