//! rtioco: environment-relativized timed input/output conformance — the
//! theory behind UPPAAL-TRON, "mainly targeted for embedded software
//! commonly found in various controllers", applying *online* testing
//! where tests are derived, executed and checked during interaction with
//! the system in real time (Bozga et al., DATE 2012, §II and §V).
//!
//! The specification is a timed-automata network ([`tempo_ta::Network`])
//! that includes the *environment model* (rtioco is relativized to the
//! environment's assumptions); observable actions are the network's
//! channel names, partitioned into inputs (tester → IUT) and outputs
//! (IUT → tester). Testing runs in simulated integer time over the
//! digital-clocks semantics, which keeps verdicts deterministic and is
//! exact for closed specifications.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::collections::HashSet;
use tempo_ta::{DigitalExplorer, DigitalState, Network};

/// An event of a timed test trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimedEvent {
    /// The tester sent an input at the given time.
    Input(i64, String),
    /// The IUT produced an output at the given time.
    Output(i64, String),
}

/// The verdict of a timed online test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimedVerdict {
    /// No violation observed within the test horizon.
    Pass,
    /// The IUT produced an output (at a time) the specification does not
    /// allow.
    Fail {
        /// The executed trace up to the violation.
        trace: Vec<TimedEvent>,
        /// The offending observation.
        observed: TimedEvent,
    },
}

impl TimedVerdict {
    /// Whether the verdict is `Pass`.
    #[must_use]
    pub fn is_pass(&self) -> bool {
        matches!(self, TimedVerdict::Pass)
    }
}

/// A timed implementation under test, driven in simulated integer time.
pub trait TimedIut {
    /// Resets to the initial state at time `0`.
    fn reset(&mut self);
    /// Delivers an input at the current instant; returns any outputs
    /// emitted instantaneously in response.
    fn input(&mut self, action: &str) -> Vec<String>;
    /// Advances one time unit; returns outputs emitted during that unit.
    fn tick(&mut self) -> Vec<String>;
}

/// The online timed conformance tester (the UPPAAL-TRON analogue).
#[derive(Debug)]
pub struct TimedTester<'n> {
    exp: DigitalExplorer<'n>,
    inputs: HashSet<String>,
    outputs: HashSet<String>,
    rng: StdRng,
}

impl<'n> TimedTester<'n> {
    /// Creates a tester over the specification network. `inputs` and
    /// `outputs` are channel names of the network, partitioned from the
    /// IUT's perspective.
    ///
    /// # Panics
    ///
    /// Panics if an input name is also an output name.
    #[must_use]
    pub fn new(spec: &'n Network, inputs: &[&str], outputs: &[&str], seed: u64) -> Self {
        let inputs: HashSet<String> = inputs.iter().map(|s| (*s).to_owned()).collect();
        let outputs: HashSet<String> = outputs.iter().map(|s| (*s).to_owned()).collect();
        assert!(
            inputs.is_disjoint(&outputs),
            "input and output alphabets must be disjoint"
        );
        TimedTester {
            exp: DigitalExplorer::new(spec),
            inputs,
            outputs,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The channel name of a move label (`chan[i]` → `chan`), if the move
    /// is a synchronization.
    fn channel_of(label: &str) -> Option<&str> {
        label.split('[').next().filter(|_| label.contains('['))
    }

    /// Closure of a state set under unobservable moves (internal `tau`
    /// edges and synchronizations on unobservable channels).
    fn tau_closure(&self, set: &mut BTreeSet<DigitalState>) {
        let mut stack: Vec<DigitalState> = set.iter().cloned().collect();
        while let Some(s) = stack.pop() {
            for (mv, next) in self.exp.moves(&s) {
                let observable = Self::channel_of(&mv.label)
                    .is_some_and(|c| self.inputs.contains(c) || self.outputs.contains(c));
                if !observable && set.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
    }

    /// The initial (τ-closed) specification state set.
    #[must_use]
    pub fn initial_set(&self) -> BTreeSet<DigitalState> {
        let mut set = BTreeSet::from([self.exp.initial_state()]);
        self.tau_closure(&mut set);
        set
    }

    /// Advances the specification set by one time unit.
    fn delay(&self, set: &BTreeSet<DigitalState>) -> BTreeSet<DigitalState> {
        let mut next: BTreeSet<DigitalState> =
            set.iter().filter_map(|s| self.exp.tick(s)).collect();
        self.tau_closure(&mut next);
        next
    }

    /// Steps the set by an observable action on channel `name`.
    fn step(&self, set: &BTreeSet<DigitalState>, name: &str) -> BTreeSet<DigitalState> {
        let mut next = BTreeSet::new();
        for s in set {
            for (mv, succ) in self.exp.moves(s) {
                if Self::channel_of(&mv.label) == Some(name) {
                    next.insert(succ);
                }
            }
        }
        self.tau_closure(&mut next);
        next
    }

    /// The input channels currently offered by the specification
    /// (environment model).
    fn enabled_inputs(&self, set: &BTreeSet<DigitalState>) -> Vec<String> {
        let mut out: BTreeSet<String> = BTreeSet::new();
        for s in set {
            for (mv, _) in self.exp.moves(s) {
                if let Some(c) = Self::channel_of(&mv.label) {
                    if self.inputs.contains(c) {
                        out.insert(c.to_owned());
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Runs one online test session of `horizon` time units against the
    /// IUT: at each instant the tester delivers a random enabled input
    /// (with probability ½) and lets a time unit pass, checking every
    /// IUT output against the specification set.
    pub fn online_test(&mut self, iut: &mut dyn TimedIut, horizon: i64) -> TimedVerdict {
        iut.reset();
        let mut set = self.initial_set();
        let mut trace: Vec<TimedEvent> = Vec::new();
        for now in 0..horizon {
            // Maybe stimulate.
            let choices = self.enabled_inputs(&set);
            if !choices.is_empty() && self.rng.gen_bool(0.5) {
                let a = choices[self.rng.gen_range(0..choices.len())].clone();
                let responses = iut.input(&a);
                set = self.step(&set, &a);
                trace.push(TimedEvent::Input(now, a));
                for x in responses {
                    let observed = TimedEvent::Output(now, x.clone());
                    set = self.step(&set, &x);
                    if set.is_empty() {
                        return TimedVerdict::Fail { trace, observed };
                    }
                    trace.push(observed);
                }
            }
            // Let one unit pass and process outputs emitted meanwhile.
            let outputs = iut.tick();
            set = self.delay(&set);
            for x in outputs {
                let observed = TimedEvent::Output(now + 1, x.clone());
                set = self.step(&set, &x);
                if set.is_empty() {
                    return TimedVerdict::Fail { trace, observed };
                }
                trace.push(observed);
            }
            if set.is_empty() {
                // The spec cannot even delay (e.g. a required output was
                // not produced before its deadline): unexpected
                // quiescence.
                return TimedVerdict::Fail {
                    trace,
                    observed: TimedEvent::Output(now + 1, "δ".to_owned()),
                };
            }
        }
        TimedVerdict::Pass
    }

    /// A campaign of `sessions` online tests; returns the number of
    /// failed sessions and the first failure.
    pub fn campaign(
        &mut self,
        iut: &mut dyn TimedIut,
        sessions: usize,
        horizon: i64,
    ) -> (usize, Option<TimedVerdict>) {
        let mut failures = 0;
        let mut first = None;
        for _ in 0..sessions {
            let v = self.online_test(iut, horizon);
            if !v.is_pass() {
                failures += 1;
                if first.is_none() {
                    first = Some(v);
                }
            }
        }
        (failures, first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    /// Specification: after `req`, the IUT must emit `resp` within 3 time
    /// units. The network contains the environment (sends req) and the
    /// system model (responds), synchronizing on channels `req`/`resp`.
    fn spec() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let req = b.channel("req");
        let resp = b.channel("resp");
        let mut env = b.automaton("Env");
        let e0 = env.location("E0");
        let e1 = env.location("E1");
        env.edge(e0, e1).send(req).done();
        env.edge(e1, e0).recv(resp).done();
        env.done();
        let mut sysm = b.automaton("Sys");
        let idle = sysm.location("Idle");
        let busy = sysm.location_with_invariant("Busy", vec![ClockAtom::le(x, 3)]);
        sysm.edge(idle, busy).recv(req).reset(x, 0).done();
        sysm.edge(busy, idle).send(resp).done();
        sysm.done();
        b.build()
    }

    /// An IUT that responds to `req` after a fixed number of ticks.
    struct DelayedResponder {
        delay: i64,
        pending: Option<i64>,
    }

    impl DelayedResponder {
        fn new(delay: i64) -> Self {
            DelayedResponder {
                delay,
                pending: None,
            }
        }
    }

    impl TimedIut for DelayedResponder {
        fn reset(&mut self) {
            self.pending = None;
        }
        fn input(&mut self, action: &str) -> Vec<String> {
            if action == "req" && self.pending.is_none() {
                if self.delay == 0 {
                    return vec!["resp".to_owned()];
                }
                self.pending = Some(self.delay);
            }
            Vec::new()
        }
        fn tick(&mut self) -> Vec<String> {
            match &mut self.pending {
                Some(d) => {
                    *d -= 1;
                    if *d <= 0 {
                        self.pending = None;
                        vec!["resp".to_owned()]
                    } else {
                        Vec::new()
                    }
                }
                None => Vec::new(),
            }
        }
    }

    #[test]
    fn timely_responder_passes() {
        let net = spec();
        let mut tester = TimedTester::new(&net, &["req"], &["resp"], 1);
        let mut iut = DelayedResponder::new(2);
        let (failures, _) = tester.campaign(&mut iut, 30, 40);
        assert_eq!(failures, 0);
    }

    #[test]
    fn deadline_responder_passes() {
        // Responding exactly at the deadline (3) is allowed (closed spec).
        let net = spec();
        let mut tester = TimedTester::new(&net, &["req"], &["resp"], 2);
        let mut iut = DelayedResponder::new(3);
        let (failures, _) = tester.campaign(&mut iut, 30, 40);
        assert_eq!(failures, 0);
    }

    #[test]
    fn late_responder_fails() {
        let net = spec();
        let mut tester = TimedTester::new(&net, &["req"], &["resp"], 3);
        let mut iut = DelayedResponder::new(5);
        let (failures, first) = tester.campaign(&mut iut, 30, 40);
        assert!(
            failures > 0,
            "responding after the 3-unit deadline violates rtioco"
        );
        match first {
            Some(TimedVerdict::Fail { observed, .. }) => {
                // Either the late resp itself or the missed deadline (δ).
                match observed {
                    TimedEvent::Output(_, x) => assert!(x == "resp" || x == "δ"),
                    TimedEvent::Input(_, _) => panic!("inputs cannot fail"),
                }
            }
            v => panic!("expected a failure, got {v:?}"),
        }
    }

    #[test]
    fn spontaneous_output_fails() {
        /// Emits resp without any req.
        struct Chatty;
        impl TimedIut for Chatty {
            fn reset(&mut self) {}
            fn input(&mut self, _: &str) -> Vec<String> {
                Vec::new()
            }
            fn tick(&mut self) -> Vec<String> {
                vec!["resp".to_owned()]
            }
        }
        let net = spec();
        let mut tester = TimedTester::new(&net, &["req"], &["resp"], 4);
        let v = tester.online_test(&mut Chatty, 10);
        assert!(!v.is_pass());
    }

    #[test]
    fn silent_iut_fails_on_missed_deadline() {
        /// Never responds at all.
        struct Mute;
        impl TimedIut for Mute {
            fn reset(&mut self) {}
            fn input(&mut self, _: &str) -> Vec<String> {
                Vec::new()
            }
            fn tick(&mut self) -> Vec<String> {
                Vec::new()
            }
        }
        let net = spec();
        let mut tester = TimedTester::new(&net, &["req"], &["resp"], 5);
        let (failures, _) = tester.campaign(&mut Mute, 20, 40);
        assert!(failures > 0, "after req, the deadline forces resp");
    }
}
