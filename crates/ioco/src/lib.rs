//! # tempo-ioco — model-based testing with the ioco and rtioco theories
//!
//! A reproduction of the model-based-testing pillar of Bozga et al.
//! (DATE 2012, §V): testing whether a black-box implementation conforms
//! to a (verified) model, with a sound and well-defined theory behind the
//! generated tests.
//!
//! * [`Lts`] — labelled transition systems with inputs, outputs, τ,
//!   quiescence (`δ`) and suspension traces;
//! * [`check_ioco`] — the **ioco** implementation relation decided
//!   exactly for finite models (`out(i after σ) ⊆ out(s after σ)`);
//! * [`TestGenerator`] — TorX-style randomized test generation (offline
//!   trees and on-the-fly sessions), *sound* and *exhaustive in the
//!   limit*, executed against black-box [`Iut`] adapters;
//! * [`TimedTester`] — **rtioco**, environment-relativized timed
//!   conformance (the UPPAAL-TRON analogue), testing timed deadlines
//!   online in simulated time against [`TimedIut`] adapters.
//!
//! ## Example
//!
//! ```
//! use tempo_ioco::{Lts, Label, check_ioco};
//! let mut spec = Lts::new();
//! let s0 = spec.state("idle");
//! let s1 = spec.state("paid");
//! spec.transition(s0, Label::input("coin"), s1);
//! spec.transition(s1, Label::output("coffee"), s0);
//! assert!(check_ioco(&spec, &spec).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conformance;
mod digest;
mod lts;
mod rtioco;
mod suspension;
mod testgen;

pub use conformance::{check_ioco, IocoViolation};
pub use lts::{Event, Label, Lts, LtsStateId};
pub use rtioco::{TimedEvent, TimedIut, TimedTester, TimedVerdict};
pub use suspension::SuspensionAutomaton;
pub use testgen::{Iut, LtsIut, TestCase, TestGenerator, TestVerdict};
